//! Fraud detection — the full Example 1.1 of the paper.
//!
//! Two transaction records t3 (UK) and t4 (USA) at about the same time look
//! unrelated: they differ on FN, city, St, post and phn. No rule matches
//! them directly. A sequence of interleaved matching and repairing
//! operations — ϕ2 fixes the city, ϕ4 normalizes Bob → Robert, ψ matches
//! the master card and corrects the phone, ϕ3 enriches the street — reveals
//! that they are the same person: a fraud.
//!
//! ```text
//! cargo run --example fraud_detection
//! ```

use uniclean::model::{FixMark, Relation, Schema, Tuple, TupleId, Value};
use uniclean::rules::{parse_rules, RuleSet};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

fn main() {
    let tran = Schema::of_strings(
        "tran",
        &["FN", "LN", "St", "city", "AC", "post", "phn", "gd"],
    );
    let card = Schema::of_strings(
        "card",
        &["FN", "LN", "St", "city", "AC", "zip", "tel", "gd"],
    );
    let text = "\
        cfd phi1: tran([AC=131] -> [city=Edi])\n\
        cfd phi2: tran([AC=020] -> [city=Ldn])\n\
        cfd phi3: tran([city, phn] -> [St, AC, post])\n\
        cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
        md  psi:  tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(4) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]\n\
        neg psi1: tran[gd] != card[gd] -> tran[FN] <!> card[FN]";
    let parsed = parse_rules(text, &tran, Some(&card)).expect("rules parse");
    let rules = RuleSet::new(
        tran.clone(),
        Some(card.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds, // embedded per Prop. 2.6
    );

    // Fig. 1(a): master data.
    let master = Relation::new(
        card,
        vec![
            Tuple::of_strs(
                &[
                    "Mark",
                    "Smith",
                    "10 Oak St",
                    "Edi",
                    "131",
                    "EH8 9LE",
                    "3256778",
                    "Male",
                ],
                1.0,
            ),
            Tuple::of_strs(
                &[
                    "Robert",
                    "Brady",
                    "5 Wren St",
                    "Ldn",
                    "020",
                    "WC1H 9SE",
                    "3887644",
                    "Male",
                ],
                1.0,
            ),
        ],
    );

    // Fig. 1(b): the transaction log with its per-cell confidence rows.
    let mk = |vals: &[&str], cfs: &[f64]| {
        let mut t = Tuple::of_strs(vals, 0.0);
        for (i, &c) in cfs.iter().enumerate() {
            let a = uniclean::model::AttrId::from(i);
            let v = t.value(a).clone();
            t.set(a, v, c, FixMark::Untouched);
        }
        t
    };
    let t3 = mk(
        &[
            "Bob",
            "Brady",
            "5 Wren St",
            "Edi",
            "020",
            "WC1H 9SE",
            "3887834",
            "Male",
        ],
        &[0.6, 1.0, 0.9, 0.2, 0.9, 0.8, 0.9, 0.8],
    );
    let mut t4 = mk(
        &[
            "Robert", "Brady", "", "Ldn", "020", "WC1E 7HX", "3887644", "Male",
        ],
        &[0.7, 1.0, 0.0, 0.5, 0.7, 0.3, 0.7, 0.8],
    );
    t4.set(
        tran.attr_id_or_panic("St"),
        Value::Null,
        0.0,
        FixMark::Untouched,
    );
    let dirty = Relation::new(tran.clone(), vec![t3, t4]);

    println!("before cleaning:");
    print_pair(&dirty, &tran);

    let uni = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .expect("valid session");
    let result = uni.clean(&dirty, Phase::Full);

    println!("\nfixes applied ({}):", result.report.len());
    for fix in result.report.records() {
        println!(
            "  [{}] {}.{}: {} -> {}   (rule {})",
            fix.mark,
            fix.tuple,
            tran.attr_name(fix.attr),
            fix.old,
            fix.new,
            fix.rule
        );
    }

    println!("\nafter cleaning:");
    print_pair(&result.repaired, &tran);

    // The fraud check: do the two records now denote the same person?
    let ident: Vec<_> = ["FN", "LN", "St", "city", "AC", "post", "phn"]
        .iter()
        .map(|a| tran.attr_id_or_panic(a))
        .collect();
    let same = result
        .repaired
        .tuple(TupleId(0))
        .agrees_with(result.repaired.tuple(TupleId(1)), &ident);
    println!("\nsame person across UK and USA at the same time: {same} → FRAUD");
    assert!(same, "the cleaning process must reveal the match");
}

fn print_pair(d: &Relation, schema: &std::sync::Arc<Schema>) {
    for (id, t) in d.iter() {
        let rendered: Vec<String> = schema
            .attr_ids()
            .map(|a| format!("{}={}", schema.attr_name(a), t.value(a)))
            .collect();
        println!("  {id}: {}", rendered.join(", "));
    }
}
