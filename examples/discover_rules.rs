//! Rule discovery: profile a clean sample, mine CFDs, suggest MDs, then
//! use the mined rules to clean.
//!
//! The paper assumes rules are "automatically discovered from data via
//! profiling algorithms" (§2). This example closes that loop on the HOSP
//! workload: discover FDs and constant CFDs from the master data, lift
//! key-based FDs to MDs, vet the set with the §4 consistency analysis, and
//! clean the dirty relation with the *mined* rules only.
//!
//! ```text
//! cargo run --release --example discover_rules
//! ```

use uniclean::datagen::{hosp_workload, GenParams};
use uniclean::discovery::{
    discover_constant_cfds, discover_fds, suggest_mds, ConstantCfdConfig, FdConfig,
};
use uniclean::metrics::repair_quality;
use uniclean::reasoning::is_consistent;
use uniclean::rules::RuleSet;
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

fn main() {
    let w = hosp_workload(&GenParams {
        tuples: 2000,
        master_tuples: 500,
        noise_rate: 0.06,
        ..GenParams::default()
    });

    // Profile a vetted clean sample (the ground truth stands in for it
    // here — in production this is a curated subset) for CFDs; mine the
    // master data's keys for MDs.
    let fds = discover_fds(
        &w.truth,
        &FdConfig {
            max_lhs: 2,
            min_support_pairs: 10,
        },
    );
    let ccfds = discover_constant_cfds(
        &w.truth,
        &ConstantCfdConfig {
            min_support: 10,
            ..Default::default()
        },
    );
    // Vet suggested MDs on the clean sample: a column can be accidentally
    // unique in a small master, and an overfit match key fabricates
    // matches (§4 is exactly about catching bad rules before use).
    let mds: Vec<_> = suggest_mds(&w.master, w.rules.schema(), 1, &fds)
        .into_iter()
        .filter(|md| uniclean::rules::satisfies_md(md, &w.truth, &w.master))
        .collect();
    println!(
        "discovered: {} FDs, {} constant CFDs, {} suggested MDs (master keys over {} tuples)",
        fds.len(),
        ccfds.len(),
        mds.len(),
        w.master.len()
    );
    for fd in fds.iter().take(8) {
        println!("  {fd}");
    }
    println!("  …");

    // CFDs were mined on the data schema directly; concatenate both kinds.
    let data_schema = w.rules.schema().clone();
    let mut cfds: Vec<uniclean::rules::Cfd> = fds.clone();
    cfds.extend(ccfds.iter().cloned());

    // Vet the mined set before deriving cleaning rules from it (§4).
    let mined = RuleSet::new(
        data_schema,
        Some(w.master.schema().clone()),
        cfds,
        mds,
        vec![],
    );
    let cfd_core = mined.without_mds();
    println!(
        "mined rule set consistent: {}",
        is_consistent(&cfd_core, None)
    );

    // Clean with the mined rules only. Both sessions share the master
    // relation through an `Arc` — no copies.
    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    };
    let master = MasterSource::external(w.master.clone());
    let uni = Cleaner::builder()
        .rules(mined)
        .master(master.clone())
        .config(cfg.clone())
        .build()
        .expect("valid session");
    let r = uni.clean(&w.dirty, Phase::Full);
    let q_mined = repair_quality(&w.dirty, &r.repaired, &w.truth);

    // Compare with the hand-written rule set.
    let uni_hand = Cleaner::builder()
        .rules(w.rules.clone())
        .master(master)
        .config(cfg)
        .build()
        .expect("valid session");
    let rh = uni_hand.clean(&w.dirty, Phase::Full);
    let q_hand = repair_quality(&w.dirty, &rh.repaired, &w.truth);

    println!(
        "mined rules:        precision={:.3} recall={:.3} F1={:.3}",
        q_mined.precision,
        q_mined.recall,
        q_mined.f1()
    );
    println!(
        "hand-written rules: precision={:.3} recall={:.3} F1={:.3}",
        q_hand.precision,
        q_hand.recall,
        q_hand.f1()
    );
    assert!(q_mined.f1() > 0.3, "mined rules must clean usefully");
}
