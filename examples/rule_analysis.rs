//! Static rule analysis: the §4 toolbox on a concrete rule set.
//!
//! Checks consistency (Thm 4.1), implication/redundancy (Thm 4.2), the
//! dependency-graph application order (§6.2) and termination diagnostics
//! (Thm 4.7 / Example 4.6) for a small transaction rule set.
//!
//! ```text
//! cargo run --example rule_analysis
//! ```

use uniclean::model::Schema;
use uniclean::reasoning::{
    erepair_order, implies_cfd, is_consistent, termination_diagnostics, DepGraph,
};
use uniclean::rules::{parse_rules, RuleSet};

fn main() {
    let tran = Schema::of_strings(
        "tran",
        &["FN", "AC", "city", "phn", "St", "post", "country"],
    );
    let text = "\
        cfd phi1: tran([AC=131] -> [city=Edi])\n\
        cfd phi2: tran([AC=020] -> [city=Ldn])\n\
        cfd phi3: tran([city, phn] -> [St])\n\
        cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
        cfd phi6: tran([city=Edi] -> [country=UK])";
    let parsed = parse_rules(text, &tran, None).expect("rules parse");
    let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);

    // Consistency (NP-complete in general; exact small-model search).
    println!("consistent: {}", is_consistent(&rules, None));

    // Implication: is [AC=131] → [country=UK] redundant given ϕ1 and ϕ6?
    let candidate = parse_rules("cfd c: tran([AC=131] -> [country=UK])", &tran, None)
        .unwrap()
        .cfds
        .remove(0);
    println!(
        "Θ implies [AC=131] -> [country=UK]: {}",
        implies_cfd(&rules, None, &candidate)
    );
    let not_implied = parse_rules("cfd c: tran([AC=020] -> [country=UK])", &tran, None)
        .unwrap()
        .cfds
        .remove(0);
    println!(
        "Θ implies [AC=020] -> [country=UK]: {}",
        implies_cfd(&rules, None, &not_implied)
    );

    // The eRepair application order from the dependency graph.
    let g = DepGraph::build(&rules);
    println!(
        "dependency graph: {} rules, cyclic: {}",
        g.len(),
        g.has_cycle()
    );
    let order: Vec<String> = erepair_order(&rules)
        .into_iter()
        .map(|r| match r {
            uniclean::reasoning::RuleRef::Cfd(i) => rules.cfds()[i].name().to_string(),
            uniclean::reasoning::RuleRef::Md(i) => rules.mds()[i].name().to_string(),
        })
        .collect();
    println!("application order: {}", order.join(" > "));

    // Termination diagnostics: add Example 4.6's oscillator and watch the
    // analysis flag it.
    let osc_text = format!("{text}\ncfd phi5: tran([post=\"EH8 9AB\"] -> [city=Ldn])");
    let parsed = parse_rules(&osc_text, &tran, None).expect("rules parse");
    let osc_rules = RuleSet::cfds_only(tran, parsed.cfds);
    let report = termination_diagnostics(&osc_rules);
    println!(
        "with ϕ5 added: guaranteed terminating: {}, oscillating constant pairs: {:?}",
        report.guaranteed_terminating, report.constant_conflicts
    );
    assert!(
        !report.constant_conflicts.is_empty(),
        "Example 4.6 must be flagged"
    );
}
