//! Hospital data cleaning at workload scale.
//!
//! Generates a HOSP-like workload (19 attributes, 23 CFDs + 3 MDs), injects
//! 6% noise, runs the full pipeline and scores the three fix classes
//! against the ground truth — a miniature of the paper's Exp-3.
//!
//! ```text
//! cargo run --release --example hospital_cleaning
//! ```

use uniclean::datagen::{hosp_workload, GenParams};
use uniclean::metrics::repair_quality;
use uniclean::model::FixMark;
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

fn main() {
    let params = GenParams {
        tuples: 3000,
        master_tuples: 800,
        noise_rate: 0.06,
        dup_rate: 0.4,
        asserted_rate: 0.4,
        seed: 7,
    };
    let w = hosp_workload(&params);
    println!(
        "workload: |D| = {}, |Dm| = {}, rules = {} CFDs + {} MDs, {} injected errors",
        w.dirty.len(),
        w.master.len(),
        w.rules.cfds().len(),
        w.rules.mds().len(),
        w.errors
    );

    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    };
    let uni = Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(cfg)
        .build()
        .expect("valid session");

    for (phase, label) in [
        (Phase::CRepair, "cRepair           "),
        (Phase::CERepair, "cRepair+eRepair   "),
        (Phase::Full, "Uni (all phases)  "),
    ] {
        let r = uni.clean(&w.dirty, phase);
        let q = repair_quality(&w.dirty, &r.repaired, &w.truth);
        let (det, rel, pos) = r.fix_counts();
        println!(
            "{label} precision={:.3} recall={:.3} F1={:.3}  fixes: {det} deterministic, {rel} reliable, {pos} possible",
            q.precision,
            q.recall,
            q.f1(),
        );
        if phase == Phase::Full {
            assert!(r.consistent, "the final repair must satisfy Σ and Γ");
            assert!(q.precision > 0.5 && q.recall > 0.4, "quality sanity check");
            // Deterministic fixes are the most accurate class: every one of
            // them must agree with the ground truth here.
            let det_wrong = r
                .report
                .records()
                .iter()
                .filter(|f| f.mark == FixMark::Deterministic)
                .filter(|f| &f.new != w.truth.tuple(f.tuple).value(f.attr))
                .count();
            println!("deterministic fixes disagreeing with ground truth: {det_wrong}");
        }
    }
}
