//! Bibliography deduplication: repairing helps matching.
//!
//! Generates a DBLP-like workload, then compares two ways of finding which
//! records correspond to master entries: sorted-neighborhood matching on
//! the dirty data (SortN) versus matching on the UniClean-repaired data —
//! the paper's Exp-2 in miniature.
//!
//! ```text
//! cargo run --release --example dblp_dedup
//! ```

use uniclean::baselines::{sortn_match, uniclean_matches, SortNConfig};
use uniclean::datagen::{dblp_workload, GenParams};
use uniclean::metrics::matching_quality;
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

fn main() {
    let w = dblp_workload(&GenParams {
        tuples: 3000,
        master_tuples: 800,
        noise_rate: 0.08,
        dup_rate: 0.4,
        asserted_rate: 0.4,
        seed: 11,
    });
    println!(
        "workload: |D| = {}, |Dm| = {}, true matches = {}",
        w.dirty.len(),
        w.master.len(),
        w.true_matches.len()
    );

    // Baseline: match the dirty data directly.
    let found = sortn_match(&w.dirty, &w.master, w.rules.mds(), SortNConfig::default());
    let q_sortn = matching_quality(&found, &w.true_matches);
    println!(
        "SortN(MD) on dirty data:    precision={:.3} recall={:.3} F1={:.3}",
        q_sortn.precision,
        q_sortn.recall,
        q_sortn.f1()
    );

    // UniClean: repair first, then identify matches on the repaired data.
    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    };
    let uni = Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(cfg)
        .build()
        .expect("valid session");
    let r = uni.clean(&w.dirty, Phase::Full);
    let found = uniclean_matches(&r.repaired, &w.master, w.rules.mds());
    let q_uni = matching_quality(&found, &w.true_matches);
    println!(
        "Uni on repaired data:       precision={:.3} recall={:.3} F1={:.3}",
        q_uni.precision,
        q_uni.recall,
        q_uni.f1()
    );

    println!(
        "\nrepairing helps matching: ΔF1 = {:+.3}",
        q_uni.f1() - q_sortn.f1()
    );
    assert!(q_uni.f1() >= q_sortn.f1(), "Exp-2's headline claim");
}
