//! Quickstart: clean a tiny transaction relation against master data.
//!
//! This is the paper's running example (Example 1.1) in ~60 lines: define
//! the schemas, write the rules in the textual rule language, run the
//! three-phase pipeline, print the fixes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use uniclean::model::{Relation, Schema, Tuple};
use uniclean::rules::{parse_rules, RuleSet};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

fn main() {
    // Schemas: dirty transactions and clean master card data.
    let tran = Schema::of_strings("tran", &["FN", "LN", "St", "city", "AC", "post", "phn"]);
    let card = Schema::of_strings("card", &["FN", "LN", "St", "city", "AC", "zip", "tel"]);

    // Data quality rules: CFDs for consistency, an MD for matching.
    let rules_text = "\
        cfd phi1: tran([AC=131] -> [city=Edi])\n\
        cfd phi2: tran([AC=020] -> [city=Ldn])\n\
        cfd phi3: tran([city, phn] -> [St, AC, post])\n\
        cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
        md  psi:  tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(4) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]";
    let parsed = parse_rules(rules_text, &tran, Some(&card)).expect("rules parse");
    let rules = RuleSet::new(
        tran.clone(),
        Some(card.clone()),
        parsed.cfds,
        parsed.positive_mds,
        vec![],
    );

    // Master data: one verified customer.
    let master = Relation::new(
        card,
        vec![Tuple::of_strs(
            &[
                "Mark",
                "Smith",
                "10 Oak St",
                "Edi",
                "131",
                "EH8 9LE",
                "3256778",
            ],
            1.0,
        )],
    );

    // A dirty transaction: wrong city (AC says Edinburgh), wrong phone.
    // Confidence 0.9 on most cells, 0 on the suspicious ones.
    let mut t = Tuple::of_strs(
        &[
            "M.",
            "Smith",
            "10 Oak St",
            "Ldn",
            "131",
            "EH8 9LE",
            "9999999",
        ],
        0.9,
    );
    let city = tran.attr_id_or_panic("city");
    let phn = tran.attr_id_or_panic("phn");
    let v = t.value(city).clone();
    t.set(city, v, 0.0, Default::default());
    let v = t.value(phn).clone();
    t.set(phn, v, 0.0, Default::default());
    let dirty = Relation::new(tran.clone(), vec![t]);

    // Clean: cRepair → eRepair → hRepair with η = 0.8. The session owns
    // its rules and master data, so it can be reused across many inputs.
    let cleaner = Cleaner::builder()
        .rules(rules.clone())
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .expect("valid session");
    let result = cleaner.clean(&dirty, Phase::Full);

    println!("consistent: {}", result.consistent);
    println!("repair cost: {:.3}", result.cost);
    for fix in result.report.records() {
        println!(
            "  [{}] {}.{}: {} -> {}   (rule {})",
            fix.mark,
            fix.tuple,
            rules.schema().attr_name(fix.attr),
            fix.old,
            fix.new,
            fix.rule
        );
    }
    let repaired = result.repaired.tuple(uniclean::model::TupleId(0));
    println!(
        "repaired tuple: city={} phn={}",
        repaired.value(city),
        repaired.value(phn)
    );
    assert_eq!(repaired.value(city).render(), "Edi");
    assert_eq!(repaired.value(phn).render(), "3256778");
}
