//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The container cannot reach crates.io, so the real crate is not
//! available; this shim implements just enough — the `proptest!` macro,
//! `prop_assert*`, `ProptestConfig::with_cases`, integer-range / regex /
//! tuple strategies and `collection::vec` — for the seed's property tests
//! to compile and run.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   visible in the assertion message only;
//! * regex strategies support the dialect the tests actually use
//!   (`[class]`, `.`, literals, each optionally followed by `{m}` /
//!   `{m,n}`), not full regex syntax;
//! * generation is deterministic per test name, so CI failures reproduce.

use std::ops::Range;

/// Number of cases to run per property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised inside a property body (via `?` or `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A hard failure with a reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }

    /// Real proptest rejects and retries; the shim treats it as failure.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        TestCaseError(format!("rejected: {reason}"))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator backing all strategies (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded from the test name so every run explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// Integer range strategies: `0usize..5`, `0u8..2`, …
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

// Regex-string strategies: `"[a-c]{1,10}"`, `".{0,12}"`, `"[ab]"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_rep as u64
                + if atom.max_rep > atom.min_rep {
                    rng.below((atom.max_rep - atom.min_rep + 1) as u64)
                } else {
                    0
                };
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min_rep: usize,
    max_rep: usize,
}

/// Printable ASCII (space through `~`) — what `.` generates.
fn any_chars() -> Vec<char> {
    (b' '..=b'~').map(char::from).collect()
}

fn parse_pattern(pat: &str) -> Result<Vec<Atom>, String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or("unterminated character class")?
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        if lo > hi {
                            return Err(format!("inverted range {}-{}", chars[j], chars[j + 2]));
                        }
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                any_chars()
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).ok_or("dangling escape")?;
                i += 1;
                vec![c]
            }
            c if c == '{' || c == '}' || c == '*' || c == '+' || c == '?' || c == '|' => {
                return Err(format!("unsupported regex construct `{c}`"));
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional `{m}` / `{m,n}` quantifier.
        let (min_rep, max_rep) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated quantifier")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((a, b)) => (
                    a.parse().map_err(|_| "bad quantifier")?,
                    b.parse().map_err(|_| "bad quantifier")?,
                ),
                None => {
                    let n: usize = body.parse().map_err(|_| "bad quantifier")?;
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        if min_rep > max_rep {
            return Err(format!("quantifier {{{min_rep},{max_rep}}} is inverted"));
        }
        atoms.push(Atom {
            chars: set,
            min_rep,
            max_rep,
        });
    }
    Ok(atoms)
}

// Tuple strategies compose componentwise.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `vec(element, size_range)` — the only collection strategy used.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` followed by
/// `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $p = $crate::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("property {} failed on case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategy_respects_class_and_bounds() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn dot_generates_printable_ascii() {
        let mut rng = TestRng::deterministic("dot");
        for _ in 0..100 {
            let s = Strategy::generate(&".{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples_and_vecs(
            rows in collection::vec(("[ab]", 0u8..4), 1..6),
            mut n in 1usize..5,
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 6);
            for (s, b) in &rows {
                prop_assert!(s == "a" || s == "b");
                prop_assert!(*b < 4);
            }
            n += 1;
            prop_assert!((2..=5).contains(&n));
        }
    }
}
