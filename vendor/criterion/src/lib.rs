//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use. The container cannot reach crates.io; this shim keeps the
//! bench sources compiling and produces simple wall-clock timings (mean
//! over a bounded number of iterations) instead of criterion's full
//! statistical analysis.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times a closure: one warm-up call, then up to `sample_size` measured
/// iterations bounded by the measurement budget.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    last_mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let started = Instant::now();
        let mut iters = 0u32;
        while iters < self.sample_size as u32 {
            black_box(f());
            iters += 1;
            if started.elapsed() > self.budget {
                break;
            }
        }
        self.last_mean = Some(started.elapsed() / iters.max(1));
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        budget,
        last_mean: None,
    };
    f(&mut bencher);
    match bencher.last_mean {
        Some(mean) => println!("bench {label:<56} {mean:>12.2?}/iter"),
        None => println!("bench {label:<56} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: self.sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    black_box(x * 2)
                })
            });
            g.finish();
        }
        assert!(calls >= 1, "closure must run at least the warm-up");
    }
}
