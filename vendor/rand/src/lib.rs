//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`). The container has no crates.io access, so the real crate
//! cannot be fetched; this shim keeps the same call sites compiling with a
//! deterministic xoshiro256** generator behind them.
//!
//! Determinism matters more than statistical polish here: the datagen
//! crate promises "equal seeds reproduce the workload bit for bit", which
//! holds as long as this generator is stable.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the algorithm the real `SmallRng` uses on 64-bit
    /// targets, seeded through splitmix64 exactly as `rand` does.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
