#!/usr/bin/env python3
"""CI crash smoke test for the durable `uniclean serve`.

Boots the daemon with a data directory, acknowledges a few batches,
fires a large batch and SIGKILLs the daemon while it is in flight, then
restarts on the same directory and asserts the recovered state is
exactly the acknowledged pre-kill state (or, when the kill landed after
the in-flight batch reached the WAL, that state plus the whole batch —
never anything in between, never anything less).

Usage: crash_smoke.py <uniclean-binary> <scratch-dir>
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time

BIG_ROWS = 20_000


def spawn(binary, data_dir):
    """Start the daemon, parse its banner for the ephemeral port."""
    proc = subprocess.Popen(
        [
            binary,
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--data-dir",
            data_dir,
            "--snapshot-every",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    banner = proc.stdout.readline()
    assert "listening on" in banner, f"unexpected banner: {banner!r}"
    addr = banner.split("listening on ")[1].split()[0]
    host, port = addr.rsplit(":", 1)
    return proc, host, int(port)


class Conn:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.rd = self.sock.makefile("r", encoding="utf-8")
        self.wr = self.sock.makefile("w", encoding="utf-8")

    def send(self, req):
        self.wr.write(json.dumps(req) + "\n")
        self.wr.flush()

    def rpc(self, req, want_ok=True):
        self.send(req)
        line = self.rd.readline()
        assert line, f"daemon closed the connection after {req!r}"
        resp = json.loads(line)
        if want_ok:
            assert resp.get("ok") is True, f"{req['op']}: {resp}"
        return resp


OPEN = {
    "op": "open",
    "relation": "crash",
    "table": "data",
    "attrs": ["K", "A", "B"],
    "rules": "cfd fd: data([K] -> [A])\n"
    "cfd cc: data([A=a1] -> [B=b1])\n"
    "md m: data[K] = m[K] -> data[B] <=> m[B]",
    "master": {
        "table": "m",
        "attrs": ["K", "B"],
        "rows": [["k0", "b1"], ["k1", "b2"]],
    },
    "phase": "full",
}

BATCHES = [
    [["k0", "a1", "b9"], ["k1", "a2", "b2"]],
    [["k2", "a3", "b3"], ["k0", "a1", "b8"]],
    [["k1", "a2", "b2"], ["k4", "a1", "b7"]],
]


def main():
    binary, scratch = sys.argv[1], sys.argv[2]
    data_dir = os.path.join(scratch, "crash-smoke-data")
    shutil.rmtree(data_dir, ignore_errors=True)
    os.makedirs(data_dir)

    # Phase 1: serve, acknowledge three batches, record the acked state.
    proc, host, port = spawn(binary, data_dir)
    conn = Conn(host, port)
    conn.rpc(OPEN)
    acked_total = 0
    for batch in BATCHES:
        resp = conn.rpc({"op": "ingest", "relation": "crash", "rows": batch})
        acked_total += len(batch)
        assert resp["total"] == acked_total, resp
    acked = conn.rpc({"op": "dump", "relation": "crash"})

    # Phase 2: fire a large batch and SIGKILL the daemon mid-flight.
    big = [[f"u{i}", f"a{i}", f"b{i}"] for i in range(BIG_ROWS)]
    conn.send({"op": "ingest", "relation": "crash", "rows": big})
    time.sleep(0.05)
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    conn.sock.close()

    # Phase 3: restart on the same directory; recovery must reproduce the
    # acknowledged state exactly (or acked + the whole in-flight batch).
    proc, host, port = spawn(binary, data_dir)
    conn = Conn(host, port)
    ping = conn.rpc({"op": "ping"})
    assert ping["durable"] is True, ping
    assert ping["recovery"]["relations"] == 1, ping
    assert ping["recovery"]["quarantined"] == [], ping
    recovered = conn.rpc({"op": "dump", "relation": "crash"})
    if recovered["rows"] == acked["rows"]:
        outcome = "acked prefix"
        assert recovered["cost"] == acked["cost"], recovered
    else:
        outcome = "acked prefix + in-flight batch"
        assert recovered["tuples"] == acked_total + BIG_ROWS, (
            f"recovered {recovered['tuples']} tuples; expected "
            f"{acked_total} (acked) or {acked_total + BIG_ROWS} (acked+in-flight)"
        )
        assert recovered["rows"][:acked_total] == acked["rows"], (
            "acked prefix of the recovered relation diverged"
        )

    # The recovered daemon keeps serving.
    resp = conn.rpc(
        {"op": "ingest", "relation": "crash", "rows": [["k9", "a9", "b9"]]}
    )
    assert resp["ingested"] == 1, resp
    resp = conn.rpc({"op": "shutdown"})
    assert resp.get("shutting_down") is True, resp
    conn.sock.close()
    assert proc.wait() == 0, "daemon did not shut down cleanly after recovery"
    print(f"crash smoke: SIGKILL mid-ingest recovered to the {outcome}")


if __name__ == "__main__":
    main()
