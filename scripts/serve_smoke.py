#!/usr/bin/env python3
"""CI smoke test for `uniclean serve`.

Connects to a running daemon, walks the full verb set (open, ingest x3,
check, stats, dump, close, shutdown) and asserts every reply. Exits
nonzero on any protocol violation; the workflow then `wait`s on the
daemon to assert a clean exit code.

Usage: serve_smoke.py [host] [port]
"""

import json
import socket
import sys
import time


def connect(host, port, attempts=50):
    """The daemon may still be binding when we start; retry briefly."""
    for i in range(attempts):
        try:
            return socket.create_connection((host, port), timeout=10)
        except OSError:
            if i + 1 == attempts:
                raise
            time.sleep(0.2)


def main():
    host = sys.argv[1] if len(sys.argv) > 1 else "127.0.0.1"
    port = int(sys.argv[2]) if len(sys.argv) > 2 else 7401

    sock = connect(host, port)
    rd = sock.makefile("r", encoding="utf-8")
    wr = sock.makefile("w", encoding="utf-8")

    def rpc(req, want_ok=True):
        wr.write(json.dumps(req) + "\n")
        wr.flush()
        line = rd.readline()
        assert line, f"daemon closed the connection after {req!r}"
        resp = json.loads(line)
        if want_ok:
            assert resp.get("ok") is True, f"{req['op']}: {resp}"
        return resp

    resp = rpc(
        {
            "op": "open",
            "relation": "smoke",
            "table": "data",
            "attrs": ["K", "A", "B"],
            "rules": "cfd fd: data([K] -> [A])\n"
            "cfd cc: data([A=a1] -> [B=b1])\n"
            "md m: data[K] = m[K] -> data[B] <=> m[B]",
            "master": {
                "table": "m",
                "attrs": ["K", "B"],
                "rows": [["k0", "b1"], ["k1", "b2"]],
            },
            "phase": "full",
        }
    )
    assert resp["relation"] == "smoke", resp

    total = 0
    for batch in (
        [["k0", "a1", "b9"], ["k1", "a2", "b2"]],
        [["k0", "a1", "b1"]],
        [["k2", "a3", "b3"], ["k2", "a4", "b3"], ["k1", "a2", "b2"]],
    ):
        resp = rpc({"op": "ingest", "relation": "smoke", "rows": batch})
        assert resp["ingested"] == len(batch), resp
        total += len(batch)
        assert resp["total"] == total, resp

    resp = rpc({"op": "check", "relation": "smoke"})
    assert resp["tuples"] == total, resp
    resp = rpc({"op": "check", "relation": "smoke", "tuple": 0})
    assert "accepted" in resp and "violations" in resp, resp

    resp = rpc({"op": "stats"})
    assert len(resp["shards"]) == 2, resp
    rel = resp["relations"][0]
    assert rel["relation"] == "smoke" and rel["batches"] == 3, rel

    resp = rpc({"op": "dump", "relation": "smoke"})
    assert len(resp["rows"]) == total, resp

    resp = rpc({"op": "nonsense"}, want_ok=False)
    assert resp["code"] == "unknown_op", resp

    resp = rpc({"op": "ping"})
    assert resp["uptime_seconds"] >= 0, resp
    assert resp["relations"] == 1 and resp["shards"] == 2, resp
    assert resp["shutting_down"] is False, resp

    rpc({"op": "close", "relation": "smoke"})
    # Close is idempotent and distinguishable from a name that never
    # existed.
    resp = rpc({"op": "close", "relation": "smoke"}, want_ok=False)
    assert resp["code"] == "already_closed", resp
    resp = rpc({"op": "close", "relation": "never"}, want_ok=False)
    assert resp["code"] == "unknown_relation", resp

    resp = rpc({"op": "shutdown"})
    assert resp.get("shutting_down") is True, resp

    sock.close()
    print("serve smoke: all verbs answered correctly")


if __name__ == "__main__":
    main()
