//! Failpoint-style fault injection, compiled in only under the
//! `failpoints` cargo feature.
//!
//! Durability code is riddled with narrow windows — after the frame
//! header is written but before the payload, after the fsync but before
//! the ack — that real crashes hit rarely and non-deterministically.
//! Each window is named by a [`hit`] call; with the feature enabled a
//! test (or the `UNICLEAN_FAILPOINTS` environment variable, for
//! spawned-process tests) arms a named point with an action:
//!
//! * `kill` — `std::process::abort()`: a SIGKILL-equivalent crash, no
//!   destructors, no flushes;
//! * `panic` — unwind from the hit site (exercises `catch_unwind`
//!   tenant poisoning);
//! * `error` — return `io::Error` from the hit site (exercises the
//!   transient-failure retry paths).
//!
//! Replication extends the vocabulary to the **wire**: a [`net_hit`]
//! site mangles what the primary is about to send a tailing standby,
//! exercising the standby's checksum/retry/dedup machinery end-to-end:
//!
//! * `disconnect` — close the connection mid-reply (a partial line
//!   reaches the peer);
//! * `truncate` — cut a streamed frame short (torn frame on the wire);
//! * `corrupt` — flip a byte in a streamed frame (the FNV checksum must
//!   catch it);
//! * `dup` — send the same frames twice (the peer must dedup by
//!   sequence);
//! * `delay` — stall the reply ~100ms (lag visibility, timeout paths).
//!
//! `UNICLEAN_FAILPOINTS` grammar: `name=action` entries separated by
//! `;`, with an optional `@N` suffix firing on the Nth hit (1-based,
//! default 1). Every armed point is one-shot: it disarms when it fires.
//! [`hit`] only fires process actions (`kill`/`panic`/`error`) and
//! [`net_hit`] only fires network ones, without consuming each other's
//! countdowns, so one site name can host either kind. Without the
//! feature, every function here is an inlined no-op.
//!
//! Points wired in this crate: `wal.pre_frame`, `wal.mid_frame`,
//! `wal.pre_fsync`, `wal.post_fsync` (all inside
//! [`crate::wal::WalWriter::append`]), `ingest.apply`,
//! `ingest.post_ack` (shard worker), `snapshot.mid_write`,
//! `snapshot.pre_rename`, `snapshot.pre_wal_rewrite` (compaction),
//! `repl.fetch` ([`hit`]) and `repl.fetch.net` ([`net_hit`]) in the
//! primary's replication fetch handler, and `repl.ack` in its ack
//! handler.

/// How an armed network failpoint mangles the stream (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Close the connection mid-reply.
    Disconnect,
    /// Truncate a streamed frame.
    Truncate,
    /// Flip a byte in a streamed frame.
    Corrupt,
    /// Send the frames twice.
    Duplicate,
    /// Stall the reply ~100ms.
    Delay,
}

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// `std::process::abort()` — crash without unwinding or flushing.
    Kill,
    /// Panic from the hit site.
    Panic,
    /// Return an `io::Error` from the hit site.
    Error,
    /// Mangle the wire at a [`net_hit`] site.
    Net(NetFault),
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FaultAction, NetFault};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Armed {
        action: FaultAction,
        /// Hits remaining before firing; fires when this reaches zero.
        countdown: u64,
    }

    fn table() -> &'static Mutex<HashMap<String, Armed>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arm `name` to fire on its `at_hit`-th hit (1-based).
    pub fn arm(name: &str, action: FaultAction, at_hit: u64) {
        table()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                name.to_string(),
                Armed {
                    action,
                    countdown: at_hit.max(1),
                },
            );
    }

    /// Disarm everything.
    pub fn clear() {
        table()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Arm failpoints from `UNICLEAN_FAILPOINTS`
    /// (`name=action[@N];name=action…`). Unparseable entries are ignored
    /// rather than trusted: a fault-injection harness that arms nothing
    /// fails its assertions loudly anyway.
    pub fn init_from_env() {
        let Ok(spec) = std::env::var("UNICLEAN_FAILPOINTS") else {
            return;
        };
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let Some((name, rhs)) = entry.split_once('=') else {
                continue;
            };
            let (action, at_hit) = match rhs.split_once('@') {
                Some((a, n)) => (a, n.parse::<u64>().unwrap_or(1)),
                None => (rhs, 1),
            };
            let action = match action.trim() {
                "kill" => FaultAction::Kill,
                "panic" => FaultAction::Panic,
                "error" => FaultAction::Error,
                "disconnect" => FaultAction::Net(NetFault::Disconnect),
                "truncate" => FaultAction::Net(NetFault::Truncate),
                "corrupt" => FaultAction::Net(NetFault::Corrupt),
                "dup" => FaultAction::Net(NetFault::Duplicate),
                "delay" => FaultAction::Net(NetFault::Delay),
                _ => continue,
            };
            arm(name.trim(), action, at_hit);
        }
    }

    /// Pull the armed action at `name` if `kind_matches` accepts it,
    /// decrementing/disarming only entries of the matching kind.
    fn fire(name: &str, kind_matches: impl Fn(&FaultAction) -> bool) -> Option<FaultAction> {
        let mut map = table().lock().unwrap_or_else(PoisonError::into_inner);
        let armed = map.get_mut(name)?;
        if !kind_matches(&armed.action) {
            return None;
        }
        armed.countdown -= 1;
        if armed.countdown > 0 {
            return None;
        }
        let action = armed.action;
        map.remove(name);
        Some(action)
    }

    /// A named process-fault hit site. Fires (and disarms) an armed
    /// `kill`/`panic`/`error` once the hit count is reached; otherwise a
    /// no-op returning `Ok`. Network-armed entries at the same name are
    /// left untouched.
    pub fn hit(name: &str) -> std::io::Result<()> {
        match fire(name, |a| !matches!(a, FaultAction::Net(_))) {
            None => Ok(()),
            Some(FaultAction::Kill) => std::process::abort(),
            Some(FaultAction::Panic) => panic!("failpoint {name:?} fired"),
            Some(FaultAction::Error) => Err(std::io::Error::other(format!(
                "failpoint {name:?} injected an error"
            ))),
            Some(FaultAction::Net(_)) => unreachable!("net actions filtered out"),
        }
    }

    /// A named network-fault hit site: the caller applies the returned
    /// mangling to its outbound bytes. Process-armed entries at the same
    /// name are left untouched.
    pub fn net_hit(name: &str) -> Option<NetFault> {
        match fire(name, |a| matches!(a, FaultAction::Net(_))) {
            Some(FaultAction::Net(f)) => Some(f),
            _ => None,
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::{FaultAction, NetFault};

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn arm(_name: &str, _action: FaultAction, _at_hit: u64) {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn clear() {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn init_from_env() {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn hit(_name: &str) -> std::io::Result<()> {
        Ok(())
    }

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn net_hit(_name: &str) -> Option<NetFault> {
        None
    }
}

pub use imp::{arm, clear, hit, init_from_env, net_hit};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // Failpoint state is process-global; keep every case in one test so
    // plain `cargo test --features failpoints` can't interleave them.
    #[test]
    fn arming_counting_and_error_injection() {
        clear();
        assert!(hit("unarmed.point").is_ok());
        assert_eq!(net_hit("unarmed.point"), None);

        arm("p.error", FaultAction::Error, 2);
        assert!(hit("p.error").is_ok(), "first hit under the count");
        let e = hit("p.error").expect_err("second hit fires");
        assert!(e.to_string().contains("p.error"));
        assert!(hit("p.error").is_ok(), "one-shot: disarmed after firing");

        arm("p.panic", FaultAction::Panic, 1);
        let caught = std::panic::catch_unwind(|| hit("p.panic"));
        assert!(caught.is_err());

        // Network faults fire only through net_hit, and vice versa.
        arm("p.net", FaultAction::Net(NetFault::Corrupt), 1);
        assert!(hit("p.net").is_ok(), "hit ignores a net-armed point");
        assert_eq!(net_hit("p.net"), Some(NetFault::Corrupt));
        assert_eq!(net_hit("p.net"), None, "one-shot");
        arm("p.proc", FaultAction::Error, 1);
        assert_eq!(net_hit("p.proc"), None, "net_hit ignores a process point");
        assert!(hit("p.proc").is_err(), "countdown not consumed by net_hit");
        clear();
    }
}
