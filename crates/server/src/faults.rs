//! Failpoint-style fault injection, compiled in only under the
//! `failpoints` cargo feature.
//!
//! Durability code is riddled with narrow windows — after the frame
//! header is written but before the payload, after the fsync but before
//! the ack — that real crashes hit rarely and non-deterministically.
//! Each window is named by a [`hit`] call; with the feature enabled a
//! test (or the `UNICLEAN_FAILPOINTS` environment variable, for
//! spawned-process tests) arms a named point with an action:
//!
//! * `kill` — `std::process::abort()`: a SIGKILL-equivalent crash, no
//!   destructors, no flushes;
//! * `panic` — unwind from the hit site (exercises `catch_unwind`
//!   tenant poisoning);
//! * `error` — return `io::Error` from the hit site (exercises the
//!   transient-failure retry paths).
//!
//! `UNICLEAN_FAILPOINTS` grammar: `name=action` entries separated by
//! `;`, with an optional `@N` suffix firing on the Nth hit (1-based,
//! default 1). Every armed point is one-shot: it disarms when it fires.
//! Without the feature, every function here is an inlined no-op.
//!
//! Points wired in this crate: `wal.pre_frame`, `wal.mid_frame`,
//! `wal.pre_fsync`, `wal.post_fsync` (all inside
//! [`crate::wal::WalWriter::append`]), `ingest.apply`,
//! `ingest.post_ack` (shard worker), `snapshot.mid_write`,
//! `snapshot.pre_rename`, `snapshot.pre_wal_rewrite` (compaction).

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// `std::process::abort()` — crash without unwinding or flushing.
    Kill,
    /// Panic from the hit site.
    Panic,
    /// Return an `io::Error` from the hit site.
    Error,
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FaultAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Armed {
        action: FaultAction,
        /// Hits remaining before firing; fires when this reaches zero.
        countdown: u64,
    }

    fn table() -> &'static Mutex<HashMap<String, Armed>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arm `name` to fire on its `at_hit`-th hit (1-based).
    pub fn arm(name: &str, action: FaultAction, at_hit: u64) {
        table()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                name.to_string(),
                Armed {
                    action,
                    countdown: at_hit.max(1),
                },
            );
    }

    /// Disarm everything.
    pub fn clear() {
        table()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Arm failpoints from `UNICLEAN_FAILPOINTS`
    /// (`name=action[@N];name=action…`). Unparseable entries are ignored
    /// rather than trusted: a fault-injection harness that arms nothing
    /// fails its assertions loudly anyway.
    pub fn init_from_env() {
        let Ok(spec) = std::env::var("UNICLEAN_FAILPOINTS") else {
            return;
        };
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let Some((name, rhs)) = entry.split_once('=') else {
                continue;
            };
            let (action, at_hit) = match rhs.split_once('@') {
                Some((a, n)) => (a, n.parse::<u64>().unwrap_or(1)),
                None => (rhs, 1),
            };
            let action = match action.trim() {
                "kill" => FaultAction::Kill,
                "panic" => FaultAction::Panic,
                "error" => FaultAction::Error,
                _ => continue,
            };
            arm(name.trim(), action, at_hit);
        }
    }

    /// A named hit site. Fires (and disarms) the armed action once the
    /// hit count is reached; otherwise a no-op returning `Ok`.
    pub fn hit(name: &str) -> std::io::Result<()> {
        let action = {
            let mut map = table().lock().unwrap_or_else(PoisonError::into_inner);
            match map.get_mut(name) {
                None => return Ok(()),
                Some(armed) => {
                    armed.countdown -= 1;
                    if armed.countdown > 0 {
                        return Ok(());
                    }
                    let action = armed.action;
                    map.remove(name);
                    action
                }
            }
        };
        match action {
            FaultAction::Kill => std::process::abort(),
            FaultAction::Panic => panic!("failpoint {name:?} fired"),
            FaultAction::Error => Err(std::io::Error::other(format!(
                "failpoint {name:?} injected an error"
            ))),
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::FaultAction;

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn arm(_name: &str, _action: FaultAction, _at_hit: u64) {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn clear() {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn init_from_env() {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn hit(_name: &str) -> std::io::Result<()> {
        Ok(())
    }
}

pub use imp::{arm, clear, hit, init_from_env};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // Failpoint state is process-global; keep every case in one test so
    // plain `cargo test --features failpoints` can't interleave them.
    #[test]
    fn arming_counting_and_error_injection() {
        clear();
        assert!(hit("unarmed.point").is_ok());

        arm("p.error", FaultAction::Error, 2);
        assert!(hit("p.error").is_ok(), "first hit under the count");
        let e = hit("p.error").expect_err("second hit fires");
        assert!(e.to_string().contains("p.error"));
        assert!(hit("p.error").is_ok(), "one-shot: disarmed after firing");

        arm("p.panic", FaultAction::Panic, 1);
        let caught = std::panic::catch_unwind(|| hit("p.panic"));
        assert!(caught.is_err());
        clear();
    }
}
