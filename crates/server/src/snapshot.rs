//! Compacting tenant snapshots.
//!
//! A snapshot bounds recovery time and WAL growth: every
//! `--snapshot-every` logged batches the owning shard worker writes the
//! tenant's **cumulative acknowledged input** (plus counters and the
//! repaired relation as an integrity cross-check) to `snapshot.json`,
//! then rewrites the WAL down to just its `open` record.
//!
//! Why store base rows rather than the repaired relation alone: a
//! [`uniclean_core::RepairState`] carries machinery (fixpoint caches,
//! acceptance index, match state) that cannot be reconstructed from
//! repaired output — re-ingesting a dump is not the same state (marks
//! and provenance differ). Replaying the original input through
//! `clean_delta` *is* bit-identical, by the §5.2 order-independence
//! result the determinism tests pin. The stored `repaired`/`cost` pair
//! is a cross-check: recovery replays `base_rows` and verifies the
//! result matches byte-for-byte before trusting the snapshot; a mismatch
//! demotes it to the `.prev` fallback or a full WAL replay.
//!
//! Write protocol (crash-safe at every step): render → frame-encode →
//! write `snapshot.json.tmp` → fsync → rename current to
//! `snapshot.json.prev` → rename tmp into place → fsync dir. Transient
//! fs errors are retried with backoff; persistent failure leaves the WAL
//! untouched (durability holds, compaction just retries later).

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::time::Duration;

use uniclean_model::frame::{encode_frame, scan_frames};
use uniclean_model::Json;

use crate::faults;

/// The live snapshot file name inside a tenant directory.
pub const SNAP_FILE: &str = "snapshot.json";
/// The previous snapshot, kept as a fallback until the next rotation.
pub const SNAP_PREV: &str = "snapshot.json.prev";
/// Scratch name for the in-progress write; a leftover one is garbage.
pub const SNAP_TMP: &str = "snapshot.json.tmp";

/// Backoff schedule for transient fs errors (attempt `i` sleeps
/// `RETRY_BACKOFF[i]` before retrying; len+1 attempts total).
const RETRY_BACKOFF: [Duration; 2] = [Duration::from_millis(10), Duration::from_millis(50)];

/// Everything a snapshot persists.
pub struct SnapshotDoc {
    /// WAL sequence number of the last batch this snapshot covers;
    /// recovery skips WAL records with `seq <= seq`.
    pub seq: u64,
    /// The original `open` request document.
    pub open: Json,
    /// Cumulative acknowledged input rows, ingest wire shape with
    /// explicit `[value, cf]` cells — what recovery replays.
    pub base_rows: Json,
    /// Cumulative serving counters at `seq`.
    pub batches: u64,
    /// Cumulative tuples ingested at `seq`.
    pub tuples_ingested: u64,
    /// Cumulative fixes at `seq`.
    pub fixes: u64,
    /// Cumulative per-phase wall-clock seconds at `seq`.
    pub phase_seconds: [f64; 3],
    /// The repaired relation at `seq` (dump wire shape) — integrity
    /// cross-check for the replay, not the recovery source.
    pub repaired: Json,
    /// Repair cost at `seq` — second half of the cross-check.
    pub cost: f64,
    /// Highest client-supplied exactly-once sequence number covered, if
    /// any batch carried one (absent key in old snapshots ⇒ `None`).
    pub last_client_seq: Option<u64>,
    /// Primary WAL sequence this state mirrors, when the writer is (or
    /// was) a tailing standby.
    pub repl_seq: Option<u64>,
}

impl SnapshotDoc {
    fn to_json(&self) -> Json {
        let mut doc = Json::Obj(vec![
            ("version".to_string(), Json::Num(1.0)),
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("open".to_string(), self.open.clone()),
            ("base_rows".to_string(), self.base_rows.clone()),
            ("batches".to_string(), Json::Num(self.batches as f64)),
            (
                "tuples_ingested".to_string(),
                Json::Num(self.tuples_ingested as f64),
            ),
            ("fixes".to_string(), Json::Num(self.fixes as f64)),
            (
                "phase_seconds".to_string(),
                Json::Arr(self.phase_seconds.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("repaired".to_string(), self.repaired.clone()),
            ("cost".to_string(), Json::Num(self.cost)),
        ]);
        // Optional markers are written as absent keys, not nulls, so a
        // pre-replication reader sees exactly the version-1 shape it knows.
        let Json::Obj(pairs) = &mut doc else {
            unreachable!("snapshot doc is an object")
        };
        if let Some(cs) = self.last_client_seq {
            pairs.push(("last_client_seq".to_string(), Json::Num(cs as f64)));
        }
        if let Some(rs) = self.repl_seq {
            pairs.push(("repl_seq".to_string(), Json::Num(rs as f64)));
        }
        doc
    }

    pub(crate) fn from_json(doc: &Json) -> Option<SnapshotDoc> {
        if doc.get("version").and_then(Json::as_usize) != Some(1) {
            return None;
        }
        let phase = doc.get("phase_seconds").and_then(Json::as_arr)?;
        if phase.len() != 3 {
            return None;
        }
        let mut phase_seconds = [0.0; 3];
        for (slot, v) in phase_seconds.iter_mut().zip(phase) {
            *slot = v.as_f64()?;
        }
        Some(SnapshotDoc {
            seq: doc.get("seq").and_then(Json::as_usize)? as u64,
            open: doc.get("open")?.clone(),
            base_rows: doc.get("base_rows")?.clone(),
            batches: doc.get("batches").and_then(Json::as_usize)? as u64,
            tuples_ingested: doc.get("tuples_ingested").and_then(Json::as_usize)? as u64,
            fixes: doc.get("fixes").and_then(Json::as_usize)? as u64,
            phase_seconds,
            repaired: doc.get("repaired")?.clone(),
            cost: doc.get("cost").and_then(Json::as_f64)?,
            last_client_seq: doc
                .get("last_client_seq")
                .and_then(Json::as_usize)
                .map(|v| v as u64),
            repl_seq: doc
                .get("repl_seq")
                .and_then(Json::as_usize)
                .map(|v| v as u64),
        })
    }
}

/// Write `doc` atomically into `dir`, rotating the previous snapshot to
/// [`SNAP_PREV`]. Retries transient fs errors with backoff; the whole
/// attempt restarts from the tmp write, which is idempotent.
pub fn write_snapshot(dir: &Path, doc: &SnapshotDoc, fsync: bool) -> std::io::Result<()> {
    with_retries(|| write_snapshot_once(dir, doc, fsync))
}

fn write_snapshot_once(dir: &Path, doc: &SnapshotDoc, fsync: bool) -> std::io::Result<()> {
    let payload = doc.to_json().render().into_bytes();
    let mut buf = Vec::with_capacity(payload.len() + 16);
    encode_frame(&payload, &mut buf);
    let tmp = dir.join(SNAP_TMP);
    {
        let mut f = File::create(&tmp)?;
        let half = buf.len() / 2;
        f.write_all(&buf[..half])?;
        faults::hit("snapshot.mid_write")?;
        f.write_all(&buf[half..])?;
        if fsync {
            f.sync_data()?;
        }
    }
    faults::hit("snapshot.pre_rename")?;
    let current = dir.join(SNAP_FILE);
    if current.exists() {
        std::fs::rename(&current, dir.join(SNAP_PREV))?;
    }
    std::fs::rename(&tmp, &current)?;
    if fsync {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Load the usable snapshots of `dir` in preference order: the current
/// one first, then the `.prev` fallback. Unreadable, torn or misshapen
/// files are skipped, not errors — recovery degrades to the next
/// candidate (ultimately a full WAL replay).
pub fn load_snapshots(dir: &Path) -> Vec<SnapshotDoc> {
    [SNAP_FILE, SNAP_PREV]
        .iter()
        .filter_map(|name| load_one(&dir.join(name)))
        .collect()
}

fn load_one(path: &Path) -> Option<SnapshotDoc> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    let (frames, torn) = scan_frames(&bytes);
    // A snapshot is exactly one frame spanning the whole file.
    if frames.len() != 1 || torn.is_some() {
        return None;
    }
    let doc = Json::parse(std::str::from_utf8(frames[0]).ok()?).ok()?;
    SnapshotDoc::from_json(&doc)
}

/// fsync a directory so renames inside it are durable.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Run `op`, retrying transient fs errors on the [`RETRY_BACKOFF`]
/// schedule.
pub fn with_retries<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut last = None;
    for (attempt, backoff) in RETRY_BACKOFF
        .iter()
        .map(Some)
        .chain(std::iter::once(None))
        .enumerate()
    {
        match op() {
            Ok(v) => {
                let _ = attempt;
                return Ok(v);
            }
            Err(e) => match backoff {
                Some(delay) => {
                    std::thread::sleep(*delay);
                    last = Some(e);
                }
                None => return Err(e),
            },
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("retry loop exhausted")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("uniclean-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn doc(seq: u64) -> SnapshotDoc {
        SnapshotDoc {
            seq,
            open: Json::parse(r#"{"op":"open","relation":"t"}"#).unwrap(),
            base_rows: Json::Arr(vec![Json::Arr(vec![Json::Arr(vec![
                Json::Num(seq as f64),
                Json::Num(0.25),
            ])])]),
            batches: seq,
            tuples_ingested: 3 * seq,
            fixes: 1,
            phase_seconds: [0.5, 0.0, 0.125],
            repaired: Json::Arr(vec![]),
            cost: 2.5,
            last_client_seq: Some(7 * seq),
            repl_seq: None,
        }
    }

    #[test]
    fn write_rotate_load_round_trip() {
        let dir = tmpdir("rotate");
        write_snapshot(&dir, &doc(4), true).unwrap();
        let loaded = load_snapshots(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].seq, 4);
        assert_eq!(loaded[0].base_rows.render(), doc(4).base_rows.render());
        assert_eq!(loaded[0].phase_seconds, [0.5, 0.0, 0.125]);
        assert_eq!(loaded[0].last_client_seq, Some(28));
        assert_eq!(loaded[0].repl_seq, None);

        // Second write rotates the first to .prev; both load, newest first.
        write_snapshot(&dir, &doc(9), false).unwrap();
        let loaded = load_snapshots(&dir);
        assert_eq!(loaded.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![9, 4]);

        // Corrupting the current one demotes recovery to the fallback.
        let mut bytes = std::fs::read(dir.join(SNAP_FILE)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(dir.join(SNAP_FILE), &bytes).unwrap();
        let loaded = load_snapshots(&dir);
        assert_eq!(loaded.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retries_retry_and_eventually_surface() {
        let mut failures = 2;
        let v = with_retries(|| {
            if failures > 0 {
                failures -= 1;
                Err(std::io::Error::other("transient"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(v, 42);

        let e = with_retries::<()>(|| Err(std::io::Error::other("persistent"))).unwrap_err();
        assert!(e.to_string().contains("persistent"));
    }
}
