//! Shard worker pool: bounded per-shard job queues and the workers that
//! drain them.
//!
//! Every mutation of a relation (ingest, close) is routed to the shard
//! owning it ([`crate::shard_for`]), so one relation's mutations apply in
//! submission order while distinct relations on distinct shards clean in
//! parallel. Queues are `sync_channel`-bounded; the submit path (in
//! [`crate::daemon`]) answers `busy` instead of blocking when a queue is
//! full. Dropping all senders is the shutdown signal: each worker drains
//! what is already queued, then exits.
//!
//! The worker is also where the durability ordering and the blast-radius
//! guarantees live:
//!
//! * an ingest applies under `catch_unwind` — a panicking phase poisons
//!   **that tenant** (sticky flag + structured `poisoned` replies) and
//!   the worker moves on to the next job; nothing is logged for the
//!   failed batch, so durable state stays exactly the acknowledged
//!   prefix;
//! * for a durable tenant, the accepted batch is WAL-appended and
//!   fsync'd **before** the reply is sent — the ack implies the batch
//!   survives any crash; a WAL failure poisons the tenant and answers
//!   `wal_error` instead of acking a batch that might not be durable;
//! * after `--snapshot-every` logged batches the worker compacts:
//!   snapshot first (atomic rename, [`crate::snapshot`]), then the WAL
//!   rewrite — failures are logged and retried at the next batch, never
//!   fatal, because the un-rewritten WAL still carries everything.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use uniclean_model::json::{batch_to_ingest_json, relation_to_json};
use uniclean_model::{Json, Tuple};

use crate::faults;
use crate::protocol::{clean_error, error, error_with, ok};
use crate::registry::{DurabilityCfg, Durable, Registry, Tenant};
use crate::snapshot::{write_snapshot, SnapshotDoc};
use crate::stats::{PhaseAccum, ShardStats};
use crate::wal::{self, WalWriter};

/// One unit of serialized per-relation work. Replies travel back over a
/// rendezvous channel to the submitting connection thread.
pub(crate) enum Job {
    /// Apply a decoded batch through `clean_delta`.
    Ingest {
        tenant: Arc<Tenant>,
        rows: Vec<Tuple>,
        /// Client-supplied exactly-once sequence number (dedup key).
        client_seq: Option<u64>,
        /// Primary WAL sequence, when the submitter is the replication
        /// puller mirroring a primary's log.
        repl_seq: Option<u64>,
        reply: SyncSender<Json>,
    },
    /// Drop a relation — routed through its shard so the close lands
    /// *after* every ingest already queued for it.
    Close {
        registry: Arc<Registry>,
        name: String,
        reply: SyncSender<Json>,
    },
}

/// What [`spawn_workers`] hands back: one job sender and one stats block
/// per shard, plus the worker handles the daemon joins on shutdown.
pub(crate) type WorkerPool = (
    Vec<SyncSender<Job>>,
    Vec<Arc<ShardStats>>,
    Vec<JoinHandle<()>>,
);

/// Spawn `shards` workers with queues bounded at `queue_bound`.
/// `durability` carries the snapshot cadence and fsync policy; `None`
/// for a memory-only daemon.
pub(crate) fn spawn_workers(
    shards: usize,
    queue_bound: usize,
    durability: Option<Arc<DurabilityCfg>>,
) -> WorkerPool {
    let mut senders = Vec::with_capacity(shards);
    let mut stats = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (tx, rx) = sync_channel::<Job>(queue_bound);
        let shard_stats = Arc::new(ShardStats::default());
        let durability = durability.clone();
        senders.push(tx);
        stats.push(shard_stats.clone());
        handles.push(
            std::thread::Builder::new()
                .name(format!("uniclean-shard-{shard}"))
                .spawn(move || worker(rx, shard_stats, durability))
                .expect("spawn shard worker"),
        );
    }
    (senders, stats, handles)
}

/// Worker loop: drain the queue until every sender is dropped.
fn worker(rx: Receiver<Job>, stats: Arc<ShardStats>, durability: Option<Arc<DurabilityCfg>>) {
    while let Ok(job) = rx.recv() {
        let (reply, response) = match job {
            Job::Ingest {
                tenant,
                rows,
                client_seq,
                repl_seq,
                reply,
            } => {
                let response =
                    process_ingest(&tenant, &rows, client_seq, repl_seq, durability.as_deref());
                (reply, response)
            }
            Job::Close {
                registry,
                name,
                reply,
            } => {
                let response = close_tenant(&registry, &name);
                (reply, response)
            }
        };
        stats.record_done();
        // The submitter may have hung up (connection dropped); the job's
        // effect stands either way.
        let _ = reply.send(response);
        // Kill point *after* the ack left this process: the batch is
        // durable and acknowledged, so recovery must reproduce it.
        let _ = faults::hit("ingest.post_ack");
    }
}

/// One ingest, end to end: poisoned gate → panic-isolated apply → WAL
/// append + fsync → (maybe) snapshot compaction. Only after all of that
/// does the caller ack.
pub(crate) fn process_ingest(
    tenant: &Arc<Tenant>,
    rows: &[Tuple],
    client_seq: Option<u64>,
    repl_seq: Option<u64>,
    durability: Option<&DurabilityCfg>,
) -> Json {
    if tenant.is_poisoned() {
        return tenant.poisoned_error();
    }
    // A panicking phase must take down this batch, not this process: the
    // worker thread owns no state that the unwind can corrupt beyond the
    // tenant's own entry (whose lock poisoning the entry_* helpers
    // tolerate), so the tenant-level sticky flag is the real fence.
    let response = match catch_unwind(AssertUnwindSafe(|| {
        apply_ingest(tenant, rows, client_seq, repl_seq)
    })) {
        Ok(resp) => resp,
        Err(_) => {
            tenant.poison();
            return tenant.poisoned_error();
        }
    };
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        return response; // engine rejected the batch: nothing to log
    }
    if response.get("deduped").and_then(Json::as_bool) == Some(true) {
        return response; // a retry of an applied batch: already logged
    }
    if let Err(e) = log_accepted_batch(tenant, rows, client_seq, repl_seq, durability) {
        // The frame may be half-written; never append again, and never
        // ack a batch whose durability is unknown.
        tenant.poison();
        return error_with(
            "wal_error",
            format!(
                "relation {:?}: WAL append failed ({e}); tenant poisoned, batch not acknowledged",
                tenant.name
            ),
            vec![("relation", Json::str(&tenant.name))],
        );
    }
    response
}

/// Apply one batch to a tenant under its entry write lock. Duplicate
/// deliveries — a client retry re-sending its sequence number, or a
/// replication round re-streaming frames after a network fault — are
/// acknowledged without re-applying: the sequence checks below are what
/// turns at-least-once delivery into exactly-once application.
fn apply_ingest(
    tenant: &Arc<Tenant>,
    rows: &[Tuple],
    client_seq: Option<u64>,
    repl_seq: Option<u64>,
) -> Json {
    if let Err(e) = faults::hit("ingest.apply") {
        return error("fault_injected", e.to_string());
    }
    let mut entry = tenant.entry_write();
    let duplicate = matches!((repl_seq, entry.repl_seq), (Some(rs), Some(prev)) if rs <= prev)
        || matches!((client_seq, entry.last_client_seq), (Some(cs), Some(prev)) if cs <= prev);
    if duplicate {
        return ok(vec![
            ("relation", Json::str(&tenant.name)),
            ("deduped", Json::Bool(true)),
            ("total", Json::Num(entry.state.len() as f64)),
            ("consistent", Json::Bool(entry.state.consistent())),
            ("cost", Json::Num(entry.state.cost())),
        ]);
    }
    let offset = entry.state.len();
    let escalations_before = entry.state.escalations();
    let mut accum = PhaseAccum::default();
    let result = tenant
        .cleaner
        .clean_delta_observed(&mut entry.state, rows, &mut accum);
    match result {
        Ok(res) => {
            let (d, r, p) = res.fix_counts();
            entry.stats.batches += 1;
            entry.stats.tuples_ingested += rows.len() as u64;
            entry.stats.fixes += (d + r + p) as u64;
            for (slot, s) in entry.stats.phase_seconds.iter_mut().zip(accum.seconds) {
                *slot += s;
            }
            if client_seq.is_some() {
                entry.last_client_seq = entry.last_client_seq.max(client_seq);
            }
            if repl_seq.is_some() {
                entry.repl_seq = entry.repl_seq.max(repl_seq);
            }
            ok(vec![
                ("relation", Json::str(&tenant.name)),
                ("offset", Json::Num(offset as f64)),
                ("ingested", Json::Num(rows.len() as f64)),
                ("total", Json::Num(entry.state.len() as f64)),
                ("fixes", Json::Num((d + r + p) as f64)),
                ("consistent", Json::Bool(res.consistent)),
                (
                    "escalated",
                    Json::Bool(entry.state.escalations() > escalations_before),
                ),
                ("cost", Json::Num(entry.state.cost())),
            ])
        }
        Err(e) => clean_error(&e),
    }
}

/// WAL-append an applied batch (fsync before returning — the ack
/// ordering guarantee), then compact if the cadence says so.
fn log_accepted_batch(
    tenant: &Arc<Tenant>,
    rows: &[Tuple],
    client_seq: Option<u64>,
    repl_seq: Option<u64>,
    durability: Option<&DurabilityCfg>,
) -> std::io::Result<()> {
    let mut guard = tenant.durable_lock();
    let Some(d) = guard.as_mut() else {
        return Ok(()); // memory-only tenant
    };
    let rows_json = batch_to_ingest_json(rows);
    d.seq += 1;
    d.wal.append(&wal::batch_record(
        d.seq,
        rows_json.clone(),
        client_seq,
        repl_seq,
    ))?;
    d.since_snapshot += 1;
    if let Json::Arr(rows_vec) = rows_json {
        d.base_rows.extend(rows_vec);
    }
    if let Some(cfg) = durability {
        if cfg.snapshot_every > 0 && d.since_snapshot >= cfg.snapshot_every {
            // Compaction failure is not an ingest failure: the WAL still
            // carries every batch, so durability holds; warn and retry at
            // the next batch.
            if let Err(e) = compact(tenant, d, cfg) {
                eprintln!(
                    "uniclean serve: snapshot compaction for {:?} failed ({e}); will retry",
                    tenant.name
                );
            }
        }
    }
    Ok(())
}

/// Snapshot the tenant's cumulative state, then rewrite the WAL down to
/// its `open` record. Crash-ordering: the snapshot (with its covering
/// `seq`) lands atomically first, so a crash anywhere in between leaves
/// a WAL whose records are all `seq <=` the snapshot — recovery skips
/// them, never double-applies.
fn compact(tenant: &Arc<Tenant>, d: &mut Durable, cfg: &DurabilityCfg) -> std::io::Result<()> {
    let doc = {
        let entry = tenant.entry_read();
        SnapshotDoc {
            seq: d.seq,
            open: d.open_doc.clone(),
            base_rows: Json::Arr(d.base_rows.clone()),
            batches: entry.stats.batches,
            tuples_ingested: entry.stats.tuples_ingested,
            fixes: entry.stats.fixes,
            phase_seconds: entry.stats.phase_seconds,
            repaired: relation_to_json(entry.state.repaired()),
            cost: entry.state.cost(),
            last_client_seq: entry.last_client_seq,
            repl_seq: entry.repl_seq,
        }
    };
    write_snapshot(&d.dir, &doc, cfg.fsync)?;
    faults::hit("snapshot.pre_wal_rewrite")?;
    let tmp = d.dir.join(wal::WAL_REWRITE_TMP);
    let mut fresh = WalWriter::create(&tmp, cfg.fsync)?;
    fresh.append(&wal::open_record(&d.open_doc))?;
    std::fs::rename(&tmp, d.dir.join(wal::WAL_FILE))?;
    if cfg.fsync {
        crate::snapshot::sync_dir(&d.dir)?;
        // The renamed file's handle stays valid; make its metadata
        // durable under the new name too.
        fresh.sync_all()?;
    }
    d.wal = fresh;
    d.since_snapshot = 0;
    Ok(())
}

/// Close = remove from the registry (tombstoning the name) and, for a
/// durable tenant, delete its directory — a closed relation does not
/// resurrect on restart.
fn close_tenant(registry: &Arc<Registry>, name: &str) -> Json {
    match registry.remove(name) {
        Ok(tenant) => {
            let (tuples, batches) = {
                let entry = tenant.entry_read();
                (entry.state.len(), entry.stats.batches)
            };
            if let Some(d) = tenant.durable_lock().take() {
                let dir = d.dir.clone();
                drop(d); // close the WAL handle before unlinking
                if let Err(e) = std::fs::remove_dir_all(&dir) {
                    eprintln!(
                        "uniclean serve: cannot remove closed tenant directory {:?}: {e}",
                        dir
                    );
                } else if let Some(root) = dir.parent() {
                    // Make the unlink itself durable: without the parent
                    // fsync a power loss can resurrect the closed tenant.
                    let _ = crate::snapshot::sync_dir(root);
                }
            }
            ok(vec![
                ("relation", Json::str(name)),
                ("tuples", Json::Num(tuples as f64)),
                ("batches", Json::Num(batches as f64)),
            ])
        }
        Err(e) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OpenSpec;
    use crate::registry::Registry;
    use uniclean_core::Phase;
    use uniclean_model::json::batch_from_json;

    fn tenant() -> Arc<Tenant> {
        let reg = Registry::new(1);
        reg.open(
            &OpenSpec {
                relation: "iso".to_string(),
                table: "data".to_string(),
                attrs: vec!["AC".to_string(), "city".to_string()],
                rules: "cfd phi1: data([AC=131] -> [city=Edi])".to_string(),
                master: None,
                phase: Phase::Full,
                default_cf: 0.5,
                eta: None,
                delta_entropy: None,
                threads: None,
            },
            None,
        )
        .unwrap()
    }

    fn batch() -> Vec<Tuple> {
        batch_from_json(&Json::parse(r#"[["131",["Lnd",0.3]]]"#).unwrap(), 2, 0.5).unwrap()
    }

    #[test]
    fn a_panicking_apply_poisons_only_that_tenant() {
        let healthy = tenant();
        // Simulate a phase panic through the same isolation wrapper the
        // worker uses: poison by hand-thrown unwind.
        let victim = tenant();
        let unwound = catch_unwind(AssertUnwindSafe(|| -> Json {
            let _entry = victim.entry_write(); // lock held across the panic
            panic!("injected phase panic");
        }));
        assert!(unwound.is_err());
        victim.poison();

        // The poisoned tenant answers structured errors, lock intact.
        let resp = process_ingest(&victim, &batch(), None, None, None);
        assert_eq!(resp.get("code").and_then(Json::as_str), Some("poisoned"));
        // Its entry lock was poisoned by the unwind, but the tolerant
        // accessors still read it (for `close` bookkeeping).
        assert_eq!(victim.entry_read().state.len(), 0);

        // The healthy tenant on the same worker logic keeps serving.
        let resp = process_ingest(&healthy, &batch(), None, None, None);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("fixes").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn client_and_replica_sequence_dedup_is_exactly_once() {
        let t = tenant();
        let resp = process_ingest(&t, &batch(), Some(5), None, None);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert!(resp.get("deduped").is_none());
        let applied = t.entry_read().state.len();

        // The same and any earlier client sequence are acknowledged
        // without re-applying.
        for dup_seq in [5, 3] {
            let resp = process_ingest(&t, &batch(), Some(dup_seq), None, None);
            assert_eq!(resp.get("deduped").and_then(Json::as_bool), Some(true));
            assert_eq!(resp.get("total").and_then(Json::as_usize), Some(applied));
            assert_eq!(t.entry_read().state.len(), applied);
        }
        assert_eq!(
            t.entry_read().stats.batches,
            1,
            "one application, one count"
        );

        // A later sequence applies normally.
        let resp = process_ingest(&t, &batch(), Some(6), None, None);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert!(resp.get("deduped").is_none());
        assert!(t.entry_read().state.len() > applied);

        // Replica sequences dedup independently (re-streamed frames).
        let resp = process_ingest(&t, &batch(), None, Some(2), None);
        assert!(resp.get("deduped").is_none());
        let resp = process_ingest(&t, &batch(), None, Some(2), None);
        assert_eq!(resp.get("deduped").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn rejected_batches_do_not_count_or_log() {
        let t = tenant();
        // Arity mismatch: engine rejects, counters untouched.
        let bad = batch_from_json(&Json::parse(r#"[["131"]]"#).unwrap(), 1, 0.5).unwrap();
        let resp = process_ingest(&t, &bad, None, None, None);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(t.entry_read().stats.batches, 0);
        assert!(!t.is_poisoned(), "an engine error is not poisoning");
    }
}
