//! Shard worker pool: bounded per-shard job queues and the workers that
//! drain them.
//!
//! Every mutation of a relation (ingest, close) is routed to the shard
//! owning it ([`crate::shard_for`]), so one relation's mutations apply in
//! submission order while distinct relations on distinct shards clean in
//! parallel. Queues are `sync_channel`-bounded; the submit path (in
//! [`crate::daemon`]) answers `busy` instead of blocking when a queue is
//! full. Dropping all senders is the shutdown signal: each worker drains
//! what is already queued, then exits.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use uniclean_model::{Json, Tuple};

use crate::protocol::{clean_error, ok};
use crate::registry::{Registry, Tenant};
use crate::stats::{PhaseAccum, ShardStats};

/// One unit of serialized per-relation work. Replies travel back over a
/// rendezvous channel to the submitting connection thread.
pub(crate) enum Job {
    /// Apply a decoded batch through `clean_delta`.
    Ingest {
        tenant: Arc<Tenant>,
        rows: Vec<Tuple>,
        reply: SyncSender<Json>,
    },
    /// Drop a relation — routed through its shard so the close lands
    /// *after* every ingest already queued for it.
    Close {
        registry: Arc<Registry>,
        name: String,
        reply: SyncSender<Json>,
    },
}

/// What [`spawn_workers`] hands back: one job sender and one stats block
/// per shard, plus the worker handles the daemon joins on shutdown.
pub(crate) type WorkerPool = (
    Vec<SyncSender<Job>>,
    Vec<Arc<ShardStats>>,
    Vec<JoinHandle<()>>,
);

/// Spawn `shards` workers with queues bounded at `queue_bound`.
pub(crate) fn spawn_workers(shards: usize, queue_bound: usize) -> WorkerPool {
    let mut senders = Vec::with_capacity(shards);
    let mut stats = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (tx, rx) = sync_channel::<Job>(queue_bound);
        let shard_stats = Arc::new(ShardStats::default());
        senders.push(tx);
        stats.push(shard_stats.clone());
        handles.push(
            std::thread::Builder::new()
                .name(format!("uniclean-shard-{shard}"))
                .spawn(move || worker(rx, shard_stats))
                .expect("spawn shard worker"),
        );
    }
    (senders, stats, handles)
}

/// Worker loop: drain the queue until every sender is dropped.
fn worker(rx: Receiver<Job>, stats: Arc<ShardStats>) {
    while let Ok(job) = rx.recv() {
        let (reply, response) = match job {
            Job::Ingest {
                tenant,
                rows,
                reply,
            } => {
                let response = apply_ingest(&tenant, rows);
                (reply, response)
            }
            Job::Close {
                registry,
                name,
                reply,
            } => {
                let response = match registry.remove(&name) {
                    Ok(tenant) => {
                        let entry = tenant.entry.read().unwrap();
                        ok(vec![
                            ("relation", Json::str(&name)),
                            ("tuples", Json::Num(entry.state.len() as f64)),
                            ("batches", Json::Num(entry.stats.batches as f64)),
                        ])
                    }
                    Err(e) => e,
                };
                (reply, response)
            }
        };
        stats.record_done();
        // The submitter may have hung up (connection dropped); the job's
        // effect stands either way.
        let _ = reply.send(response);
    }
}

/// Apply one batch to a tenant under its entry write lock.
fn apply_ingest(tenant: &Arc<Tenant>, rows: Vec<Tuple>) -> Json {
    let mut entry = tenant.entry.write().unwrap();
    let offset = entry.state.len();
    let escalations_before = entry.state.escalations();
    let mut accum = PhaseAccum::default();
    let result = tenant
        .cleaner
        .clean_delta_observed(&mut entry.state, &rows, &mut accum);
    match result {
        Ok(res) => {
            let (d, r, p) = res.fix_counts();
            entry.stats.batches += 1;
            entry.stats.tuples_ingested += rows.len() as u64;
            entry.stats.fixes += (d + r + p) as u64;
            for (slot, s) in entry.stats.phase_seconds.iter_mut().zip(accum.seconds) {
                *slot += s;
            }
            ok(vec![
                ("relation", Json::str(&tenant.name)),
                ("offset", Json::Num(offset as f64)),
                ("ingested", Json::Num(rows.len() as f64)),
                ("total", Json::Num(entry.state.len() as f64)),
                ("fixes", Json::Num((d + r + p) as f64)),
                ("consistent", Json::Bool(res.consistent)),
                (
                    "escalated",
                    Json::Bool(entry.state.escalations() > escalations_before),
                ),
                ("cost", Json::Num(entry.state.cost())),
            ])
        }
        Err(e) => clean_error(&e),
    }
}
