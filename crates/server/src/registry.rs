//! Tenants and the relation registry.
//!
//! A [`Tenant`] is one hosted relation: the immutable session half (a
//! [`Cleaner`], whose `Arc<PreparedCleaner>` carries rules, master index
//! and config, built once at `open`) plus the mutable half (a live
//! [`RepairState`] and serving counters) behind an `RwLock`. Reads
//! (`check`, `dump`, `stats`) take the read lock on connection threads;
//! the owning shard worker takes the write lock for ingests, so a
//! relation's mutations are doubly serialized — by its shard queue and by
//! the lock.
//!
//! Two robustness surfaces live here. A tenant can be **poisoned**: a
//! panic inside its ingest (caught at the shard worker) or a WAL failure
//! flips a sticky flag, after which every verb on that relation answers a
//! structured `poisoned` error while other tenants keep serving — and
//! entry-lock accesses go through poison-tolerant helpers so a lock left
//! poisoned by the unwind can't cascade panics into connection threads.
//! A tenant can also carry a [`Durable`] handle — its WAL writer plus
//! compaction bookkeeping — when the daemon runs with `--data-dir`.

use std::collections::{HashMap, HashSet};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use uniclean_core::{CleanConfig, Cleaner, MasterSource, RepairState};
use uniclean_model::json::batch_from_json;
use uniclean_model::{Json, Relation, Schema};
use uniclean_rules::{parse_rules, RuleSet};

use crate::protocol::{clean_error, error, json_error, OpenSpec};
use crate::snapshot::sync_dir;
use crate::stats::RelationStats;
use crate::wal::{open_record, WalWriter, WAL_FILE};
use crate::{shard_for, tenant_dir_name};

/// How the daemon persists tenants; `DaemonConfig::data_dir == None`
/// means no [`Durable`] handles are ever attached and everything below
/// is memory-only.
#[derive(Clone, Debug)]
pub(crate) struct DurabilityCfg {
    /// Root data directory; one subdirectory per tenant
    /// ([`tenant_dir_name`]).
    pub(crate) root: PathBuf,
    /// Snapshot + compact a tenant's WAL every this many logged batches
    /// (0 disables compaction; the WAL just grows).
    pub(crate) snapshot_every: u64,
    /// fsync WAL frames before acks and snapshot files before renames.
    pub(crate) fsync: bool,
}

/// A durable tenant's on-disk half: the open WAL writer plus the
/// bookkeeping compaction needs. Guarded by [`Tenant::durable`]; only
/// the owning shard worker (and startup recovery, before the tenant is
/// shared) touches it.
pub(crate) struct Durable {
    /// Append handle on `<dir>/wal.log`.
    pub(crate) wal: WalWriter,
    /// This tenant's directory under the data root.
    pub(crate) dir: PathBuf,
    /// The original `open` request document (frame 0 of every WAL
    /// generation, and the `open` member of every snapshot).
    pub(crate) open_doc: Json,
    /// Sequence number of the last logged batch.
    pub(crate) seq: u64,
    /// Batches logged since the last snapshot — compaction triggers when
    /// this reaches `snapshot_every`.
    pub(crate) since_snapshot: u64,
    /// Cumulative acknowledged input rows in ingest wire shape — what
    /// the next snapshot stores as its `base_rows`.
    pub(crate) base_rows: Vec<Json>,
}

/// The mutable half of a tenant, guarded by [`Tenant::entry`].
pub(crate) struct TenantEntry {
    /// The live incremental state all ingests flow through.
    pub(crate) state: RepairState,
    /// Per-relation serving counters.
    pub(crate) stats: RelationStats,
    /// Highest client-supplied exactly-once sequence number applied; an
    /// incoming `ingest` at or below it is acknowledged as a duplicate
    /// without re-applying.
    pub(crate) last_client_seq: Option<u64>,
    /// Primary WAL sequence this state mirrors, when this node is (or
    /// was, pre-promotion) a tailing standby. The replication puller
    /// resumes fetching after this.
    pub(crate) repl_seq: Option<u64>,
}

/// One hosted relation.
pub(crate) struct Tenant {
    /// Registry key and wire handle.
    pub(crate) name: String,
    /// Owning shard (`shard_for(name, shards)`).
    pub(crate) shard: usize,
    /// The immutable session: rules + master index + config, Arc-shared.
    pub(crate) cleaner: Cleaner,
    /// Confidence for ingested cells that arrive without an explicit `cf`.
    pub(crate) default_cf: f64,
    /// Live state + counters.
    pub(crate) entry: RwLock<TenantEntry>,
    /// Sticky failure flag: set after a caught ingest panic or a WAL
    /// error; every verb answers `poisoned` once set.
    pub(crate) poisoned: AtomicBool,
    /// Durability handle (`None` for a memory-only daemon).
    pub(crate) durable: Mutex<Option<Durable>>,
}

impl Tenant {
    /// Build a tenant from an `open` spec: schema → rules → master →
    /// cleaner → empty initial state. `Err` carries the ready-to-send
    /// error response.
    pub(crate) fn open(spec: &OpenSpec, shards: usize) -> Result<Tenant, Json> {
        let schema = Schema::of_strings(
            &spec.table,
            &spec.attrs.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let (master_schema, master_source) = match &spec.master {
            None => (None, MasterSource::None),
            Some(m) => {
                let ms = Schema::of_strings(
                    &m.table,
                    &m.attrs.iter().map(String::as_str).collect::<Vec<_>>(),
                );
                let source = match &m.rows {
                    // No rows ⇒ match against a snapshot of the data itself.
                    None => MasterSource::SelfSnapshot,
                    Some(rows) => {
                        // Master data is correct by assumption: cells sent
                        // without an explicit cf default to full confidence.
                        let tuples = batch_from_json(rows, ms.arity(), 1.0)
                            .map_err(|e| json_error("bad_request", &e))?;
                        let mut rel = Relation::empty(ms.clone());
                        for t in tuples {
                            rel.push(t);
                        }
                        MasterSource::External(Arc::new(rel))
                    }
                };
                (Some(ms), source)
            }
        };
        let parsed = parse_rules(&spec.rules, &schema, master_schema.as_ref())
            .map_err(|e| error("rule_parse", e.to_string()))?;
        let rules = RuleSet::try_new(
            schema,
            master_schema,
            parsed.cfds,
            parsed.positive_mds,
            parsed.negative_mds,
        )
        .map_err(|e| error("bad_rules", e.to_string()))?;
        let mut config = CleanConfig::default();
        if let Some(eta) = spec.eta {
            config.eta = eta;
        }
        if let Some(d2) = spec.delta_entropy {
            config.delta_entropy = d2;
        }
        if let Some(threads) = spec.threads {
            config.parallelism = NonZeroUsize::new(threads);
        }
        let cleaner = Cleaner::builder()
            .rules(rules)
            .master(master_source)
            .config(config)
            .build()
            .map_err(|e| clean_error(&e))?;
        let state = cleaner.begin_empty(spec.phase);
        Ok(Tenant {
            name: spec.relation.clone(),
            shard: shard_for(&spec.relation, shards),
            cleaner,
            default_cf: spec.default_cf,
            entry: RwLock::new(TenantEntry {
                state,
                stats: RelationStats::default(),
                last_client_seq: None,
                repl_seq: None,
            }),
            poisoned: AtomicBool::new(false),
            durable: Mutex::new(None),
        })
    }

    /// Entry read lock, tolerant of a poisoning unwind (the sticky
    /// [`Tenant::is_poisoned`] flag is the real fence; the lock data is
    /// still sound for reporting).
    pub(crate) fn entry_read(&self) -> RwLockReadGuard<'_, TenantEntry> {
        self.entry.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Entry write lock, tolerant of a poisoning unwind.
    pub(crate) fn entry_write(&self) -> RwLockWriteGuard<'_, TenantEntry> {
        self.entry.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The durable handle (always `Some` guard; the option inside is
    /// `None` for memory-only tenants).
    pub(crate) fn durable_lock(&self) -> MutexGuard<'_, Option<Durable>> {
        self.durable.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Flip the sticky failure flag.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// The structured error every verb answers once the tenant is
    /// poisoned.
    pub(crate) fn poisoned_error(&self) -> Json {
        crate::protocol::error_with(
            "poisoned",
            format!(
                "relation {:?} is poisoned (a previous ingest panicked or its WAL failed); \
                 close it and re-open (durable state recovers on daemon restart)",
                self.name
            ),
            vec![("relation", Json::str(&self.name))],
        )
    }

    /// Replace the live state + counters (startup recovery and standby
    /// bootstrap, before the tenant is shared).
    pub(crate) fn replace_entry(
        &self,
        state: RepairState,
        stats: RelationStats,
        last_client_seq: Option<u64>,
        repl_seq: Option<u64>,
    ) {
        *self.entry_write() = TenantEntry {
            state,
            stats,
            last_client_seq,
            repl_seq,
        };
    }
}

/// The daemon's relation table.
pub(crate) struct Registry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Names that were explicitly closed (and not since re-opened):
    /// a second `close` answers `already_closed` instead of
    /// `unknown_relation`.
    closed: Mutex<HashSet<String>>,
    /// Serializes durable opens so two racing opens of one name can't
    /// both create the tenant directory.
    open_gate: Mutex<()>,
    shards: usize,
}

impl Registry {
    pub(crate) fn new(shards: usize) -> Registry {
        Registry {
            tenants: RwLock::new(HashMap::new()),
            closed: Mutex::new(HashSet::new()),
            open_gate: Mutex::new(()),
            shards,
        }
    }

    /// Open a new tenant. For a durable daemon (`durability` set),
    /// `open_doc` is the original request document; the tenant directory
    /// and WAL (with its `open` record) are created and fsync'd
    /// **before** the tenant becomes visible, so an acknowledged `open`
    /// survives a crash. `Err` carries the ready-to-send error response
    /// (`relation_exists` if the name is taken).
    pub(crate) fn open(
        &self,
        spec: &OpenSpec,
        open_doc: Option<(&Json, &DurabilityCfg)>,
    ) -> Result<Arc<Tenant>, Json> {
        let _gate = self
            .open_gate
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.tenants.read().unwrap().contains_key(&spec.relation) {
            return Err(error(
                "relation_exists",
                format!("relation {:?} is already open", spec.relation),
            ));
        }
        // Build outside the map lock: opens of distinct relations only
        // contend on the open gate and the brief insert below.
        let tenant = Tenant::open(spec, self.shards)?;
        if let Some((doc, cfg)) = open_doc {
            let durable = create_tenant_storage(&spec.relation, doc, cfg).map_err(|e| {
                error(
                    "io",
                    format!("cannot create durable storage for {:?}: {e}", spec.relation),
                )
            })?;
            *tenant.durable_lock() = Some(durable);
        }
        let tenant = Arc::new(tenant);
        let mut map = self.tenants.write().unwrap();
        map.insert(spec.relation.clone(), tenant.clone());
        self.closed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&spec.relation);
        Ok(tenant)
    }

    pub(crate) fn get(&self, name: &str) -> Result<Arc<Tenant>, Json> {
        self.tenants
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| self.absent_error(name))
    }

    pub(crate) fn remove(&self, name: &str) -> Result<Arc<Tenant>, Json> {
        let removed = self.tenants.write().unwrap().remove(name);
        match removed {
            Some(t) => {
                self.closed
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(name.to_string());
                Ok(t)
            }
            None => Err(self.absent_error(name)),
        }
    }

    /// The error for an absent relation: `already_closed` if it was
    /// explicitly closed, `unknown_relation` otherwise.
    pub(crate) fn absent_error(&self, name: &str) -> Json {
        if self
            .closed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(name)
        {
            error(
                "already_closed",
                format!("relation {name:?} is already closed"),
            )
        } else {
            error("unknown_relation", format!("no open relation {name:?}"))
        }
    }

    /// Install recovered (or replication-bootstrapped) tenants. Clears
    /// any close-tombstone for the adopted names: an adopted tenant is
    /// open again by definition.
    pub(crate) fn adopt(&self, tenants: Vec<Arc<Tenant>>) {
        let mut map = self.tenants.write().unwrap();
        let mut closed = self.closed.lock().unwrap_or_else(PoisonError::into_inner);
        for t in tenants {
            closed.remove(&t.name);
            map.insert(t.name.clone(), t);
        }
    }

    /// How many relations are open.
    pub(crate) fn count(&self) -> usize {
        self.tenants.read().unwrap().len()
    }

    /// All tenants, sorted by name (deterministic `stats` output).
    pub(crate) fn snapshot(&self) -> Vec<Arc<Tenant>> {
        let mut all: Vec<_> = self.tenants.read().unwrap().values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }
}

/// Create a fresh tenant directory + WAL with its `open` record, fsync'd
/// through to the data root so a post-ack crash finds it. Also the
/// storage path for a standby bootstrapping a tenant from a streamed
/// snapshot ([`crate::replication`]).
pub(crate) fn create_tenant_storage(
    name: &str,
    open_doc: &Json,
    cfg: &DurabilityCfg,
) -> std::io::Result<Durable> {
    let dir = cfg.root.join(tenant_dir_name(name));
    // A leftover directory here means the name is not in the registry
    // (checked under the open gate) — a quarantine remnant or a partial
    // create; either way this open owns the name now.
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    let mut wal = WalWriter::create(&dir.join(WAL_FILE), cfg.fsync)?;
    wal.append(&open_record(open_doc))?;
    if cfg.fsync {
        sync_dir(&dir)?;
        sync_dir(&cfg.root)?;
    }
    Ok(Durable {
        wal,
        dir,
        open_doc: open_doc.clone(),
        seq: 0,
        since_snapshot: 0,
        base_rows: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_core::Phase;

    fn spec(relation: &str, rules: &str) -> OpenSpec {
        OpenSpec {
            relation: relation.to_string(),
            table: "data".to_string(),
            attrs: vec!["AC".to_string(), "city".to_string()],
            rules: rules.to_string(),
            master: None,
            phase: Phase::Full,
            default_cf: 0.5,
            eta: None,
            delta_entropy: None,
            threads: None,
        }
    }

    #[test]
    fn open_builds_an_empty_consistent_tenant() {
        let reg = Registry::new(4);
        let t = reg
            .open(
                &spec("tran", "cfd phi1: data([AC=131] -> [city=Edi])"),
                None,
            )
            .unwrap();
        assert_eq!(t.shard, shard_for("tran", 4));
        assert!(!t.is_poisoned());
        assert!(t.durable_lock().is_none());
        let entry = t.entry_read();
        assert_eq!(entry.state.len(), 0);
        assert!(entry.state.consistent());
    }

    #[test]
    fn open_surfaces_structured_errors() {
        let reg = Registry::new(2);
        let code = |spec: &OpenSpec| match reg.open(spec, None) {
            Err(resp) => resp.get("code").and_then(Json::as_str).unwrap().to_string(),
            Ok(_) => panic!("open unexpectedly succeeded"),
        };
        assert_eq!(code(&spec("bad", "cfd oops(")), "rule_parse");
        // MDs without any master spec: rejected at parse (no master schema
        // to resolve the rule against).
        assert_eq!(
            code(&spec("md", "md m1: data[city] ~ data[city] => data[city]")),
            "rule_parse"
        );
        reg.open(&spec("dup", "cfd phi1: data([AC=131] -> [city=Edi])"), None)
            .unwrap();
        assert_eq!(
            code(&spec("dup", "cfd phi1: data([AC=131] -> [city=Edi])")),
            "relation_exists"
        );
        match reg.get("nope") {
            Err(resp) => assert_eq!(
                resp.get("code").and_then(Json::as_str),
                Some("unknown_relation")
            ),
            Ok(_) => panic!("get of unknown relation succeeded"),
        }
    }

    #[test]
    fn close_tombstones_answer_already_closed_until_reopen() {
        let reg = Registry::new(2);
        let rules = "cfd phi1: data([AC=131] -> [city=Edi])";
        reg.open(&spec("t", rules), None).unwrap();
        reg.remove("t").unwrap();
        let code = |r: Result<Arc<Tenant>, Json>| {
            let err = match r {
                Ok(_) => panic!("expected a structured error"),
                Err(e) => e,
            };
            err.get("code").and_then(Json::as_str).unwrap().to_string()
        };
        assert_eq!(code(reg.remove("t")), "already_closed");
        assert_eq!(code(reg.get("t")), "already_closed");
        // Re-opening clears the tombstone.
        reg.open(&spec("t", rules), None).unwrap();
        assert!(reg.get("t").is_ok());
        reg.remove("t").unwrap();
        assert_eq!(code(reg.remove("t")), "already_closed");
    }

    #[test]
    fn poisoning_is_sticky_and_structured() {
        let reg = Registry::new(1);
        let t = reg
            .open(&spec("p", "cfd phi1: data([AC=131] -> [city=Edi])"), None)
            .unwrap();
        assert!(!t.is_poisoned());
        t.poison();
        assert!(t.is_poisoned());
        let resp = t.poisoned_error();
        assert_eq!(resp.get("code").and_then(Json::as_str), Some("poisoned"));
        assert_eq!(resp.get("relation").and_then(Json::as_str), Some("p"));
    }
}
