//! Tenants and the relation registry.
//!
//! A [`Tenant`] is one hosted relation: the immutable session half (a
//! [`Cleaner`], whose `Arc<PreparedCleaner>` carries rules, master index
//! and config, built once at `open`) plus the mutable half (a live
//! [`RepairState`] and serving counters) behind an `RwLock`. Reads
//! (`check`, `dump`, `stats`) take the read lock on connection threads;
//! the owning shard worker takes the write lock for ingests, so a
//! relation's mutations are doubly serialized — by its shard queue and by
//! the lock.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::{Arc, RwLock};

use uniclean_core::{CleanConfig, Cleaner, MasterSource, RepairState};
use uniclean_model::json::batch_from_json;
use uniclean_model::{Json, Relation, Schema};
use uniclean_rules::{parse_rules, RuleSet};

use crate::protocol::{clean_error, error, json_error, OpenSpec};
use crate::shard_for;
use crate::stats::RelationStats;

/// The mutable half of a tenant, guarded by [`Tenant::entry`].
pub(crate) struct TenantEntry {
    /// The live incremental state all ingests flow through.
    pub(crate) state: RepairState,
    /// Per-relation serving counters.
    pub(crate) stats: RelationStats,
}

/// One hosted relation.
pub(crate) struct Tenant {
    /// Registry key and wire handle.
    pub(crate) name: String,
    /// Owning shard (`shard_for(name, shards)`).
    pub(crate) shard: usize,
    /// The immutable session: rules + master index + config, Arc-shared.
    pub(crate) cleaner: Cleaner,
    /// Confidence for ingested cells that arrive without an explicit `cf`.
    pub(crate) default_cf: f64,
    /// Live state + counters.
    pub(crate) entry: RwLock<TenantEntry>,
}

impl Tenant {
    /// Build a tenant from an `open` spec: schema → rules → master →
    /// cleaner → empty initial state. `Err` carries the ready-to-send
    /// error response.
    pub(crate) fn open(spec: &OpenSpec, shards: usize) -> Result<Tenant, Json> {
        let schema = Schema::of_strings(
            &spec.table,
            &spec.attrs.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let (master_schema, master_source) = match &spec.master {
            None => (None, MasterSource::None),
            Some(m) => {
                let ms = Schema::of_strings(
                    &m.table,
                    &m.attrs.iter().map(String::as_str).collect::<Vec<_>>(),
                );
                let source = match &m.rows {
                    // No rows ⇒ match against a snapshot of the data itself.
                    None => MasterSource::SelfSnapshot,
                    Some(rows) => {
                        // Master data is correct by assumption: cells sent
                        // without an explicit cf default to full confidence.
                        let tuples = batch_from_json(rows, ms.arity(), 1.0)
                            .map_err(|e| json_error("bad_request", &e))?;
                        let mut rel = Relation::empty(ms.clone());
                        for t in tuples {
                            rel.push(t);
                        }
                        MasterSource::External(Arc::new(rel))
                    }
                };
                (Some(ms), source)
            }
        };
        let parsed = parse_rules(&spec.rules, &schema, master_schema.as_ref())
            .map_err(|e| error("rule_parse", e.to_string()))?;
        let rules = RuleSet::try_new(
            schema,
            master_schema,
            parsed.cfds,
            parsed.positive_mds,
            parsed.negative_mds,
        )
        .map_err(|e| error("bad_rules", e.to_string()))?;
        let mut config = CleanConfig::default();
        if let Some(eta) = spec.eta {
            config.eta = eta;
        }
        if let Some(d2) = spec.delta_entropy {
            config.delta_entropy = d2;
        }
        if let Some(threads) = spec.threads {
            config.parallelism = NonZeroUsize::new(threads);
        }
        let cleaner = Cleaner::builder()
            .rules(rules)
            .master(master_source)
            .config(config)
            .build()
            .map_err(|e| clean_error(&e))?;
        let state = cleaner.begin_empty(spec.phase);
        Ok(Tenant {
            name: spec.relation.clone(),
            shard: shard_for(&spec.relation, shards),
            cleaner,
            default_cf: spec.default_cf,
            entry: RwLock::new(TenantEntry {
                state,
                stats: RelationStats::default(),
            }),
        })
    }
}

/// The daemon's relation table.
pub(crate) struct Registry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    shards: usize,
}

impl Registry {
    pub(crate) fn new(shards: usize) -> Registry {
        Registry {
            tenants: RwLock::new(HashMap::new()),
            shards,
        }
    }

    /// Open a new tenant. `Err` carries the ready-to-send error response
    /// (`relation_exists` if the name is taken).
    pub(crate) fn open(&self, spec: &OpenSpec) -> Result<Arc<Tenant>, Json> {
        // Build outside the map lock: opens of distinct relations only
        // contend on the brief insert below.
        let tenant = Arc::new(Tenant::open(spec, self.shards)?);
        let mut map = self.tenants.write().unwrap();
        if map.contains_key(&spec.relation) {
            return Err(error(
                "relation_exists",
                format!("relation {:?} is already open", spec.relation),
            ));
        }
        map.insert(spec.relation.clone(), tenant.clone());
        Ok(tenant)
    }

    pub(crate) fn get(&self, name: &str) -> Result<Arc<Tenant>, Json> {
        self.tenants
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| error("unknown_relation", format!("no open relation {name:?}")))
    }

    pub(crate) fn remove(&self, name: &str) -> Result<Arc<Tenant>, Json> {
        self.tenants
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| error("unknown_relation", format!("no open relation {name:?}")))
    }

    /// All tenants, sorted by name (deterministic `stats` output).
    pub(crate) fn snapshot(&self) -> Vec<Arc<Tenant>> {
        let mut all: Vec<_> = self.tenants.read().unwrap().values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_core::Phase;

    fn spec(relation: &str, rules: &str) -> OpenSpec {
        OpenSpec {
            relation: relation.to_string(),
            table: "data".to_string(),
            attrs: vec!["AC".to_string(), "city".to_string()],
            rules: rules.to_string(),
            master: None,
            phase: Phase::Full,
            default_cf: 0.5,
            eta: None,
            delta_entropy: None,
            threads: None,
        }
    }

    #[test]
    fn open_builds_an_empty_consistent_tenant() {
        let reg = Registry::new(4);
        let t = reg
            .open(&spec("tran", "cfd phi1: data([AC=131] -> [city=Edi])"))
            .unwrap();
        assert_eq!(t.shard, shard_for("tran", 4));
        let entry = t.entry.read().unwrap();
        assert_eq!(entry.state.len(), 0);
        assert!(entry.state.consistent());
    }

    #[test]
    fn open_surfaces_structured_errors() {
        let reg = Registry::new(2);
        let code = |spec: &OpenSpec| match reg.open(spec) {
            Err(resp) => resp.get("code").and_then(Json::as_str).unwrap().to_string(),
            Ok(_) => panic!("open unexpectedly succeeded"),
        };
        assert_eq!(code(&spec("bad", "cfd oops(")), "rule_parse");
        // MDs without any master spec: rejected at parse (no master schema
        // to resolve the rule against).
        assert_eq!(
            code(&spec("md", "md m1: data[city] ~ data[city] => data[city]")),
            "rule_parse"
        );
        reg.open(&spec("dup", "cfd phi1: data([AC=131] -> [city=Edi])"))
            .unwrap();
        assert_eq!(
            code(&spec("dup", "cfd phi1: data([AC=131] -> [city=Edi])")),
            "relation_exists"
        );
        match reg.get("nope") {
            Err(resp) => assert_eq!(
                resp.get("code").and_then(Json::as_str),
                Some("unknown_relation")
            ),
            Ok(_) => panic!("get of unknown relation succeeded"),
        }
    }
}
