//! The line-delimited JSON wire protocol.
//!
//! One request object per line, one response object per line. Every
//! request carries an `"op"`; every response carries `"ok"`. Failures are
//! structured: `{"ok":false,"code":"...","error":"human text", ...}`,
//! with machine-matchable codes (`busy`, `unknown_relation`,
//! `bad_batch`, `rule_parse`, `foreign_state`, …).
//!
//! Verbs:
//!
//! | op | effect |
//! |---|---|
//! | `open` | register a relation: rules text, optional master, config |
//! | `ingest` | append a tuple batch through `clean_delta` (via the owning shard) |
//! | `check` | per-relation or per-tuple acceptance, online (no phase runs) |
//! | `dump` | the repaired relation as `[value, cf, "mark"]` cell triples |
//! | `stats` | per-shard queue counters + per-relation serving stats |
//! | `ping` (alias `health`) | liveness: uptime, tenant/shard counts, recovery report — never mutates, answers even mid-shutdown |
//! | `close` | drop a relation (serialized after its pending ingests); idempotent — a second close answers `already_closed` |
//! | `shutdown` | stop accepting, drain every shard queue, exit; idempotent — a second shutdown answers `shutting_down` |
//! | `hello` | protocol negotiation: client sends its `proto_version`, server answers its own version range and role |
//! | `promote` | flip a standby into a serving primary after draining its apply queue |
//! | `repl_list` / `repl_fetch` / `repl_ack` | the standby-side pull replication verbs ([`crate::replication`]) |
//!
//! Forward compatibility: every parser here reads fields by name and
//! ignores unknown members, so newer clients can decorate requests with
//! extra keys without breaking older servers; `hello` makes the version
//! skew explicit.

use uniclean_core::{CleanError, Phase};
use uniclean_model::{Json, JsonError};

/// The protocol version this build speaks. Version history:
///
/// * 1 — the PR 7 serving verbs (`open` … `shutdown`).
/// * 2 — adds `hello`, exactly-once ingest `seq`, replication
///   (`repl_list`/`repl_fetch`/`repl_ack`) and `promote`.
pub const PROTO_VERSION: u64 = 2;

/// The oldest client protocol version this build still serves. Version-1
/// clients (which never send `hello`) keep working unchanged.
pub const MIN_PROTO_VERSION: u64 = 1;

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Register a relation.
    Open(Box<OpenSpec>),
    /// Append a batch (rows kept as JSON until the tenant's schema and
    /// default confidence are known).
    Ingest {
        /// Target relation.
        relation: String,
        /// The `"rows"` payload, decoded per-tenant later.
        rows: Json,
        /// Optional client-supplied monotonic sequence number. The WAL
        /// records it and replay/retry deduplicates on it, which is what
        /// makes retried ingests exactly-once.
        seq: Option<u64>,
    },
    /// Acceptance query; `tuple` picks one tuple, `None` asks for the
    /// relation-level verdict.
    Check {
        /// Target relation.
        relation: String,
        /// Optional tuple index.
        tuple: Option<usize>,
    },
    /// Dump the repaired relation.
    Dump {
        /// Target relation.
        relation: String,
    },
    /// Serving statistics; `relation` narrows to one tenant.
    Stats {
        /// Optional relation filter.
        relation: Option<String>,
    },
    /// Liveness probe: uptime, tenant/shard counts, recovery status.
    Ping,
    /// Drop a relation.
    Close {
        /// Target relation.
        relation: String,
    },
    /// Graceful daemon shutdown.
    Shutdown,
    /// Protocol negotiation. Absent `proto_version` means a pre-`hello`
    /// version-1 client.
    Hello {
        /// The client's claimed protocol version.
        proto_version: Option<u64>,
    },
    /// Flip a standby into a serving primary (drains the apply queue
    /// first). Answers `not_standby` on a primary.
    Promote,
    /// Replication: enumerate durable tenants with their WAL positions.
    ReplList,
    /// Replication: fetch WAL frames (or a snapshot) for one tenant.
    ReplFetch {
        /// Target relation.
        relation: String,
        /// Return frames with WAL seq strictly greater than this.
        after: u64,
        /// Cap on frames per response (batching knob).
        max_frames: usize,
    },
    /// Replication: the standby reports its applied offset (doubles as a
    /// heartbeat).
    ReplAck {
        /// Target relation.
        relation: String,
        /// Highest primary WAL seq the standby has durably applied.
        seq: u64,
    },
}

/// Everything `open` needs to build a tenant.
#[derive(Debug)]
pub struct OpenSpec {
    /// Tenant name (the wire handle; also the shard-placement key).
    pub relation: String,
    /// Data schema name the rules are authored against (default `data`).
    pub table: String,
    /// Data schema attributes, in order.
    pub attrs: Vec<String>,
    /// Rule text in the parser grammar (`cfd …` / `md …` / `neg …` lines).
    pub rules: String,
    /// Master spec: `None` for CFD-only cleaning.
    pub master: Option<MasterSpec>,
    /// Phase prefix to run per batch (`"c"`, `"ce"`, `"full"`).
    pub phase: Phase,
    /// Confidence for ingested cells sent without an explicit `cf`.
    pub default_cf: f64,
    /// Confidence threshold override (η).
    pub eta: Option<f64>,
    /// Entropy threshold override (δ2).
    pub delta_entropy: Option<f64>,
    /// Worker-thread override for the phase internals.
    pub threads: Option<usize>,
}

/// The `"master"` member of an `open` request.
#[derive(Debug)]
pub struct MasterSpec {
    /// Master schema name.
    pub table: String,
    /// Master schema attributes, in order.
    pub attrs: Vec<String>,
    /// Master rows (absent ⇒ self-snapshot matching).
    pub rows: Option<Json>,
}

/// Parse one request line. `Err` carries the ready-to-send error
/// response, so the connection loop just writes it back.
pub fn parse_request(line: &str) -> Result<Request, Json> {
    let doc = Json::parse(line).map_err(|e| json_error("malformed", &e))?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| error("bad_request", "every request needs a string \"op\""))?;
    match op {
        "open" => Ok(Request::Open(Box::new(parse_open(&doc)?))),
        "ingest" => Ok(Request::Ingest {
            relation: need_relation(&doc)?,
            rows: doc
                .get("rows")
                .cloned()
                .ok_or_else(|| error("bad_request", "ingest needs \"rows\""))?,
            seq: opt_u64(&doc, "seq")?,
        }),
        "check" => {
            let tuple = match doc.get("tuple") {
                None => None,
                Some(t) => Some(t.as_usize().ok_or_else(|| {
                    error("bad_request", "\"tuple\" must be a non-negative integer")
                })?),
            };
            Ok(Request::Check {
                relation: need_relation(&doc)?,
                tuple,
            })
        }
        "dump" => Ok(Request::Dump {
            relation: need_relation(&doc)?,
        }),
        "stats" => {
            let relation = match doc.get("relation") {
                None => None,
                Some(r) => Some(
                    r.as_str()
                        .ok_or_else(|| error("bad_request", "\"relation\" must be a string"))?
                        .to_string(),
                ),
            };
            Ok(Request::Stats { relation })
        }
        "ping" | "health" => Ok(Request::Ping),
        "close" => Ok(Request::Close {
            relation: need_relation(&doc)?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        "hello" => Ok(Request::Hello {
            proto_version: opt_u64(&doc, "proto_version")?,
        }),
        "promote" => Ok(Request::Promote),
        "repl_list" => Ok(Request::ReplList),
        "repl_fetch" => Ok(Request::ReplFetch {
            relation: need_relation(&doc)?,
            after: opt_u64(&doc, "after")?.unwrap_or(0),
            max_frames: match doc.get("max_frames") {
                None => crate::replication::DEFAULT_FETCH_FRAMES,
                Some(v) => v.as_usize().filter(|&n| n >= 1).ok_or_else(|| {
                    error("bad_request", "\"max_frames\" must be a positive integer")
                })?,
            },
        }),
        "repl_ack" => Ok(Request::ReplAck {
            relation: need_relation(&doc)?,
            seq: opt_u64(&doc, "seq")?
                .ok_or_else(|| error("bad_request", "repl_ack needs an integer \"seq\""))?,
        }),
        other => Err(error("unknown_op", format!("unknown op {other:?}"))),
    }
}

fn need_relation(doc: &Json) -> Result<String, Json> {
    doc.get("relation")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| error("bad_request", "request needs a string \"relation\""))
}

/// An optional non-negative integer field (`None` when absent).
fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, Json> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            error(
                "bad_request",
                format!("\"{key}\" must be a non-negative integer"),
            )
        }),
    }
}

/// Parse an `open` request document into its spec. Also the decoder for
/// the `open` documents the WAL and snapshots store, which is why it is
/// crate-visible: recovery rebuilds sessions through the same path the
/// wire uses.
pub(crate) fn parse_open(doc: &Json) -> Result<OpenSpec, Json> {
    let relation = need_relation(doc)?;
    let table = match doc.get("table") {
        None => "data".to_string(),
        Some(t) => t
            .as_str()
            .ok_or_else(|| error("bad_request", "\"table\" must be a string"))?
            .to_string(),
    };
    let attrs = string_list(doc, "attrs")?
        .ok_or_else(|| error("bad_request", "open needs an \"attrs\" array of strings"))?;
    if attrs.is_empty() {
        return Err(error("bad_request", "\"attrs\" must not be empty"));
    }
    let rules = doc
        .get("rules")
        .and_then(Json::as_str)
        .ok_or_else(|| error("bad_request", "open needs a string \"rules\""))?
        .to_string();
    let master = match doc.get("master") {
        None | Some(Json::Null) => None,
        Some(m) => {
            let table = m
                .get("table")
                .and_then(Json::as_str)
                .ok_or_else(|| error("bad_request", "\"master\" needs a string \"table\""))?
                .to_string();
            let attrs = string_list(m, "attrs")?.ok_or_else(|| {
                error(
                    "bad_request",
                    "\"master\" needs an \"attrs\" array of strings",
                )
            })?;
            let rows = match m.get("rows") {
                None | Some(Json::Null) => None,
                Some(rows @ Json::Arr(_)) => Some(rows.clone()),
                Some(_) => {
                    return Err(error("bad_request", "\"master\".\"rows\" must be an array"))
                }
            };
            Some(MasterSpec { table, attrs, rows })
        }
    };
    let phase = match doc.get("phase") {
        None => Phase::Full,
        Some(p) => match p.as_str() {
            Some("c") => Phase::CRepair,
            Some("ce") => Phase::CERepair,
            Some("full") => Phase::Full,
            _ => {
                return Err(error(
                    "bad_request",
                    "\"phase\" must be \"c\", \"ce\" or \"full\"",
                ))
            }
        },
    };
    let default_cf = match doc.get("default_cf") {
        None => 0.5,
        Some(v) => v
            .as_f64()
            .filter(|cf| (0.0..=1.0).contains(cf))
            .ok_or_else(|| error("bad_request", "\"default_cf\" must be a number in [0,1]"))?,
    };
    let num_field = |key: &'static str| -> Result<Option<f64>, Json> {
        match doc.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| error("bad_request", format!("\"{key}\" must be a number"))),
        }
    };
    let eta = num_field("eta")?;
    let delta_entropy = num_field("delta_entropy")?;
    let threads = match doc.get("threads") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&t| t >= 1)
                .ok_or_else(|| error("bad_request", "\"threads\" must be a positive integer"))?,
        ),
    };
    Ok(OpenSpec {
        relation,
        table,
        attrs,
        rules,
        master,
        phase,
        default_cf,
        eta,
        delta_entropy,
        threads,
    })
}

fn string_list(doc: &Json, key: &str) -> Result<Option<Vec<String>>, Json> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| error("bad_request", format!("\"{key}\" must be an array")))?;
            items
                .iter()
                .map(|i| {
                    i.as_str().map(str::to_string).ok_or_else(|| {
                        error("bad_request", format!("\"{key}\" must contain strings"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
    }
}

// ---------------------------------------------------------------------------
// Response builders.
// ---------------------------------------------------------------------------

/// `{"ok":true, ...fields}`.
pub(crate) fn ok(fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs)
}

/// `{"ok":false,"code":code,"error":msg}`.
pub(crate) fn error(code: &str, msg: impl Into<String>) -> Json {
    error_with(code, msg, Vec::new())
}

/// [`error`] with extra structured fields (e.g. `queue_depth` on `busy`).
pub(crate) fn error_with(code: &str, msg: impl Into<String>, extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("code".to_string(), Json::str(code)),
        ("error".to_string(), Json::Str(msg.into())),
    ];
    pairs.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs)
}

/// A [`JsonError`] as a structured response under the given code (syntax
/// errors override to `malformed`).
pub(crate) fn json_error(code: &str, e: &JsonError) -> Json {
    match e {
        JsonError::Syntax { .. } => error("malformed", e.to_string()),
        JsonError::Shape(_) => error(code, e.to_string()),
    }
}

/// The machine-matchable code for an engine error.
pub(crate) fn clean_error_code(e: &CleanError) -> &'static str {
    match e {
        CleanError::MissingRules => "bad_request",
        CleanError::Config(_) => "bad_config",
        CleanError::MdsWithoutMaster => "mds_without_master",
        CleanError::MasterSchemaMismatch { .. } => "master_schema_mismatch",
        CleanError::MissingSelfSchema | CleanError::SelfSchemaMismatch { .. } => {
            "self_schema_mismatch"
        }
        CleanError::Parse(_) => "rule_parse",
        CleanError::Rules(_) => "bad_rules",
        CleanError::ForeignState => "foreign_state",
        CleanError::BatchArityMismatch { .. } => "batch_arity",
        CleanError::Model(_) => "bad_batch",
    }
}

/// An engine error as a structured response.
pub(crate) fn clean_error(e: &CleanError) -> Json {
    error(clean_error_code(e), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let open = parse_request(
            r#"{"op":"open","relation":"r","attrs":["a"],"rules":"","phase":"ce","threads":2}"#,
        )
        .unwrap();
        match open {
            Request::Open(spec) => {
                assert_eq!(spec.relation, "r");
                assert_eq!(spec.table, "data");
                assert_eq!(spec.phase, Phase::CERepair);
                assert_eq!(spec.threads, Some(2));
                assert_eq!(spec.default_cf, 0.5);
                assert!(spec.master.is_none());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"ingest","relation":"r","rows":[]}"#).unwrap(),
            Request::Ingest { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"check","relation":"r","tuple":3}"#).unwrap(),
            Request::Check { tuple: Some(3), .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { relation: None }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"dump","relation":"r"}"#).unwrap(),
            Request::Dump { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"close","relation":"r"}"#).unwrap(),
            Request::Close { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op":"ingest","relation":"r","rows":[],"seq":9}"#).unwrap(),
            Request::Ingest { seq: Some(9), .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"hello","proto_version":2}"#).unwrap(),
            Request::Hello {
                proto_version: Some(2)
            }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"hello"}"#).unwrap(),
            Request::Hello {
                proto_version: None
            }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"promote"}"#).unwrap(),
            Request::Promote
        ));
        assert!(matches!(
            parse_request(r#"{"op":"repl_list"}"#).unwrap(),
            Request::ReplList
        ));
        match parse_request(r#"{"op":"repl_fetch","relation":"r","after":7,"max_frames":3}"#)
            .unwrap()
        {
            Request::ReplFetch {
                relation,
                after,
                max_frames,
            } => {
                assert_eq!(relation, "r");
                assert_eq!(after, 7);
                assert_eq!(max_frames, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"repl_fetch","relation":"r"}"#).unwrap(),
            Request::ReplFetch {
                after: 0,
                max_frames: crate::replication::DEFAULT_FETCH_FRAMES,
                ..
            }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"repl_ack","relation":"r","seq":12}"#).unwrap(),
            Request::ReplAck { seq: 12, .. }
        ));
    }

    #[test]
    fn unknown_fields_are_ignored_everywhere() {
        // Forward compatibility: a future client may decorate any request
        // with members this build has never heard of.
        assert!(matches!(
            parse_request(r#"{"op":"ping","tracing_id":"abc","nested":{"x":[1,2]}}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            parse_request(
                r#"{"op":"ingest","relation":"r","rows":[],"compression":"zstd","hint":9}"#
            )
            .unwrap(),
            Request::Ingest { seq: None, .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"hello","proto_version":99,"features":["tls"]}"#).unwrap(),
            Request::Hello {
                proto_version: Some(99)
            }
        ));
    }

    #[test]
    fn malformed_and_misshapen_requests_answer_with_codes() {
        let code = |line: &str| {
            parse_request(line)
                .unwrap_err()
                .get("code")
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        assert_eq!(code("{"), "malformed");
        assert_eq!(code("[1,2]"), "bad_request");
        assert_eq!(code(r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(code(r#"{"op":"ingest"}"#), "bad_request");
        assert_eq!(
            code(r#"{"op":"check","relation":"r","tuple":-1}"#),
            "bad_request"
        );
        assert_eq!(
            code(r#"{"op":"open","relation":"r","attrs":[],"rules":""}"#),
            "bad_request"
        );
        assert_eq!(
            code(r#"{"op":"open","relation":"r","attrs":["a"],"rules":"","phase":"x"}"#),
            "bad_request"
        );
        assert_eq!(
            code(r#"{"op":"open","relation":"r","attrs":["a"],"rules":"","default_cf":1.5}"#),
            "bad_request"
        );
        assert_eq!(
            code(r#"{"op":"ingest","relation":"r","rows":[],"seq":-1}"#),
            "bad_request"
        );
        assert_eq!(code(r#"{"op":"repl_ack","relation":"r"}"#), "bad_request");
        assert_eq!(
            code(r#"{"op":"repl_fetch","relation":"r","max_frames":0}"#),
            "bad_request"
        );
        assert_eq!(
            code(r#"{"op":"hello","proto_version":"two"}"#),
            "bad_request"
        );
    }

    #[test]
    fn engine_errors_map_to_stable_codes() {
        assert_eq!(clean_error_code(&CleanError::ForeignState), "foreign_state");
        assert_eq!(
            clean_error_code(&CleanError::BatchArityMismatch {
                expected: 3,
                found: 2
            }),
            "batch_arity"
        );
        assert_eq!(
            clean_error_code(&CleanError::MdsWithoutMaster),
            "mds_without_master"
        );
        let resp = clean_error(&CleanError::ForeignState);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("different Cleaner"));
    }
}
