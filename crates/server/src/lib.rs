//! Cleaning-as-a-service: a long-lived daemon hosting many named
//! relations (tenants) over the incremental engine.
//!
//! The paper's unified matching+repairing process is batch-oriented; this
//! crate composes the pieces the engine already provides into the serving
//! shape the ROADMAP targets:
//!
//! * each **tenant** binds a session ([`uniclean_core::Cleaner`], whose
//!   `Arc<PreparedCleaner>` holds rules, master index and config built
//!   once at `open`) to a live [`uniclean_core::RepairState`] fed purely
//!   by `ingest` batches through `clean_delta`;
//! * tenants are **sharded** across a fixed worker pool by
//!   `hash(relation) % shards` ([`shard_for`]): all mutations for one
//!   relation are serialized on its owning shard's queue, while distinct
//!   relations clean in parallel;
//! * **reads are online**: `check` answers per-tuple/per-relation
//!   acceptance from the maintained [`uniclean_core::RepairState`]
//!   acceptance index ([`uniclean_core::RepairState::is_accepted`] /
//!   [`uniclean_core::RepairState::violations`]) without running a phase,
//!   and `stats` reports queue depths and
//!   [`uniclean_core::PhaseObserver`]-derived phase timings;
//! * **backpressure is explicit**: per-shard ingest queues are bounded
//!   (`std::sync::mpsc::sync_channel`), and a full queue answers `busy`
//!   with the observed depth instead of buffering without bound;
//!   graceful shutdown stops accepting, then drains every queue.
//!
//! The wire protocol is line-delimited JSON over TCP — one request
//! object per line, one response object per line, speaking the
//! [`uniclean_model::json`] codecs. See [`protocol`] for the verb
//! grammar and the README "Serving" section for examples.

pub mod daemon;
pub mod protocol;
pub mod registry;
pub mod shard;
pub mod stats;

pub use daemon::{Daemon, DaemonConfig};
pub use protocol::{OpenSpec, Request};

/// The shard owning a relation: `hash(relation) % shards`, with the
/// workspace's deterministic [`uniclean_model::FxHasher`] — stable across
/// processes and runs, so clients and tests can predict placement.
pub fn shard_for(relation: &str, shards: usize) -> usize {
    use std::hash::Hasher;
    let mut h = uniclean_model::FxHasher::default();
    h.write(relation.as_bytes());
    (h.finish() % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_placement_is_deterministic_and_in_range() {
        for shards in [1, 2, 4, 7] {
            for name in ["hosp", "dblp", "tran", "a", ""] {
                let s = shard_for(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(name, shards), "stable for {name}");
            }
        }
        // One shard owns everything.
        assert_eq!(shard_for("anything", 1), 0);
    }
}
