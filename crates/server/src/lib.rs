//! Cleaning-as-a-service: a long-lived daemon hosting many named
//! relations (tenants) over the incremental engine.
//!
//! The paper's unified matching+repairing process is batch-oriented; this
//! crate composes the pieces the engine already provides into the serving
//! shape the ROADMAP targets:
//!
//! * each **tenant** binds a session ([`uniclean_core::Cleaner`], whose
//!   `Arc<PreparedCleaner>` holds rules, master index and config built
//!   once at `open`) to a live [`uniclean_core::RepairState`] fed purely
//!   by `ingest` batches through `clean_delta`;
//! * tenants are **sharded** across a fixed worker pool by
//!   `hash(relation) % shards` ([`shard_for`]): all mutations for one
//!   relation are serialized on its owning shard's queue, while distinct
//!   relations clean in parallel;
//! * **reads are online**: `check` answers per-tuple/per-relation
//!   acceptance from the maintained [`uniclean_core::RepairState`]
//!   acceptance index ([`uniclean_core::RepairState::is_accepted`] /
//!   [`uniclean_core::RepairState::violations`]) without running a phase,
//!   and `stats` reports queue depths and
//!   [`uniclean_core::PhaseObserver`]-derived phase timings;
//! * **backpressure is explicit**: per-shard ingest queues are bounded
//!   (`std::sync::mpsc::sync_channel`), and a full queue answers `busy`
//!   with the observed depth instead of buffering without bound;
//!   graceful shutdown stops accepting, then drains every queue.
//!
//! The wire protocol is line-delimited JSON over TCP — one request
//! object per line, one response object per line, speaking the
//! [`uniclean_model::json`] codecs. See [`protocol`] for the verb
//! grammar and the README "Serving" section for examples.
//!
//! With a data directory the daemon is **durable**: every acknowledged
//! `open`/`ingest` is appended to a per-tenant write-ahead log
//! ([`wal`], framed and checksummed by [`uniclean_model::frame`]) and
//! fsync'd before the ack reaches the wire; periodic [`snapshot`]s
//! compact the log; startup [`recovery`] replays the longest valid WAL
//! prefix on top of the newest loadable snapshot, truncating torn tails
//! and quarantining unrecoverable tenant directories. Replay correctness
//! rests on the §5.2 order-independence property: re-feeding the logged
//! batches through `clean_delta` reproduces the pre-crash state
//! bit-identically. Fault injection for crash tests lives in [`faults`]
//! (cfg-gated behind the `failpoints` feature).

pub mod daemon;
pub mod faults;
pub mod protocol;
pub mod recovery;
pub mod registry;
pub mod replication;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use daemon::{Daemon, DaemonConfig};
pub use protocol::{OpenSpec, Request};
pub use recovery::RecoveryReport;

/// The on-disk directory name for a tenant, a conservative percent
/// encoding of the relation name: ASCII alphanumerics plus `-` and `_`
/// pass through, every other byte becomes `%XX` (uppercase hex). The
/// empty name maps to `"%"`. Injective, never empty, never contains `.`
/// or a path separator — recovery relies on all three (dotted names in
/// the data root are skipped as non-tenant entries, e.g. quarantined
/// `*.corrupt-N` directories).
pub fn tenant_dir_name(name: &str) -> String {
    if name.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The shard owning a relation: `hash(relation) % shards`, with the
/// workspace's deterministic [`uniclean_model::FxHasher`] — stable across
/// processes and runs, so clients and tests can predict placement.
pub fn shard_for(relation: &str, shards: usize) -> usize {
    use std::hash::Hasher;
    let mut h = uniclean_model::FxHasher::default();
    h.write(relation.as_bytes());
    (h.finish() % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_placement_is_deterministic_and_in_range() {
        for shards in [1, 2, 4, 7] {
            for name in ["hosp", "dblp", "tran", "a", ""] {
                let s = shard_for(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(name, shards), "stable for {name}");
            }
        }
        // One shard owns everything.
        assert_eq!(shard_for("anything", 1), 0);
    }

    #[test]
    fn tenant_dir_names_are_safe_and_injective() {
        assert_eq!(tenant_dir_name("hosp"), "hosp");
        assert_eq!(tenant_dir_name("a-b_C9"), "a-b_C9");
        assert_eq!(tenant_dir_name(""), "%");
        assert_eq!(tenant_dir_name("a.b"), "a%2Eb");
        assert_eq!(tenant_dir_name("a/b"), "a%2Fb");
        assert_eq!(tenant_dir_name(".."), "%2E%2E");
        assert_eq!(tenant_dir_name("é"), "%C3%A9");
        // Distinct names never collide on disk.
        let names = ["a.b", "a%2Eb", "a/b", "a\\b", "", "%", ".", ".."];
        let encoded: Vec<String> = names.iter().map(|n| tenant_dir_name(n)).collect();
        for (i, e) in encoded.iter().enumerate() {
            assert!(!e.contains('.') && !e.contains('/') && !e.contains('\\'));
            for (j, f) in encoded.iter().enumerate() {
                assert_eq!(i == j, e == f, "{:?} vs {:?}", names[i], names[j]);
            }
        }
    }
}
