//! Asynchronous WAL streaming replication: a standby daemon tails a
//! primary's per-tenant WALs and stays promotable.
//!
//! The design is **pull-based** over the existing line-JSON protocol —
//! no new transport, no push channel state on the primary:
//!
//! * the standby (`serve --replicate-from <addr>`) runs one **puller**
//!   thread. Each round it sends `repl_list` (durable tenants with their
//!   WAL position `seq` and compaction `floor`), then per tenant
//!   `repl_fetch` until caught up, then `repl_ack` (which doubles as the
//!   heartbeat the primary's `stats` ages);
//! * `repl_fetch` streams **raw checksummed WAL frames**, hex-encoded,
//!   exactly as they sit in the primary's log. The FNV checksum each
//!   frame already carries therefore protects the bytes end-to-end:
//!   network corruption or truncation is caught by the same validation
//!   recovery uses, and the damaged fetch is simply retried;
//! * when a fetch asks for history the primary has compacted away
//!   (`after < floor`), the response switches to `mode:"snapshot"` and
//!   carries the snapshot file — itself exactly one frame — from which
//!   the standby bootstraps via the recovery replay path (cross-check
//!   included), then tails the WAL from the snapshot's seq;
//! * applied frames flow through the standby's **own** shard queues and
//!   WAL, stamped with `repl_seq` markers (the primary seq each batch
//!   mirrors), so a standby restart resumes tailing exactly where it
//!   stopped and re-streamed frames dedup instead of double-applying;
//! * `promote` stops the puller, drains its in-flight applies (the
//!   puller submits synchronously, so joining it *is* the drain), and
//!   flips the node to serving. Until then every mutating verb answers
//!   a structured `standby` error naming the primary.
//!
//! Exactly-once composition: the WAL records the original client's
//! `client_seq` alongside each batch, the standby's WAL preserves both
//! markers, and [`crate::shard`]'s dedup checks them — so a client that
//! re-sends its in-flight batch after failover gets `deduped:true` if
//! the batch had replicated before the primary died, and a fresh apply
//! if it had not. Either way the promoted node's state is bit-identical
//! to an uninterrupted run (§5.2 order-independence).

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use uniclean_client::{Backoff, Conn};
use uniclean_model::frame::{encode_frame, scan_frames, FRAME_HEADER_LEN};
use uniclean_model::json::batch_from_json;
use uniclean_model::Json;

use crate::daemon::{submit, Outcome, Shared};
use crate::faults::{self, NetFault};
use crate::protocol::{error, ok, parse_open, PROTO_VERSION};
use crate::recovery::replay_candidate;
use crate::registry::{create_tenant_storage, Tenant};
use crate::shard::Job;
use crate::snapshot::{write_snapshot, SnapshotDoc, SNAP_FILE};
use crate::wal::{WalContents, WAL_FILE};

/// Frames per `repl_fetch` response when the request does not say.
pub const DEFAULT_FETCH_FRAMES: usize = 64;

/// Puller connect deadline against the primary.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Puller per-request io deadline (also bounds an injected `delay`).
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Idle poll between rounds when the standby is caught up.
const IDLE_POLL: Duration = Duration::from_millis(25);
/// Retry pause when a shard queue answers `busy`.
const BUSY_RETRY: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Primary side: repl_list / repl_fetch / repl_ack handlers
// ---------------------------------------------------------------------------

/// What the primary knows about one tenant's replica (fed by `repl_ack`).
pub(crate) struct ReplicaInfo {
    /// Highest primary WAL seq the standby reported applied.
    pub(crate) acked_seq: u64,
    /// When that report arrived (heartbeat recency).
    pub(crate) last_ack: Instant,
}

/// The `repl_list` verb: every durable tenant with its WAL position.
/// `floor` is the oldest seq still fetchable from the WAL — anything
/// older was compacted into the snapshot, so a standby behind the floor
/// must re-bootstrap.
pub(crate) fn handle_list(shared: &Arc<Shared>) -> Json {
    let mut tenants = Vec::new();
    for t in shared.registry.snapshot() {
        let guard = t.durable_lock();
        let Some(d) = guard.as_ref() else {
            continue; // memory-only tenants have no log to stream
        };
        tenants.push(Json::Obj(vec![
            ("relation".to_string(), Json::str(&t.name)),
            ("seq".to_string(), Json::Num(d.seq as f64)),
            (
                "floor".to_string(),
                Json::Num((d.seq - d.since_snapshot) as f64),
            ),
            ("poisoned".to_string(), Json::Bool(t.is_poisoned())),
        ]));
    }
    ok(vec![("tenants", Json::Arr(tenants))])
}

/// The `repl_fetch` verb, with its two failpoints: `repl.fetch` (process
/// faults: kill, or an injected error the standby retries) and
/// `repl.fetch.net` (network faults mangling the reply in flight).
pub(crate) fn handle_fetch(
    shared: &Arc<Shared>,
    relation: &str,
    after: u64,
    max_frames: usize,
) -> Outcome {
    if let Err(e) = faults::hit("repl.fetch") {
        return Outcome::Reply(error("retry", format!("injected fetch fault: {e}")));
    }
    let resp = fetch_response(shared, relation, after, max_frames);
    match faults::net_hit("repl.fetch.net") {
        None => Outcome::Reply(resp),
        Some(NetFault::Delay) => {
            std::thread::sleep(Duration::from_millis(100));
            Outcome::Reply(resp)
        }
        Some(NetFault::Disconnect) => {
            // Half a rendered reply, then the connection closes — the
            // classic mid-stream disconnect.
            let mut line = resp.render();
            line.truncate(line.len() / 2);
            Outcome::CloseAfter(line)
        }
        Some(NetFault::Corrupt) => Outcome::Reply(mangle(resp, Mangle::Corrupt)),
        Some(NetFault::Truncate) => Outcome::Reply(mangle(resp, Mangle::Truncate)),
        Some(NetFault::Duplicate) => Outcome::Reply(mangle(resp, Mangle::Duplicate)),
    }
}

fn fetch_response(shared: &Arc<Shared>, relation: &str, after: u64, max_frames: usize) -> Json {
    let tenant = match shared.registry.get(relation) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    // The durable lock serializes against the owning shard's appends and
    // compaction renames, so the file reads below see a consistent log.
    let guard = tenant.durable_lock();
    let Some(d) = guard.as_ref() else {
        return error(
            "not_durable",
            format!("relation {relation:?} has no WAL to replicate (memory-only daemon)"),
        );
    };
    let floor = d.seq - d.since_snapshot;
    if after < floor {
        // The history below `floor` lives only in the snapshot now.
        let bytes = match std::fs::read(d.dir.join(SNAP_FILE)) {
            Ok(b) => b,
            Err(e) => return error("io", format!("snapshot unreadable: {e}")),
        };
        return ok(vec![
            ("relation", Json::str(relation)),
            ("mode", Json::str("snapshot")),
            ("seq", Json::Num(d.seq as f64)),
            ("floor", Json::Num(floor as f64)),
            ("data", Json::str(hex_encode(&bytes))),
        ]);
    }
    let bytes = match std::fs::read(d.dir.join(WAL_FILE)) {
        Ok(b) => b,
        Err(e) => return error("io", format!("WAL unreadable: {e}")),
    };
    let (payloads, _torn) = scan_frames(&bytes);
    let mut frames = Vec::new();
    for p in payloads {
        let Some(doc) = std::str::from_utf8(p)
            .ok()
            .and_then(|t| Json::parse(t).ok())
        else {
            break; // ungrammatical tail: stop at the valid prefix
        };
        let include = match doc.get("kind").and_then(Json::as_str) {
            // The open frame only matters to a standby starting from zero.
            Some("open") => after == 0,
            Some("batch") => doc
                .get("seq")
                .and_then(Json::as_u64)
                .is_some_and(|s| s > after),
            _ => false,
        };
        if include {
            // Re-encoding the payload reproduces the frame bytes exactly
            // (the header is a pure function of the payload), so the
            // standby re-validates the same checksum the log carries.
            let mut raw = Vec::with_capacity(p.len() + FRAME_HEADER_LEN);
            encode_frame(p, &mut raw);
            frames.push(Json::Str(hex_encode(&raw)));
            if frames.len() >= max_frames {
                break;
            }
        }
    }
    ok(vec![
        ("relation", Json::str(relation)),
        ("mode", Json::str("wal")),
        ("seq", Json::Num(d.seq as f64)),
        ("floor", Json::Num(floor as f64)),
        ("frames", Json::Arr(frames)),
    ])
}

/// The `repl_ack` verb: record the replica's applied offset + heartbeat.
pub(crate) fn handle_ack(shared: &Arc<Shared>, relation: &str, seq: u64) -> Json {
    if let Err(e) = faults::hit("repl.ack") {
        return error("retry", format!("injected ack fault: {e}"));
    }
    let mut map = shared
        .replicas
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let info = map.entry(relation.to_string()).or_insert(ReplicaInfo {
        acked_seq: 0,
        last_ack: Instant::now(),
    });
    info.acked_seq = info.acked_seq.max(seq);
    info.last_ack = Instant::now();
    ok(vec![
        ("relation", Json::str(relation)),
        ("acked_seq", Json::Num(info.acked_seq as f64)),
    ])
}

/// The `replication` member of a primary's per-relation `stats` block:
/// the replica's acked offset, its lag in frames and bytes, and how
/// stale its heartbeat is. `None` when no replica ever acked this
/// relation. Lag bytes come from an on-demand WAL scan under `try_lock`
/// so `stats` stays online even mid-append.
pub(crate) fn relation_replication_json(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
) -> Option<Json> {
    let (acked_seq, age) = {
        let map = shared
            .replicas
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let info = map.get(&tenant.name)?;
        (info.acked_seq, info.last_ack.elapsed().as_secs_f64())
    };
    let mut pairs = vec![
        ("acked_seq".to_string(), Json::Num(acked_seq as f64)),
        ("heartbeat_age_seconds".to_string(), Json::Num(age)),
    ];
    if let Ok(guard) = tenant.durable.try_lock() {
        if let Some(d) = guard.as_ref() {
            pairs.push((
                "lag_frames".to_string(),
                Json::Num(d.seq.saturating_sub(acked_seq) as f64),
            ));
            if let Some(bytes) = wal_lag_bytes(&d.dir.join(WAL_FILE), acked_seq) {
                pairs.push(("lag_bytes".to_string(), Json::Num(bytes as f64)));
            }
        }
    }
    Some(Json::Obj(pairs))
}

/// On-disk bytes of WAL frames with `seq > acked` — the replica's lag in
/// bytes, without holding anything in memory between calls.
fn wal_lag_bytes(wal_path: &std::path::Path, acked: u64) -> Option<u64> {
    let bytes = std::fs::read(wal_path).ok()?;
    let (payloads, _torn) = scan_frames(&bytes);
    let mut lag = 0u64;
    for p in payloads {
        let doc = Json::parse(std::str::from_utf8(p).ok()?).ok()?;
        if doc.get("kind").and_then(Json::as_str) == Some("batch")
            && doc.get("seq").and_then(Json::as_u64)? > acked
        {
            lag += (p.len() + FRAME_HEADER_LEN) as u64;
        }
    }
    Some(lag)
}

// ---------------------------------------------------------------------------
// Promotion
// ---------------------------------------------------------------------------

/// The `promote` verb: stop the puller, drain its in-flight applies
/// (joining the puller thread is the drain — it submits synchronously),
/// then flip the node to serving.
pub(crate) fn promote(shared: &Arc<Shared>) -> Json {
    if !shared.standby.load(Ordering::SeqCst) {
        return error("not_standby", "this node is already a primary");
    }
    stop_puller(shared);
    shared.standby.store(false, Ordering::SeqCst);
    ok(vec![
        ("role", Json::str("primary")),
        ("promoted", Json::Bool(true)),
        ("relations", Json::Num(shared.registry.count() as f64)),
    ])
}

/// Signal the puller to stop and join it (idempotent; also the shutdown
/// path for a standby daemon).
pub(crate) fn stop_puller(shared: &Arc<Shared>) {
    shared.repl_stop.store(true, Ordering::SeqCst);
    let handle = shared
        .repl_handle
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(h) = handle {
        let _ = h.join();
    }
}

// ---------------------------------------------------------------------------
// Standby side: the puller
// ---------------------------------------------------------------------------

/// Counters the `ping`/`stats` verbs report for a (current or former)
/// standby.
#[derive(Default)]
pub(crate) struct StandbyStatus {
    /// Whether the last round reached the primary.
    pub(crate) connected: bool,
    /// Completed pull rounds.
    pub(crate) rounds: u64,
    /// Batch frames applied (dedup-skipped frames not counted).
    pub(crate) frames_applied: u64,
    /// Tenants bootstrapped (from a snapshot or an open frame).
    pub(crate) bootstraps: u64,
    /// Failed rounds + damaged-stream retries.
    pub(crate) retries: u64,
    /// Human text of the last failure, if any.
    pub(crate) last_error: Option<String>,
}

impl StandbyStatus {
    pub(crate) fn to_json(&self, primary: Option<&str>) -> Json {
        let mut pairs = vec![
            ("role".to_string(), Json::str("standby")),
            ("connected".to_string(), Json::Bool(self.connected)),
            ("rounds".to_string(), Json::Num(self.rounds as f64)),
            (
                "frames_applied".to_string(),
                Json::Num(self.frames_applied as f64),
            ),
            ("bootstraps".to_string(), Json::Num(self.bootstraps as f64)),
            ("retries".to_string(), Json::Num(self.retries as f64)),
        ];
        if let Some(p) = primary {
            pairs.insert(1, ("primary".to_string(), Json::str(p)));
        }
        if let Some(e) = &self.last_error {
            pairs.push(("last_error".to_string(), Json::str(e)));
        }
        Json::Obj(pairs)
    }
}

fn status(shared: &Arc<Shared>) -> MutexGuard<'_, StandbyStatus> {
    shared
        .repl_status
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn should_stop(shared: &Arc<Shared>) -> bool {
    shared.repl_stop.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst)
}

/// Sleep up to `total`, but wake early if promotion or shutdown asks the
/// puller to stop — a promote must never wait out a 2s backoff.
fn sleep_checking_stop(shared: &Arc<Shared>, total: Duration) {
    let deadline = Instant::now() + total;
    while !should_stop(shared) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The standby's puller loop: connect → round (list, per-tenant sync,
/// ack) → repeat, with jittered exponential backoff on failure.
pub(crate) fn run_puller(shared: Arc<Shared>, primary: String) {
    let mut conn: Option<Conn> = None;
    let fresh_backoff = || {
        Backoff::new(
            Duration::from_millis(50),
            Duration::from_secs(2),
            0x7e57_ab1e,
        )
    };
    let mut backoff = fresh_backoff();
    while !should_stop(&shared) {
        match round(&shared, &primary, &mut conn) {
            Ok(applied) => {
                {
                    let mut st = status(&shared);
                    st.connected = true;
                    st.rounds += 1;
                    st.frames_applied += applied;
                    if applied > 0 {
                        st.last_error = None;
                    }
                }
                backoff = fresh_backoff();
                if applied == 0 {
                    sleep_checking_stop(&shared, IDLE_POLL);
                }
            }
            Err(e) => {
                {
                    let mut st = status(&shared);
                    st.connected = false;
                    st.retries += 1;
                    st.last_error = Some(e);
                }
                conn = None; // reconnect from scratch
                sleep_checking_stop(&shared, backoff.next_delay());
            }
        }
    }
    status(&shared).connected = false;
}

/// One pull round. Returns how many batch frames were applied.
fn round(shared: &Arc<Shared>, primary: &str, conn: &mut Option<Conn>) -> Result<u64, String> {
    if conn.is_none() {
        let mut c = Conn::connect(primary, CONNECT_TIMEOUT, IO_TIMEOUT)
            .map_err(|e| format!("connect {primary}: {e}"))?;
        c.handshake(PROTO_VERSION)
            .map_err(|e| format!("handshake with {primary}: {e}"))?;
        *conn = Some(c);
    }
    let c = conn.as_mut().expect("connection just established");
    let listed = request_ok(
        c,
        &Json::Obj(vec![("op".to_string(), Json::str("repl_list"))]),
    )?;
    let tenants = listed
        .get("tenants")
        .and_then(Json::as_arr)
        .ok_or("repl_list reply carries no tenants array")?
        .to_vec();
    let mut applied = 0u64;
    let mut listed_names: HashSet<String> = HashSet::new();
    for t in &tenants {
        if should_stop(shared) {
            return Ok(applied);
        }
        let Some(name) = t.get("relation").and_then(Json::as_str) else {
            return Err("repl_list entry without a relation".to_string());
        };
        listed_names.insert(name.to_string());
        if t.get("poisoned").and_then(Json::as_bool) == Some(true) {
            continue; // a poisoned primary tenant's log may end torn; skip
        }
        let seq = t.get("seq").and_then(Json::as_u64).unwrap_or(0);
        let floor = t.get("floor").and_then(Json::as_u64).unwrap_or(0);
        applied += sync_tenant(shared, c, name, seq, floor)?;
    }
    // Tenants the primary no longer lists were closed there — close the
    // local copy too (through its shard, after any pending applies).
    for t in shared.registry.snapshot() {
        if !listed_names.contains(&t.name) {
            let registry = shared.registry.clone();
            let name = t.name.clone();
            let _ = submit(shared, t.shard, |reply| Job::Close {
                registry,
                name,
                reply,
            });
        }
    }
    Ok(applied)
}

fn request_ok(c: &mut Conn, req: &Json) -> Result<Json, String> {
    let resp = c.request(req).map_err(|e| e.to_string())?;
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(resp)
    } else {
        Err(format!("primary answered {}", resp.render()))
    }
}

fn fetch(c: &mut Conn, relation: &str, after: u64) -> Result<Json, String> {
    request_ok(
        c,
        &Json::Obj(vec![
            ("op".to_string(), Json::str("repl_fetch")),
            ("relation".to_string(), Json::str(relation)),
            ("after".to_string(), Json::Num(after as f64)),
            (
                "max_frames".to_string(),
                Json::Num(DEFAULT_FETCH_FRAMES as f64),
            ),
        ]),
    )
}

/// Bring one tenant up to the primary's `seq`: bootstrap if absent or
/// compacted past (`< floor`), then tail WAL frames, then ack. The ack
/// goes out every round even when already caught up — it is also the
/// heartbeat.
fn sync_tenant(
    shared: &Arc<Shared>,
    c: &mut Conn,
    name: &str,
    primary_seq: u64,
    floor: u64,
) -> Result<u64, String> {
    let mut applied = 0u64;
    let mut local = shared.registry.get(name).ok().map(|t| {
        let seq = t.entry_read().repl_seq.unwrap_or(0);
        (t, seq)
    });
    if let Some((_, local_seq)) = &local {
        if *local_seq < floor {
            // The primary compacted away history we still need: this copy
            // can't catch up frame-by-frame. Drop it and re-bootstrap.
            drop_local(shared, name);
            local = None;
        }
    }
    let (tenant, mut local_seq) = match local {
        Some(ts) => ts,
        None => {
            let (tenant, seq, n) = bootstrap(shared, c, name)?;
            status(shared).bootstraps += 1;
            applied += n;
            (tenant, seq)
        }
    };
    while local_seq < primary_seq && !should_stop(shared) {
        let resp = fetch(c, name, local_seq)?;
        match resp.get("mode").and_then(Json::as_str) {
            Some("wal") => {
                let n = apply_frames(shared, &tenant, &resp, &mut local_seq)?;
                applied += n;
                if n == 0 {
                    break; // damaged stream or empty reply: retry next round
                }
            }
            // The primary compacted underneath this loop; the next
            // round's floor check rebuilds from the new snapshot.
            Some("snapshot") => break,
            _ => return Err("repl_fetch reply without a mode".to_string()),
        }
    }
    request_ok(
        c,
        &Json::Obj(vec![
            ("op".to_string(), Json::str("repl_ack")),
            ("relation".to_string(), Json::str(name)),
            ("seq".to_string(), Json::Num(local_seq as f64)),
        ]),
    )?;
    Ok(applied)
}

/// Remove a stale local tenant (registry + directory) through its shard,
/// so the close lands after any in-flight applies.
fn drop_local(shared: &Arc<Shared>, name: &str) {
    if let Ok(t) = shared.registry.get(name) {
        let registry = shared.registry.clone();
        let name = name.to_string();
        let _ = submit(shared, t.shard, |reply| Job::Close {
            registry,
            name,
            reply,
        });
    }
}

/// First fetch for an unknown tenant: either a snapshot (bootstrap via
/// the recovery replay path) or the WAL from frame zero (whose first
/// frame is the open record). Returns the adopted tenant, its mirrored
/// seq, and how many batch frames the call already applied.
fn bootstrap(
    shared: &Arc<Shared>,
    c: &mut Conn,
    name: &str,
) -> Result<(Arc<Tenant>, u64, u64), String> {
    let resp = fetch(c, name, 0)?;
    match resp.get("mode").and_then(Json::as_str) {
        Some("snapshot") => {
            let data = resp
                .get("data")
                .and_then(Json::as_str)
                .ok_or("snapshot reply without data")?;
            let bytes = hex_decode(data).ok_or("snapshot stream is not valid hex")?;
            let (frames, torn) = scan_frames(&bytes);
            if frames.len() != 1 || torn.is_some() {
                return Err("snapshot stream damaged (checksum mismatch)".to_string());
            }
            let doc_json = std::str::from_utf8(frames[0])
                .ok()
                .and_then(|t| Json::parse(t).ok())
                .ok_or("snapshot payload is not JSON")?;
            let mut doc = SnapshotDoc::from_json(&doc_json)
                .ok_or("snapshot payload is not a version-1 snapshot")?;
            // Locally, this state mirrors the primary at the snapshot's
            // seq — record that so restarts resume tailing from there.
            doc.repl_seq = Some(doc.seq);
            let tenant = bootstrap_from_snapshot(shared, name, &doc)?;
            Ok((tenant, doc.seq, 0))
        }
        Some("wal") => {
            // Frame 0 of a from-zero fetch is the open record.
            let frames = resp
                .get("frames")
                .and_then(Json::as_arr)
                .ok_or("wal reply without frames")?;
            let first = frames
                .first()
                .and_then(Json::as_str)
                .ok_or("tenant has no open frame to bootstrap from")?;
            let bytes = hex_decode(first).ok_or("open frame is not valid hex")?;
            let (payloads, torn) = scan_frames(&bytes);
            if payloads.len() != 1 || torn.is_some() {
                return Err("open frame damaged (checksum mismatch)".to_string());
            }
            let record = std::str::from_utf8(payloads[0])
                .ok()
                .and_then(|t| Json::parse(t).ok())
                .ok_or("open frame payload is not JSON")?;
            let spec_doc = record
                .get("spec")
                .ok_or("first WAL frame is not an open record")?;
            let spec = parse_open(spec_doc)
                .map_err(|e| format!("primary open spec rejected: {}", e.render()))?;
            if spec.relation != name {
                return Err(format!(
                    "open spec names {:?}, expected {name:?}",
                    spec.relation
                ));
            }
            let tenant = Tenant::open(&spec, shared.shard_stats.len())
                .map_err(|e| format!("session rebuild failed: {}", e.render()))?;
            if let Some(cfg) = &shared.durable {
                let durable = create_tenant_storage(name, spec_doc, cfg)
                    .map_err(|e| format!("cannot create standby storage: {e}"))?;
                *tenant.durable_lock() = Some(durable);
            }
            let tenant = Arc::new(tenant);
            shared.registry.adopt(vec![tenant.clone()]);
            let mut local_seq = 0u64;
            let n = apply_frames(shared, &tenant, &resp, &mut local_seq)?;
            Ok((tenant, local_seq, n))
        }
        _ => Err("repl_fetch reply without a mode".to_string()),
    }
}

/// Build a tenant from a streamed snapshot: replay through the recovery
/// path (cross-check included), persist the snapshot as the standby's
/// own (so a standby restart recovers without re-streaming), then adopt.
/// Adoption happens after the replay — readers never see a
/// half-bootstrapped tenant.
fn bootstrap_from_snapshot(
    shared: &Arc<Shared>,
    name: &str,
    doc: &SnapshotDoc,
) -> Result<Arc<Tenant>, String> {
    let spec = parse_open(&doc.open)
        .map_err(|e| format!("snapshot open spec rejected: {}", e.render()))?;
    if spec.relation != name {
        return Err(format!(
            "snapshot names {:?}, expected {name:?}",
            spec.relation
        ));
    }
    let tenant = Tenant::open(&spec, shared.shard_stats.len())
        .map_err(|e| format!("session rebuild failed: {}", e.render()))?;
    let empty = WalContents {
        open: None,
        batches: Vec::new(),
        valid_len: 0,
        torn: false,
    };
    let replayed = replay_candidate(&tenant, Some(doc), &empty)?;
    tenant.replace_entry(
        replayed.state,
        replayed.stats,
        replayed.last_client_seq,
        replayed.repl_seq,
    );
    if let Some(cfg) = &shared.durable {
        let mut d = create_tenant_storage(name, &doc.open, cfg)
            .map_err(|e| format!("cannot create standby storage: {e}"))?;
        write_snapshot(&d.dir, doc, cfg.fsync)
            .map_err(|e| format!("cannot persist bootstrap snapshot: {e}"))?;
        // Local WAL seqs continue from the snapshot's coverage, exactly
        // as they would after a primary-style compaction.
        d.seq = doc.seq;
        d.since_snapshot = 0;
        d.base_rows = doc
            .base_rows
            .as_arr()
            .ok_or("snapshot base rows are not an array")?
            .to_vec();
        *tenant.durable_lock() = Some(d);
    }
    let tenant = Arc::new(tenant);
    shared.registry.adopt(vec![tenant.clone()]);
    Ok(tenant)
}

/// Decode and apply the batch frames of one `wal`-mode reply, advancing
/// `local_seq`. Stops (without error) at the first damaged frame — the
/// checksum validation here is what turns injected corruption and
/// truncation into a clean retry instead of divergence. Frames at or
/// below `local_seq` (duplicates) are skipped.
fn apply_frames(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
    resp: &Json,
    local_seq: &mut u64,
) -> Result<u64, String> {
    let frames = resp
        .get("frames")
        .and_then(Json::as_arr)
        .ok_or("wal reply without frames")?;
    let arity = tenant.cleaner.rules().schema().arity();
    let mut applied = 0u64;
    let damaged = |what: &str, shared: &Arc<Shared>| {
        let mut st = status(shared);
        st.retries += 1;
        st.last_error = Some(format!("damaged replication stream: {what}"));
    };
    for f in frames {
        if should_stop(shared) {
            return Ok(applied);
        }
        let Some(bytes) = f.as_str().and_then(hex_decode) else {
            damaged("frame is not valid hex", shared);
            break;
        };
        let (payloads, torn) = scan_frames(&bytes);
        if payloads.len() != 1 || torn.is_some() {
            damaged("frame checksum mismatch", shared);
            break;
        }
        let Some(doc) = std::str::from_utf8(payloads[0])
            .ok()
            .and_then(|t| Json::parse(t).ok())
        else {
            damaged("frame payload is not JSON", shared);
            break;
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("open") => continue, // bootstrap already consumed it
            Some("batch") => {
                let Some(seq) = doc.get("seq").and_then(Json::as_u64) else {
                    damaged("batch record without seq", shared);
                    break;
                };
                if seq <= *local_seq {
                    continue; // duplicated delivery: already applied
                }
                let Some(rows_json) = doc.get("rows") else {
                    damaged("batch record without rows", shared);
                    break;
                };
                let rows = batch_from_json(rows_json, arity, tenant.default_cf)
                    .map_err(|e| format!("replicated batch {seq} undecodable: {e}"))?;
                let client_seq = doc.get("client_seq").and_then(Json::as_u64);
                loop {
                    if should_stop(shared) {
                        return Ok(applied);
                    }
                    let resp = submit(shared, tenant.shard, |reply| Job::Ingest {
                        tenant: tenant.clone(),
                        rows: rows.clone(),
                        client_seq,
                        repl_seq: Some(seq),
                        reply,
                    });
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        break;
                    }
                    match resp.get("code").and_then(Json::as_str) {
                        Some("busy") => std::thread::sleep(BUSY_RETRY),
                        _ => {
                            return Err(format!(
                                "applying replicated batch {seq} failed: {}",
                                resp.render()
                            ))
                        }
                    }
                }
                *local_seq = seq;
                applied += 1;
            }
            _ => {
                damaged("frame is neither open nor batch", shared);
                break;
            }
        }
    }
    Ok(applied)
}

// ---------------------------------------------------------------------------
// Hex codec + reply mangling (net faults)
// ---------------------------------------------------------------------------

/// Lowercase hex encoding (frames are binary; the wire is line JSON).
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

enum Mangle {
    /// Flip one hex digit mid-payload (checksum must catch it).
    Corrupt,
    /// Keep only the first (even-length) half of the payload.
    Truncate,
    /// Deliver the payload twice (dedup must absorb it).
    Duplicate,
}

/// Damage a fetch reply the way a hostile network would, operating on
/// the hex payloads (`frames` entries or the snapshot `data`).
fn mangle(resp: Json, how: Mangle) -> Json {
    let Json::Obj(mut pairs) = resp else {
        return resp;
    };
    for (key, value) in pairs.iter_mut() {
        match (key.as_str(), &mut *value) {
            ("frames", Json::Arr(frames)) => {
                match how {
                    Mangle::Duplicate => {
                        let copy = frames.clone();
                        frames.extend(copy);
                    }
                    Mangle::Corrupt | Mangle::Truncate => {
                        if let Some(Json::Str(s)) = frames.first_mut() {
                            *s = mangle_hex(s, &how);
                        }
                    }
                }
                break;
            }
            ("data", Json::Str(s)) => {
                match how {
                    Mangle::Duplicate => {
                        let copy = s.clone();
                        s.push_str(&copy);
                    }
                    Mangle::Corrupt | Mangle::Truncate => *s = mangle_hex(s, &how),
                }
                break;
            }
            _ => {}
        }
    }
    Json::Obj(pairs)
}

fn mangle_hex(s: &str, how: &Mangle) -> String {
    match how {
        Mangle::Truncate => {
            let keep = (s.len() / 2) & !1;
            s[..keep].to_string()
        }
        _ => {
            // Corrupt: flip a digit past the header so the checksum, not
            // the length field, is what catches it.
            let mut b = s.as_bytes().to_vec();
            let idx = (FRAME_HEADER_LEN * 2).min(b.len().saturating_sub(1));
            if let Some(c) = b.get_mut(idx) {
                *c = if *c == b'0' { b'1' } else { b'0' };
            }
            String::from_utf8(b).unwrap_or_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_codec_round_trips_and_rejects_garbage() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0xbe, 0xef],
            (0..=255u8).collect(),
        ] {
            let enc = hex_encode(&bytes);
            assert_eq!(hex_decode(&enc).as_deref(), Some(bytes.as_slice()));
        }
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
        assert_eq!(hex_decode("ABCDEF"), Some(vec![0xab, 0xcd, 0xef]));
    }

    #[test]
    fn mangled_frames_fail_the_checksum_but_duplicates_still_verify() {
        let payload = br#"{"kind":"batch","seq":3,"rows":[]}"#;
        let mut raw = Vec::new();
        encode_frame(payload, &mut raw);
        let reply = |frames: Vec<Json>| {
            Json::Obj(vec![
                ("mode".to_string(), Json::str("wal")),
                ("frames".to_string(), Json::Arr(frames)),
            ])
        };
        let clean = reply(vec![Json::Str(hex_encode(&raw))]);

        let first_frame = |r: &Json| -> Option<Vec<u8>> {
            hex_decode(r.get("frames")?.as_arr()?.first()?.as_str()?)
        };

        let corrupted = mangle(clean.clone(), Mangle::Corrupt);
        let bytes = first_frame(&corrupted).unwrap();
        let (frames, torn) = scan_frames(&bytes);
        assert!(
            frames.is_empty() || torn.is_some(),
            "corruption must not verify"
        );

        let truncated = mangle(clean.clone(), Mangle::Truncate);
        let bytes = first_frame(&truncated).unwrap();
        let (frames, torn) = scan_frames(&bytes);
        assert!(
            frames.is_empty() || torn.is_some(),
            "truncation must not verify"
        );

        let duplicated = mangle(clean.clone(), Mangle::Duplicate);
        let frames = duplicated.get("frames").and_then(Json::as_arr).unwrap();
        assert_eq!(frames.len(), 2, "duplication doubles delivery");
        let bytes = hex_decode(frames[1].as_str().unwrap()).unwrap();
        let (payloads, torn) = scan_frames(&bytes);
        assert_eq!(payloads.len(), 1);
        assert!(torn.is_none(), "a duplicated frame still verifies");
        assert_eq!(payloads[0], payload);
    }
}
