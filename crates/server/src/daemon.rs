//! The daemon: TCP accept loop, connection threads, request dispatch,
//! and graceful shutdown.
//!
//! Connection threads parse request lines and answer reads (`check`,
//! `dump`, `stats`) directly under tenant read locks — online, no phase
//! runs and no queueing. Mutations (`ingest`, `close`) are decoded on the
//! connection thread, then submitted to the owning shard's bounded queue;
//! a full queue answers `busy` immediately with the observed depth.
//! `shutdown` flips the accept flag, wakes the listener, and the run loop
//! drops the shard senders so every worker drains its queue and exits
//! before the process returns.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use uniclean_model::json::{batch_from_json, relation_to_json};
use uniclean_model::Json;

use crate::protocol::{error, error_with, json_error, ok, parse_request, Request};
use crate::registry::{Registry, Tenant};
use crate::shard::{spawn_workers, Job};
use crate::stats::ShardStats;

/// How to bind and size a [`Daemon`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7401`. Port 0 asks the OS for an
    /// ephemeral port (read it back via [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker-pool size; relations map to workers by
    /// [`crate::shard_for`].
    pub shards: usize,
    /// Per-shard ingest queue bound; a full queue answers `busy`.
    pub queue_bound: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:7401".to_string(),
            shards: 4,
            queue_bound: 64,
        }
    }
}

/// State shared by the accept loop, connection threads and shard workers.
struct Shared {
    registry: Arc<Registry>,
    /// `None` once shutdown begins: dropping the senders is what lets the
    /// workers drain and exit.
    senders: RwLock<Option<Vec<SyncSender<Job>>>>,
    shard_stats: Vec<Arc<ShardStats>>,
    queue_bound: usize,
    shutdown: AtomicBool,
    local: SocketAddr,
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    config: DaemonConfig,
    local: SocketAddr,
}

impl Daemon {
    /// Bind the listen socket (so callers learn the ephemeral port before
    /// the serve loop starts).
    pub fn bind(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local = listener.local_addr()?;
        Ok(Daemon {
            listener,
            config,
            local,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Serve until a client sends `shutdown`. Drains every shard queue
    /// and joins every thread before returning.
    pub fn run(self) -> std::io::Result<()> {
        let shards = self.config.shards.max(1);
        let (senders, shard_stats, workers) = spawn_workers(shards, self.config.queue_bound.max(1));
        let shared = Arc::new(Shared {
            registry: Arc::new(Registry::new(shards)),
            senders: RwLock::new(Some(senders)),
            shard_stats,
            queue_bound: self.config.queue_bound.max(1),
            shutdown: AtomicBool::new(false),
            local: self.local,
        });
        let mut connections = Vec::new();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            // A shutdown request self-connects to unblock this accept.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = shared.clone();
            connections.push(
                std::thread::Builder::new()
                    .name("uniclean-conn".to_string())
                    .spawn(move || serve_connection(stream, shared))?,
            );
        }
        for c in connections {
            let _ = c.join();
        }
        // Dropping the senders closes every queue; workers finish what is
        // already enqueued, then exit.
        *shared.senders.write().unwrap() = None;
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Per-connection loop: read request lines, write response lines.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    // A finite read timeout lets the loop notice shutdown even while a
    // client sits idle holding the connection open.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Retry timeouts without discarding partial bytes: `read_line`
        // appends, so a line split across timeouts still assembles.
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        };
        if n == 0 {
            return; // EOF: client closed.
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = dispatch(&line, &shared);
        let mut out = response.render();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// One request line → one response object.
fn dispatch(line: &str, shared: &Arc<Shared>) -> Json {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    match request {
        Request::Open(spec) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error("shutting_down", "daemon is shutting down");
            }
            match shared.registry.open(&spec) {
                Ok(tenant) => ok(vec![
                    ("relation", Json::str(&tenant.name)),
                    ("shard", Json::Num(tenant.shard as f64)),
                    ("arity", Json::Num(spec.attrs.len() as f64)),
                    ("phase", Json::str(phase_wire_name(spec.phase))),
                ]),
                Err(resp) => resp,
            }
        }
        Request::Ingest { relation, rows } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error("shutting_down", "daemon is shutting down");
            }
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let arity = tenant.cleaner.rules().schema().arity();
            let rows = match batch_from_json(&rows, arity, tenant.default_cf) {
                Ok(rows) => rows,
                Err(e) => return json_error("bad_batch", &e),
            };
            submit(shared, tenant.shard, |reply| Job::Ingest {
                tenant: tenant.clone(),
                rows,
                reply,
            })
        }
        Request::Check { relation, tuple } => {
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let entry = tenant.entry.read().unwrap();
            match tuple {
                None => ok(vec![
                    ("relation", Json::str(&relation)),
                    ("consistent", Json::Bool(entry.state.consistent())),
                    ("tuples", Json::Num(entry.state.len() as f64)),
                    ("deltas", Json::Num(entry.state.deltas() as f64)),
                    ("escalations", Json::Num(entry.state.escalations() as f64)),
                ]),
                Some(tid) => {
                    if tid >= entry.state.len() {
                        return error_with(
                            "bad_tuple",
                            format!(
                                "tuple {tid} out of range (relation has {} tuples)",
                                entry.state.len()
                            ),
                            vec![("tuples", Json::Num(entry.state.len() as f64))],
                        );
                    }
                    let violations = entry
                        .state
                        .violations(tid.into())
                        .into_iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("rule".to_string(), Json::str(v.rule)),
                                (
                                    "kind".to_string(),
                                    Json::str(match v.kind {
                                        uniclean_core::ViolationKind::ConstantCfd => "constant_cfd",
                                        uniclean_core::ViolationKind::VariableCfd => "variable_cfd",
                                        uniclean_core::ViolationKind::Md => "md",
                                    }),
                                ),
                            ])
                        })
                        .collect::<Vec<_>>();
                    ok(vec![
                        ("relation", Json::str(&relation)),
                        ("tuple", Json::Num(tid as f64)),
                        ("accepted", Json::Bool(violations.is_empty())),
                        ("violations", Json::Arr(violations)),
                    ])
                }
            }
        }
        Request::Dump { relation } => {
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let entry = tenant.entry.read().unwrap();
            ok(vec![
                ("relation", Json::str(&relation)),
                ("tuples", Json::Num(entry.state.len() as f64)),
                ("cost", Json::Num(entry.state.cost())),
                ("rows", relation_to_json(entry.state.repaired())),
            ])
        }
        Request::Stats { relation } => stats_response(shared, relation.as_deref()),
        Request::Close { relation } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error("shutting_down", "daemon is shutting down");
            }
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let registry = shared.registry.clone();
            submit(shared, tenant.shard, |reply| Job::Close {
                registry,
                name: relation,
                reply,
            })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `run` can proceed to drain.
            let _ = TcpStream::connect(shared.local);
            ok(vec![("shutting_down", Json::Bool(true))])
        }
    }
}

/// The wire selector for a phase prefix (inverse of `open`'s parsing).
fn phase_wire_name(phase: uniclean_core::Phase) -> &'static str {
    match phase {
        uniclean_core::Phase::CRepair => "c",
        uniclean_core::Phase::ERepair => "ce",
        uniclean_core::Phase::HRepair => "full",
    }
}

/// Submit a job to a shard queue; `busy` if the queue is full, waits for
/// the worker's reply otherwise.
fn submit(shared: &Arc<Shared>, shard: usize, make: impl FnOnce(SyncSender<Json>) -> Job) -> Json {
    let (reply_tx, reply_rx) = sync_channel::<Json>(1);
    {
        let guard = shared.senders.read().unwrap();
        let Some(senders) = guard.as_ref() else {
            return error("shutting_down", "daemon is shutting down");
        };
        let stats = &shared.shard_stats[shard];
        // Count the submission before try_send so a concurrent worker
        // completing a job can't drive the counter below zero.
        let depth = stats.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match senders[shard].try_send(make(reply_tx)) {
            Ok(()) => stats.record_enqueue(depth),
            Err(TrySendError::Full(_)) => {
                stats.depth.fetch_sub(1, Ordering::Relaxed);
                stats.record_busy();
                return error_with(
                    "busy",
                    format!("shard {shard} queue is full"),
                    vec![
                        ("shard", Json::Num(shard as f64)),
                        ("queue_depth", Json::Num((depth - 1) as f64)),
                        ("queue_bound", Json::Num(shared.queue_bound as f64)),
                    ],
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                stats.depth.fetch_sub(1, Ordering::Relaxed);
                return error("shutting_down", "daemon is shutting down");
            }
        }
    }
    // Sender guard dropped: shutdown can proceed while we wait.
    match reply_rx.recv() {
        Ok(resp) => resp,
        Err(_) => error("internal", "shard worker exited before replying"),
    }
}

/// The `stats` verb: shard queue counters plus per-relation serving
/// stats, optionally narrowed to one relation.
fn stats_response(shared: &Arc<Shared>, relation: Option<&str>) -> Json {
    let tenants = match relation {
        None => shared.registry.snapshot(),
        Some(name) => match shared.registry.get(name) {
            Ok(t) => vec![t],
            Err(resp) => return resp,
        },
    };
    let relations = tenants.iter().map(relation_stats).collect::<Vec<_>>();
    let shards = shared
        .shard_stats
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_json(i, shared.queue_bound))
        .collect::<Vec<_>>();
    ok(vec![
        ("shards", Json::Arr(shards)),
        ("relations", Json::Arr(relations)),
    ])
}

fn relation_stats(tenant: &Arc<Tenant>) -> Json {
    // `stats` must stay online: a tenant mid-ingest holds its entry lock
    // for the whole `clean_delta`, so don't wait on it — report the
    // relation as busy and let the shard counters carry the liveness.
    let Ok(entry) = tenant.entry.try_read() else {
        return Json::Obj(vec![
            ("relation".to_string(), Json::str(&tenant.name)),
            ("shard".to_string(), Json::Num(tenant.shard as f64)),
            ("busy".to_string(), Json::Bool(true)),
        ]);
    };
    let phase_seconds = entry
        .stats
        .phase_seconds
        .iter()
        .map(|&s| Json::Num(s))
        .collect();
    Json::Obj(vec![
        ("relation".to_string(), Json::str(&tenant.name)),
        ("shard".to_string(), Json::Num(tenant.shard as f64)),
        ("tuples".to_string(), Json::Num(entry.state.len() as f64)),
        (
            "consistent".to_string(),
            Json::Bool(entry.state.consistent()),
        ),
        ("deltas".to_string(), Json::Num(entry.state.deltas() as f64)),
        (
            "escalations".to_string(),
            Json::Num(entry.state.escalations() as f64),
        ),
        ("batches".to_string(), Json::Num(entry.stats.batches as f64)),
        (
            "tuples_ingested".to_string(),
            Json::Num(entry.stats.tuples_ingested as f64),
        ),
        ("fixes".to_string(), Json::Num(entry.stats.fixes as f64)),
        ("cost".to_string(), Json::Num(entry.state.cost())),
        ("phase_seconds".to_string(), Json::Arr(phase_seconds)),
    ])
}
