//! The daemon: TCP accept loop, connection threads, request dispatch,
//! recovery at startup, and graceful shutdown.
//!
//! Connection threads parse request lines and answer reads (`check`,
//! `dump`, `stats`, `ping`) directly under tenant read locks — online, no
//! phase runs and no queueing. Mutations (`ingest`, `close`) are decoded
//! on the connection thread, then submitted to the owning shard's bounded
//! queue; a full queue answers `busy` immediately with the observed
//! depth. `shutdown` flips the accept flag, wakes the listener, and the
//! run loop drops the shard senders so every worker drains its queue and
//! exits before the process returns.
//!
//! With `data_dir` set the daemon is durable: [`Daemon::run`] first
//! recovers every tenant from disk ([`crate::recovery`]), and every
//! acknowledged `open`/`ingest` is WAL-logged (and fsync'd, unless
//! `--no-fsync`) before its ack is written to the socket.
//!
//! Hostile or broken clients are contained: request lines are read with
//! a hard byte bound (no unbounded buffering), sockets carry read and
//! write timeouts, a mid-dispatch panic answers a structured
//! `internal_panic` error instead of killing the connection thread, and
//! a panicking ingest poisons only its tenant (see [`crate::shard`]).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use uniclean_model::json::{batch_from_json, relation_to_json};
use uniclean_model::Json;

use crate::protocol::{
    error, error_with, json_error, ok, parse_request, Request, MIN_PROTO_VERSION, PROTO_VERSION,
};
use crate::recovery::{recover_root, RecoveryReport};
use crate::registry::{DurabilityCfg, Registry, Tenant};
use crate::replication::{self, ReplicaInfo, StandbyStatus};
use crate::shard::{spawn_workers, Job};
use crate::stats::ShardStats;

/// How long a blocked response write may stall before the connection is
/// dropped — a client that stops reading can't pin a connection thread
/// (and the response buffers behind it) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// How to bind and size a [`Daemon`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7401`. Port 0 asks the OS for an
    /// ephemeral port (read it back via [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker-pool size; relations map to workers by
    /// [`crate::shard_for`].
    pub shards: usize,
    /// Per-shard ingest queue bound; a full queue answers `busy`.
    pub queue_bound: usize,
    /// Root data directory for durability: WALs, snapshots, recovery.
    /// `None` serves purely in memory (the pre-durability behavior).
    pub data_dir: Option<PathBuf>,
    /// Snapshot + compact a tenant's WAL every this many logged batches
    /// (0 disables compaction).
    pub snapshot_every: u64,
    /// fsync WAL appends before acks and snapshot files before renames.
    /// Turning this off (`--no-fsync`) trades crash durability for
    /// throughput: an OS crash can lose acknowledged batches, a plain
    /// process crash cannot.
    pub fsync: bool,
    /// Longest request line accepted, in bytes; beyond it the client gets
    /// a structured `line_too_long` error and the connection closes
    /// (framing is unrecoverable mid-line).
    pub max_line_bytes: usize,
    /// Start as a standby replicating from this primary address
    /// ([`crate::replication`]). Mutating verbs answer `standby` until a
    /// `promote` flips the node to serving.
    pub replicate_from: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:7401".to_string(),
            shards: 4,
            queue_bound: 64,
            data_dir: None,
            snapshot_every: 64,
            fsync: true,
            max_line_bytes: 64 << 20,
            replicate_from: None,
        }
    }
}

/// State shared by the accept loop, connection threads, shard workers
/// and (on a standby) the replication puller.
pub(crate) struct Shared {
    pub(crate) registry: Arc<Registry>,
    /// `None` once shutdown begins: dropping the senders is what lets the
    /// workers drain and exit.
    pub(crate) senders: RwLock<Option<Vec<SyncSender<Job>>>>,
    pub(crate) shard_stats: Vec<Arc<ShardStats>>,
    pub(crate) queue_bound: usize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) local: SocketAddr,
    pub(crate) started: Instant,
    /// What startup recovery did (durable daemons only).
    pub(crate) recovery: Option<RecoveryReport>,
    /// Durability knobs; `None` for a memory-only daemon.
    pub(crate) durable: Option<Arc<DurabilityCfg>>,
    pub(crate) max_line_bytes: usize,
    /// `true` while this node is a tailing standby; `promote` clears it.
    pub(crate) standby: AtomicBool,
    /// The primary a standby replicates from (named in `standby` errors).
    pub(crate) primary_addr: Option<String>,
    /// Primary side: per-relation replica feedback from `repl_ack`.
    pub(crate) replicas: Mutex<HashMap<String, ReplicaInfo>>,
    /// Asks the puller to stop (promotion or shutdown).
    pub(crate) repl_stop: AtomicBool,
    /// The puller thread, joined by `promote`/shutdown.
    pub(crate) repl_handle: Mutex<Option<JoinHandle<()>>>,
    /// Standby-side replication counters for `ping`.
    pub(crate) repl_status: Mutex<StandbyStatus>,
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    config: DaemonConfig,
    local: SocketAddr,
}

impl Daemon {
    /// Bind the listen socket (so callers learn the ephemeral port before
    /// the serve loop starts).
    pub fn bind(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local = listener.local_addr()?;
        Ok(Daemon {
            listener,
            config,
            local,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Serve until a client sends `shutdown`. Recovers durable tenants
    /// first (when `data_dir` is set), then accepts; drains every shard
    /// queue and joins every thread before returning.
    pub fn run(self) -> std::io::Result<()> {
        crate::faults::init_from_env();
        let shards = self.config.shards.max(1);
        let registry = Arc::new(Registry::new(shards));
        let durable = match &self.config.data_dir {
            None => None,
            Some(root) => {
                std::fs::create_dir_all(root)?;
                Some(Arc::new(DurabilityCfg {
                    root: root.clone(),
                    snapshot_every: self.config.snapshot_every,
                    fsync: self.config.fsync,
                }))
            }
        };
        let recovery = match &durable {
            None => None,
            Some(cfg) => {
                let (tenants, report) = recover_root(cfg, shards)?;
                registry.adopt(tenants);
                Some(report)
            }
        };
        let (senders, shard_stats, workers) =
            spawn_workers(shards, self.config.queue_bound.max(1), durable.clone());
        let shared = Arc::new(Shared {
            registry,
            senders: RwLock::new(Some(senders)),
            shard_stats,
            queue_bound: self.config.queue_bound.max(1),
            shutdown: AtomicBool::new(false),
            local: self.local,
            started: Instant::now(),
            recovery,
            durable,
            max_line_bytes: self.config.max_line_bytes.max(1024),
            standby: AtomicBool::new(self.config.replicate_from.is_some()),
            primary_addr: self.config.replicate_from.clone(),
            replicas: Mutex::new(HashMap::new()),
            repl_stop: AtomicBool::new(false),
            repl_handle: Mutex::new(None),
            repl_status: Mutex::new(StandbyStatus::default()),
        });
        if let Some(primary) = self.config.replicate_from.clone() {
            let puller_shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name("uniclean-repl".to_string())
                .spawn(move || replication::run_puller(puller_shared, primary))?;
            *shared
                .repl_handle
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(handle);
        }
        let mut connections = Vec::new();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            // A shutdown request self-connects to unblock this accept.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = shared.clone();
            connections.push(
                std::thread::Builder::new()
                    .name("uniclean-conn".to_string())
                    .spawn(move || serve_connection(stream, shared))?,
            );
        }
        for c in connections {
            let _ = c.join();
        }
        // A still-running puller submits to the shard queues — stop and
        // join it before the queues close.
        replication::stop_puller(&shared);
        // Dropping the senders closes every queue; workers finish what is
        // already enqueued, then exit.
        *shared.senders.write().unwrap() = None;
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// What one bounded line read produced.
enum LineRead {
    /// A complete line sits in the buffer (without its newline).
    Line,
    /// Clean end of stream with nothing buffered.
    Eof,
    /// The line exceeded the byte bound; the offending bytes up to and
    /// including the newline-or-chunk-end were discarded.
    TooLong,
    /// Socket error or shutdown — drop the connection.
    Disconnected,
}

/// Read one `\n`-terminated line into `buf` with a hard byte bound —
/// unlike `read_line`, a client streaming an endless line can never
/// buffer more than `max` bytes (plus one `BufReader` chunk) here.
/// Timeouts are retried so a line split across them still assembles;
/// shutdown during a timeout drops the connection.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> LineRead {
    loop {
        enum Step {
            Consume(usize),
            Line(usize),
            TooLong(usize),
            Eof,
            Retry,
            Dead,
        }
        let step = match reader.fill_buf() {
            Ok([]) => Step::Eof,
            Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if buf.len() + nl > max {
                        Step::TooLong(nl + 1)
                    } else {
                        buf.extend_from_slice(&chunk[..nl]);
                        Step::Line(nl + 1)
                    }
                }
                None => {
                    let n = chunk.len();
                    if buf.len() + n > max {
                        Step::TooLong(n)
                    } else {
                        buf.extend_from_slice(chunk);
                        Step::Consume(n)
                    }
                }
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    Step::Dead
                } else {
                    Step::Retry
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Step::Retry,
            Err(_) => Step::Dead,
        };
        match step {
            Step::Consume(n) => reader.consume(n),
            Step::Line(n) => {
                reader.consume(n);
                return LineRead::Line;
            }
            Step::TooLong(n) => {
                reader.consume(n);
                return LineRead::TooLong;
            }
            // EOF with a partial line still buffered: hand it up once
            // (the next read sees a bare EOF).
            Step::Eof => {
                return if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                }
            }
            Step::Retry => {}
            Step::Dead => return LineRead::Disconnected,
        }
    }
}

/// Per-connection loop: read request lines, write response lines.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    // A finite read timeout lets the loop notice shutdown even while a
    // client sits idle holding the connection open; the write timeout
    // bounds how long a non-reading client can pin this thread.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    fn send(writer: &mut TcpStream, bytes: &[u8]) -> bool {
        writer.write_all(bytes).is_ok() && writer.flush().is_ok()
    }
    let write_response = |writer: &mut TcpStream, response: Json| -> bool {
        let mut out = response.render();
        out.push('\n');
        send(writer, out.as_bytes())
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        match read_line_bounded(
            &mut reader,
            &mut line,
            shared.max_line_bytes,
            &shared.shutdown,
        ) {
            LineRead::Eof | LineRead::Disconnected => return,
            LineRead::TooLong => {
                // Framing is lost mid-line; answer, then drop the
                // connection rather than guess where the next line starts.
                let _ = write_response(
                    &mut writer,
                    error_with(
                        "line_too_long",
                        format!(
                            "request line exceeds the {}-byte bound",
                            shared.max_line_bytes
                        ),
                        vec![("max_line_bytes", Json::Num(shared.max_line_bytes as f64))],
                    ),
                );
                return;
            }
            LineRead::Line => {}
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            if !write_response(
                &mut writer,
                error("malformed", "request line is not valid UTF-8"),
            ) {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        // A dispatch panic (a bug, not a protocol error) answers a
        // structured error on this connection instead of killing the
        // thread; tenant-level damage is handled by poisoning.
        let outcome = match catch_unwind(AssertUnwindSafe(|| dispatch(text, &shared))) {
            Ok(r) => r,
            Err(_) => Outcome::Reply(error(
                "internal_panic",
                "request handling panicked; the daemon is still serving",
            )),
        };
        match outcome {
            Outcome::Reply(response) => {
                if !write_response(&mut writer, response) {
                    return;
                }
            }
            // A fault-injected mid-stream disconnect: flush whatever
            // partial bytes the failpoint decided on, then drop the
            // connection without a trailing newline.
            Outcome::CloseAfter(partial) => {
                let _ = send(&mut writer, partial.as_bytes());
                return;
            }
        }
    }
}

/// What a dispatched request does to the connection: the normal case is
/// one JSON reply line; fault injection can instead emit a byte prefix
/// and hang up mid-frame (exercising replica-side torn-reply handling).
pub(crate) enum Outcome {
    Reply(Json),
    CloseAfter(String),
}

/// One request line → one connection outcome. Replication fetches go
/// through their own path because their failpoints can sever the
/// connection; everything else replies exactly one line.
fn dispatch(line: &str, shared: &Arc<Shared>) -> Outcome {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(resp) => return Outcome::Reply(resp),
    };
    if let Request::ReplFetch {
        relation,
        after,
        max_frames,
    } = request
    {
        // Refusing fetches during shutdown makes the tailing standby
        // back off, which gives this connection the quiet window the
        // read loop needs to notice the flag and exit.
        if shared.shutdown.load(Ordering::SeqCst) {
            return Outcome::Reply(error("shutting_down", "daemon is shutting down"));
        }
        return replication::handle_fetch(shared, &relation, after, max_frames);
    }
    Outcome::Reply(dispatch_request(request, line, shared))
}

/// Every verb except `repl_fetch`: one request → one reply object.
fn dispatch_request(request: Request, line: &str, shared: &Arc<Shared>) -> Json {
    // Like mutations, the replication stream (and handshakes/promotion)
    // stops at shutdown — a standby that kept polling would keep this
    // node's connection threads busy forever.
    if shared.shutdown.load(Ordering::SeqCst)
        && matches!(
            request,
            Request::Hello { .. } | Request::Promote | Request::ReplList | Request::ReplAck { .. }
        )
    {
        return error("shutting_down", "daemon is shutting down");
    }
    // A standby is read-only: queries and replication verbs work, but
    // mutations must go to the primary (the puller is the only writer).
    if shared.standby.load(Ordering::SeqCst)
        && matches!(
            request,
            Request::Open(_) | Request::Ingest { .. } | Request::Close { .. }
        )
    {
        let mut extra = Vec::new();
        if let Some(primary) = &shared.primary_addr {
            extra.push(("primary", Json::str(primary)));
        }
        return error_with(
            "standby",
            "this node is a read-only standby; write to the primary",
            extra,
        );
    }
    match request {
        Request::Open(spec) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error("shutting_down", "daemon is shutting down");
            }
            // Durable opens store the request document itself as the WAL
            // open record; it parsed once already, so re-parsing is
            // infallible.
            let doc;
            let open_doc = match &shared.durable {
                None => None,
                Some(cfg) => {
                    doc = match Json::parse(line) {
                        Ok(d) => d,
                        Err(_) => return error("internal", "open request failed to re-parse"),
                    };
                    Some((&doc, cfg.as_ref()))
                }
            };
            match shared.registry.open(&spec, open_doc) {
                Ok(tenant) => ok(vec![
                    ("relation", Json::str(&tenant.name)),
                    ("shard", Json::Num(tenant.shard as f64)),
                    ("arity", Json::Num(spec.attrs.len() as f64)),
                    ("phase", Json::str(phase_wire_name(spec.phase))),
                    ("durable", Json::Bool(shared.durable.is_some())),
                ]),
                Err(resp) => resp,
            }
        }
        Request::Ingest {
            relation,
            rows,
            seq,
        } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error("shutting_down", "daemon is shutting down");
            }
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            if tenant.is_poisoned() {
                return tenant.poisoned_error();
            }
            let arity = tenant.cleaner.rules().schema().arity();
            let rows = match batch_from_json(&rows, arity, tenant.default_cf) {
                Ok(rows) => rows,
                Err(e) => return json_error("bad_batch", &e),
            };
            submit(shared, tenant.shard, |reply| Job::Ingest {
                tenant: tenant.clone(),
                rows,
                client_seq: seq,
                repl_seq: None,
                reply,
            })
        }
        Request::Check { relation, tuple } => {
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            if tenant.is_poisoned() {
                return tenant.poisoned_error();
            }
            let entry = tenant.entry_read();
            match tuple {
                None => {
                    let mut fields = vec![
                        ("relation", Json::str(&relation)),
                        ("consistent", Json::Bool(entry.state.consistent())),
                        ("tuples", Json::Num(entry.state.len() as f64)),
                        ("deltas", Json::Num(entry.state.deltas() as f64)),
                        ("escalations", Json::Num(entry.state.escalations() as f64)),
                    ];
                    // Clients seed their exactly-once sequence from this
                    // after a reconnect.
                    if let Some(cs) = entry.last_client_seq {
                        fields.push(("last_client_seq", Json::Num(cs as f64)));
                    }
                    ok(fields)
                }
                Some(tid) => {
                    if tid >= entry.state.len() {
                        return error_with(
                            "bad_tuple",
                            format!(
                                "tuple {tid} out of range (relation has {} tuples)",
                                entry.state.len()
                            ),
                            vec![("tuples", Json::Num(entry.state.len() as f64))],
                        );
                    }
                    let violations = entry
                        .state
                        .violations(tid.into())
                        .into_iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("rule".to_string(), Json::str(v.rule)),
                                (
                                    "kind".to_string(),
                                    Json::str(match v.kind {
                                        uniclean_core::ViolationKind::ConstantCfd => "constant_cfd",
                                        uniclean_core::ViolationKind::VariableCfd => "variable_cfd",
                                        uniclean_core::ViolationKind::Md => "md",
                                    }),
                                ),
                            ])
                        })
                        .collect::<Vec<_>>();
                    ok(vec![
                        ("relation", Json::str(&relation)),
                        ("tuple", Json::Num(tid as f64)),
                        ("accepted", Json::Bool(violations.is_empty())),
                        ("violations", Json::Arr(violations)),
                    ])
                }
            }
        }
        Request::Dump { relation } => {
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            if tenant.is_poisoned() {
                return tenant.poisoned_error();
            }
            let entry = tenant.entry_read();
            ok(vec![
                ("relation", Json::str(&relation)),
                ("tuples", Json::Num(entry.state.len() as f64)),
                ("cost", Json::Num(entry.state.cost())),
                ("rows", relation_to_json(entry.state.repaired())),
            ])
        }
        Request::Stats { relation } => stats_response(shared, relation.as_deref()),
        Request::Ping => {
            let recovery = match &shared.recovery {
                Some(r) => r.to_json(),
                None => Json::Null,
            };
            let standby = shared.standby.load(Ordering::SeqCst);
            // Replication health: a standby reports its puller's view of
            // the stream; a primary reports how many replicas are acking.
            let replication = if standby {
                shared
                    .repl_status
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .to_json(shared.primary_addr.as_deref())
            } else {
                let replicas = shared
                    .replicas
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len();
                Json::Obj(vec![
                    ("role".to_string(), Json::str("primary")),
                    ("tenants_acked".to_string(), Json::Num(replicas as f64)),
                ])
            };
            ok(vec![
                (
                    "uptime_seconds",
                    Json::Num(shared.started.elapsed().as_secs_f64()),
                ),
                (
                    "role",
                    Json::str(if standby { "standby" } else { "primary" }),
                ),
                ("proto_version", Json::Num(PROTO_VERSION as f64)),
                ("relations", Json::Num(shared.registry.count() as f64)),
                ("shards", Json::Num(shared.shard_stats.len() as f64)),
                ("durable", Json::Bool(shared.durable.is_some())),
                (
                    "shutting_down",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
                (
                    "kernels",
                    Json::str(uniclean_core::similarity::simd::dispatch_info().to_string()),
                ),
                ("recovery", recovery),
                ("replication", replication),
            ])
        }
        Request::Hello { proto_version } => {
            // Absent version means a pre-versioning (v1) client; anything
            // the client sends that we don't know is simply ignored, and
            // a client newer than us still speaks our older dialect.
            let theirs = proto_version.unwrap_or(MIN_PROTO_VERSION);
            if theirs < MIN_PROTO_VERSION {
                return error_with(
                    "proto_too_old",
                    format!("client speaks protocol {theirs}; this daemon needs at least {MIN_PROTO_VERSION}"),
                    vec![("min_proto", Json::Num(MIN_PROTO_VERSION as f64))],
                );
            }
            ok(vec![
                ("proto_version", Json::Num(PROTO_VERSION as f64)),
                ("min_proto", Json::Num(MIN_PROTO_VERSION as f64)),
                (
                    "role",
                    Json::str(if shared.standby.load(Ordering::SeqCst) {
                        "standby"
                    } else {
                        "primary"
                    }),
                ),
            ])
        }
        Request::Promote => replication::promote(shared),
        Request::ReplList => replication::handle_list(shared),
        Request::ReplFetch { .. } => unreachable!("repl_fetch is intercepted in dispatch"),
        Request::ReplAck { relation, seq } => replication::handle_ack(shared, &relation, seq),
        Request::Close { relation } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return error("shutting_down", "daemon is shutting down");
            }
            // Poisoned tenants may still close — that's the cleanup path.
            let tenant = match shared.registry.get(&relation) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let registry = shared.registry.clone();
            submit(shared, tenant.shard, |reply| Job::Close {
                registry,
                name: relation,
                reply,
            })
        }
        Request::Shutdown => {
            // swap, not store: exactly one caller wins; the rest get a
            // structured error instead of a duplicate drain.
            if shared.shutdown.swap(true, Ordering::SeqCst) {
                return error("shutting_down", "daemon is already shutting down");
            }
            // Ask the puller to stop now so it isn't mid-backoff when
            // `run` joins it (the join itself happens in `run`).
            shared.repl_stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `run` can proceed to drain.
            let _ = TcpStream::connect(shared.local);
            ok(vec![("shutting_down", Json::Bool(true))])
        }
    }
}

/// The wire selector for a phase prefix (inverse of `open`'s parsing).
fn phase_wire_name(phase: uniclean_core::Phase) -> &'static str {
    match phase {
        uniclean_core::Phase::CRepair => "c",
        uniclean_core::Phase::ERepair => "ce",
        uniclean_core::Phase::HRepair => "full",
    }
}

/// Submit a job to a shard queue; `busy` if the queue is full, waits for
/// the worker's reply otherwise.
pub(crate) fn submit(
    shared: &Arc<Shared>,
    shard: usize,
    make: impl FnOnce(SyncSender<Json>) -> Job,
) -> Json {
    let (reply_tx, reply_rx) = sync_channel::<Json>(1);
    {
        let guard = shared.senders.read().unwrap();
        let Some(senders) = guard.as_ref() else {
            return error("shutting_down", "daemon is shutting down");
        };
        let stats = &shared.shard_stats[shard];
        // Count the submission before try_send so a concurrent worker
        // completing a job can't drive the counter below zero.
        let depth = stats.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match senders[shard].try_send(make(reply_tx)) {
            Ok(()) => stats.record_enqueue(depth),
            Err(TrySendError::Full(_)) => {
                stats.depth.fetch_sub(1, Ordering::Relaxed);
                stats.record_busy();
                return error_with(
                    "busy",
                    format!("shard {shard} queue is full"),
                    vec![
                        ("shard", Json::Num(shard as f64)),
                        ("queue_depth", Json::Num((depth - 1) as f64)),
                        ("queue_bound", Json::Num(shared.queue_bound as f64)),
                    ],
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                stats.depth.fetch_sub(1, Ordering::Relaxed);
                return error("shutting_down", "daemon is shutting down");
            }
        }
    }
    // Sender guard dropped: shutdown can proceed while we wait.
    match reply_rx.recv() {
        Ok(resp) => resp,
        Err(_) => error("internal", "shard worker exited before replying"),
    }
}

/// The `stats` verb: shard queue counters plus per-relation serving
/// stats, optionally narrowed to one relation.
fn stats_response(shared: &Arc<Shared>, relation: Option<&str>) -> Json {
    let tenants = match relation {
        None => shared.registry.snapshot(),
        Some(name) => match shared.registry.get(name) {
            Ok(t) => vec![t],
            Err(resp) => return resp,
        },
    };
    let relations = tenants
        .iter()
        .map(|t| relation_stats(shared, t))
        .collect::<Vec<_>>();
    let shards = shared
        .shard_stats
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_json(i, shared.queue_bound))
        .collect::<Vec<_>>();
    ok(vec![
        ("shards", Json::Arr(shards)),
        ("relations", Json::Arr(relations)),
    ])
}

fn relation_stats(shared: &Arc<Shared>, tenant: &Arc<Tenant>) -> Json {
    // A poisoned tenant reports just its poisoning — its state is the
    // pre-failure remnant, not something to publish numbers from.
    if tenant.is_poisoned() {
        return Json::Obj(vec![
            ("relation".to_string(), Json::str(&tenant.name)),
            ("shard".to_string(), Json::Num(tenant.shard as f64)),
            ("poisoned".to_string(), Json::Bool(true)),
        ]);
    }
    // `stats` must stay online: a tenant mid-ingest holds its entry lock
    // for the whole `clean_delta`, so don't wait on it — report the
    // relation as busy and let the shard counters carry the liveness.
    let Ok(entry) = tenant.entry.try_read() else {
        return Json::Obj(vec![
            ("relation".to_string(), Json::str(&tenant.name)),
            ("shard".to_string(), Json::Num(tenant.shard as f64)),
            ("busy".to_string(), Json::Bool(true)),
        ]);
    };
    let phase_seconds = entry
        .stats
        .phase_seconds
        .iter()
        .map(|&s| Json::Num(s))
        .collect();
    let last_client_seq = entry.last_client_seq;
    let repl_seq = entry.repl_seq;
    let mut fields = vec![
        ("relation".to_string(), Json::str(&tenant.name)),
        ("shard".to_string(), Json::Num(tenant.shard as f64)),
        ("tuples".to_string(), Json::Num(entry.state.len() as f64)),
        (
            "consistent".to_string(),
            Json::Bool(entry.state.consistent()),
        ),
        ("deltas".to_string(), Json::Num(entry.state.deltas() as f64)),
        (
            "escalations".to_string(),
            Json::Num(entry.state.escalations() as f64),
        ),
        ("batches".to_string(), Json::Num(entry.stats.batches as f64)),
        (
            "tuples_ingested".to_string(),
            Json::Num(entry.stats.tuples_ingested as f64),
        ),
        ("fixes".to_string(), Json::Num(entry.stats.fixes as f64)),
        ("cost".to_string(), Json::Num(entry.state.cost())),
        ("phase_seconds".to_string(), Json::Arr(phase_seconds)),
    ];
    drop(entry);
    if let Some(cs) = last_client_seq {
        fields.push(("last_client_seq".to_string(), Json::Num(cs as f64)));
    }
    if let Some(rs) = repl_seq {
        fields.push(("repl_seq".to_string(), Json::Num(rs as f64)));
    }
    // Per-tenant replica health, present only once a replica has acked.
    if let Some(repl) = replication::relation_replication_json(shared, tenant) {
        fields.push(("replication".to_string(), repl));
    }
    Json::Obj(fields)
}
