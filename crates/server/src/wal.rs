//! The per-tenant write-ahead log.
//!
//! One `wal.log` per tenant directory, holding
//! [`uniclean_model::frame`]-encoded JSON records:
//!
//! * frame 0 — `{"kind":"open","spec":{…}}`: the original `open` request
//!   document, so recovery can rebuild the session (rules, master,
//!   config) exactly;
//! * frames 1.. — `{"kind":"batch","seq":N,"rows":[…]}`: one record per
//!   **accepted** ingest batch, rows in the ingest wire shape with every
//!   cell as an explicit `[value, cf]` pair
//!   ([`uniclean_model::json::batch_to_ingest_json`]), so replay is
//!   byte-exact regardless of the tenant's `default_cf`.
//!
//! The ordering guarantee the daemon gives: a batch record is written
//! and fsync'd **before** the wire ack leaves the process. An
//! acknowledged batch therefore survives any crash; a batch that died
//! mid-append is at worst a torn tail, which recovery truncates (it was
//! never acknowledged, so discarding it is correct). §5.2
//! order-independence makes replaying the surviving records through
//! `clean_delta` reconstruct the exact pre-crash state.
//!
//! Sequence numbers tie the WAL to snapshots: a snapshot covering
//! sequence `S` lets recovery skip every record with `seq <= S`, so
//! crash points between "snapshot written" and "WAL rewritten" stay
//! consistent (records are skipped, not double-applied).

use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::path::Path;

use uniclean_model::frame::{encode_frame, FrameScan};
use uniclean_model::Json;

use crate::faults;

/// The WAL file name inside a tenant directory.
pub const WAL_FILE: &str = "wal.log";
/// Scratch name a compaction rewrite builds before renaming over
/// [`WAL_FILE`]. A leftover one is pre-rename garbage; recovery deletes
/// it.
pub const WAL_REWRITE_TMP: &str = "wal.log.new";

/// An open, append-only WAL handle.
pub struct WalWriter {
    file: File,
    fsync: bool,
}

impl WalWriter {
    /// Create (truncate) a WAL at `path`.
    pub fn create(path: &Path, fsync: bool) -> std::io::Result<WalWriter> {
        let file = File::create(path)?;
        Ok(WalWriter { file, fsync })
    }

    /// Open an existing WAL for appending.
    pub fn open_append(path: &Path, fsync: bool) -> std::io::Result<WalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter { file, fsync })
    }

    /// Append one record and (unless `--no-fsync`) flush it to stable
    /// storage. On `Err` the frame may be half-written — the caller must
    /// treat the log as append-closed (the daemon poisons the tenant);
    /// recovery truncates the torn frame.
    pub fn append(&mut self, record: &Json) -> std::io::Result<()> {
        let payload = record.render().into_bytes();
        let mut buf = Vec::with_capacity(payload.len() + 16);
        encode_frame(&payload, &mut buf);
        faults::hit("wal.pre_frame")?;
        // Two writes so the `wal.mid_frame` failpoint can crash with the
        // frame provably half-durable — the torn-tail case.
        let half = buf.len() / 2;
        self.file.write_all(&buf[..half])?;
        faults::hit("wal.mid_frame")?;
        self.file.write_all(&buf[half..])?;
        faults::hit("wal.pre_fsync")?;
        if self.fsync {
            self.file.sync_data()?;
        }
        faults::hit("wal.post_fsync")?;
        Ok(())
    }

    /// Flush file metadata too (used after a rewrite's rename).
    pub fn sync_all(&self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// The `open` record for frame 0. `spec` is the original `open` request
/// document, stored verbatim.
pub fn open_record(spec: &Json) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::str("open")),
        ("spec".to_string(), spec.clone()),
    ])
}

/// A `batch` record: `seq` strictly increasing per tenant, `rows` in the
/// ingest wire shape with explicit confidences. Two optional markers ride
/// along (absent keys, not nulls, so pre-replication logs parse
/// unchanged): `client_seq` is the client-supplied exactly-once sequence
/// number the dedup check compares retries against, and `repl_seq` is the
/// primary's WAL sequence this batch mirrors when the writer is a tailing
/// standby — recovery restores both so dedup and replication resume
/// exactly where they stopped.
pub fn batch_record(seq: u64, rows: Json, client_seq: Option<u64>, repl_seq: Option<u64>) -> Json {
    let mut pairs = vec![
        ("kind".to_string(), Json::str("batch")),
        ("seq".to_string(), Json::Num(seq as f64)),
    ];
    if let Some(cs) = client_seq {
        pairs.push(("client_seq".to_string(), Json::Num(cs as f64)));
    }
    if let Some(rs) = repl_seq {
        pairs.push(("repl_seq".to_string(), Json::Num(rs as f64)));
    }
    pairs.push(("rows".to_string(), rows));
    Json::Obj(pairs)
}

/// One recovered `batch` record.
pub struct WalBatch {
    /// This log's sequence number (strictly increasing).
    pub seq: u64,
    /// Rows in the ingest wire shape.
    pub rows: Json,
    /// Client-supplied exactly-once sequence number, if the batch
    /// carried one.
    pub client_seq: Option<u64>,
    /// Primary sequence mirrored by a standby's log, if any.
    pub repl_seq: Option<u64>,
}

/// What a scan of a WAL file recovered.
pub struct WalContents {
    /// The `open` spec document from frame 0, if present and valid.
    pub open: Option<Json>,
    /// Every valid batch record, in log order.
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid prefix — what the file should be
    /// truncated to if `torn`.
    pub valid_len: u64,
    /// Whether anything invalid (torn frame, bad record shape, seq
    /// regression) followed the valid prefix.
    pub torn: bool,
}

/// Read and validate a WAL file. A missing file reads as empty. Frames
/// must checksum, parse as JSON, and follow the record grammar (one
/// leading `open`, then `batch` records with strictly increasing `seq`);
/// the first violation ends the valid prefix — everything after it is
/// torn tail.
pub fn read_wal(path: &Path) -> std::io::Result<WalContents> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut contents = WalContents {
        open: None,
        batches: Vec::new(),
        valid_len: 0,
        torn: false,
    };
    let mut scan = FrameScan::new(&bytes);
    let mut last_seq: Option<u64> = None;
    loop {
        let frame_start = scan.valid_len();
        let Some(payload) = scan.next_frame() else {
            contents.valid_len = scan.valid_len() as u64;
            contents.torn = scan.torn().is_some();
            return Ok(contents);
        };
        let ok = parse_record(payload, &mut contents, &mut last_seq);
        if !ok {
            // Checksummed but ungrammatical: same treatment as a torn
            // frame — the prefix before it is the log.
            contents.valid_len = frame_start as u64;
            contents.torn = true;
            return Ok(contents);
        }
    }
}

/// Apply one frame payload to `contents`; `false` if it breaks the
/// record grammar.
fn parse_record(payload: &[u8], contents: &mut WalContents, last_seq: &mut Option<u64>) -> bool {
    let Ok(text) = std::str::from_utf8(payload) else {
        return false;
    };
    let Ok(doc) = Json::parse(text) else {
        return false;
    };
    match doc.get("kind").and_then(Json::as_str) {
        Some("open") => {
            if contents.open.is_some() {
                return false; // only frame 0 may be an open record
            }
            match doc.get("spec") {
                Some(spec) => {
                    contents.open = Some(spec.clone());
                    true
                }
                None => false,
            }
        }
        Some("batch") => {
            if contents.open.is_none() {
                return false; // batches only after the open record
            }
            let Some(seq) = doc.get("seq").and_then(Json::as_usize) else {
                return false;
            };
            let seq = seq as u64;
            if last_seq.is_some_and(|prev| seq <= prev) {
                return false;
            }
            let Some(rows) = doc.get("rows") else {
                return false;
            };
            let client_seq = doc
                .get("client_seq")
                .and_then(Json::as_usize)
                .map(|v| v as u64);
            let repl_seq = doc
                .get("repl_seq")
                .and_then(Json::as_usize)
                .map(|v| v as u64);
            *last_seq = Some(seq);
            contents.batches.push(WalBatch {
                seq,
                rows: rows.clone(),
                client_seq,
                repl_seq,
            });
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("uniclean-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> Json {
        Json::parse(r#"{"op":"open","relation":"t","attrs":["a"],"rules":""}"#).unwrap()
    }

    fn rows(tag: i64) -> Json {
        Json::Arr(vec![Json::Arr(vec![Json::Arr(vec![
            Json::Num(tag as f64),
            Json::Num(0.5),
        ])])])
    }

    #[test]
    fn append_read_round_trip_and_missing_file() {
        let dir = tmpdir("roundtrip");
        let path = dir.join(WAL_FILE);
        let empty = read_wal(&path).unwrap();
        assert!(empty.open.is_none() && empty.batches.is_empty() && !empty.torn);

        let mut w = WalWriter::create(&path, true).unwrap();
        w.append(&open_record(&spec())).unwrap();
        w.append(&batch_record(1, rows(1), Some(41), None)).unwrap();
        w.append(&batch_record(2, rows(2), None, Some(9))).unwrap();
        drop(w);

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.open.unwrap().render(), spec().render());
        assert_eq!(contents.batches.len(), 2);
        assert_eq!(contents.batches[0].seq, 1);
        assert_eq!(contents.batches[0].client_seq, Some(41));
        assert_eq!(contents.batches[0].repl_seq, None);
        assert_eq!(contents.batches[1].rows.render(), rows(2).render());
        assert_eq!(contents.batches[1].client_seq, None);
        assert_eq!(contents.batches[1].repl_seq, Some(9));
        assert!(!contents.torn);
        assert_eq!(
            contents.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "clean log: every byte is valid prefix"
        );

        // Reopen-append continues the log.
        let mut w = WalWriter::open_append(&path, false).unwrap();
        w.append(&batch_record(3, rows(3), None, None)).unwrap();
        drop(w);
        assert_eq!(read_wal(&path).unwrap().batches.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_grammar_violations_end_the_prefix() {
        let dir = tmpdir("torn");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append(&open_record(&spec())).unwrap();
        w.append(&batch_record(1, rows(1), None, None)).unwrap();
        drop(w);
        let clean_len = std::fs::metadata(&path).unwrap().len();

        // A half-written frame is a torn tail; the prefix survives.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7u8; 9]);
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.valid_len, clean_len);
        assert_eq!(contents.batches.len(), 1);

        // A checksummed frame with a seq regression is just as torn.
        std::fs::write(&path, &bytes[..clean_len as usize]).unwrap();
        let mut w = WalWriter::open_append(&path, false).unwrap();
        w.append(&batch_record(1, rows(9), None, None)).unwrap(); // seq does not advance
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.valid_len, clean_len);
        assert_eq!(contents.batches.len(), 1);
        assert_eq!(contents.batches[0].rows.render(), rows(1).render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
