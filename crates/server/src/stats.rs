//! Serving-side counters: per-shard queue statistics and the
//! [`PhaseObserver`] accumulator behind per-relation phase timings.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use uniclean_core::{PhaseObserver, PhaseStats};
use uniclean_model::Json;

/// Queue-depth histogram buckets: exact depths 0–3, then powers of two.
pub(crate) const BUCKET_LABELS: [&str; 8] = ["0", "1", "2", "3", "4-7", "8-15", "16-31", "32+"];

fn bucket_index(depth: usize) -> usize {
    match depth {
        0..=3 => depth,
        4..=7 => 4,
        8..=15 => 5,
        16..=31 => 6,
        _ => 7,
    }
}

/// Live counters of one shard's ingest queue. `depth` counts jobs
/// submitted but not yet completed (queued plus the one in flight); the
/// histogram records the depth observed at each enqueue.
#[derive(Default)]
pub(crate) struct ShardStats {
    pub(crate) depth: AtomicUsize,
    max_depth: AtomicUsize,
    jobs_done: AtomicU64,
    busy_rejections: AtomicU64,
    hist: [AtomicU64; BUCKET_LABELS.len()],
}

impl ShardStats {
    /// Record a successful enqueue that brought the depth to `depth`.
    pub(crate) fn record_enqueue(&self, depth: usize) {
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        self.hist[bucket_index(depth)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a `busy` rejection (queue full at submit time).
    pub(crate) fn record_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed job (worker side).
    pub(crate) fn record_done(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// The `stats` verb's per-shard object.
    pub(crate) fn to_json(&self, shard: usize, queue_bound: usize) -> Json {
        let hist = BUCKET_LABELS
            .iter()
            .zip(&self.hist)
            .map(|(label, n)| {
                (
                    label.to_string(),
                    Json::Num(n.load(Ordering::Relaxed) as f64),
                )
            })
            .collect();
        Json::Obj(vec![
            ("shard".into(), Json::Num(shard as f64)),
            (
                "queue_depth".into(),
                Json::Num(self.depth.load(Ordering::Relaxed) as f64),
            ),
            ("queue_bound".into(), Json::Num(queue_bound as f64)),
            (
                "max_depth".into(),
                Json::Num(self.max_depth.load(Ordering::Relaxed) as f64),
            ),
            (
                "batches_applied".into(),
                Json::Num(self.jobs_done.load(Ordering::Relaxed) as f64),
            ),
            (
                "busy_rejections".into(),
                Json::Num(self.busy_rejections.load(Ordering::Relaxed) as f64),
            ),
            ("depth_histogram".into(), Json::Obj(hist)),
        ])
    }
}

/// Accumulated per-relation serving statistics (guarded by the tenant's
/// entry lock, written only by the owning shard worker).
#[derive(Default)]
pub(crate) struct RelationStats {
    /// Batches applied through `clean_delta`.
    pub(crate) batches: u64,
    /// Tuples those batches carried.
    pub(crate) tuples_ingested: u64,
    /// Fixes those batches produced.
    pub(crate) fixes: u64,
    /// Cumulative wall-clock seconds per phase, in fixed (c, e, h) order,
    /// streamed from the engine's [`PhaseObserver`] hook.
    pub(crate) phase_seconds: [f64; 3],
}

/// [`PhaseObserver`] summing phase wall-clock into fixed (c, e, h) slots —
/// what the shard worker passes to `clean_delta_observed` so `stats` can
/// report per-relation phase timings.
#[derive(Default)]
pub(crate) struct PhaseAccum {
    pub(crate) seconds: [f64; 3],
}

impl PhaseObserver for PhaseAccum {
    fn on_phase_end(&mut self, stats: &PhaseStats) {
        self.seconds[stats.phase.index()] += stats.seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_depth_axis() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 4);
        assert_eq!(bucket_index(8), 5);
        assert_eq!(bucket_index(31), 6);
        assert_eq!(bucket_index(1000), 7);
    }

    #[test]
    fn shard_stats_report_all_fields() {
        let s = ShardStats::default();
        s.depth.fetch_add(2, Ordering::Relaxed);
        s.record_enqueue(1);
        s.record_enqueue(2);
        s.record_busy();
        let j = s.to_json(3, 64);
        assert_eq!(j.get("shard").and_then(Json::as_usize), Some(3));
        assert_eq!(j.get("queue_depth").and_then(Json::as_usize), Some(2));
        assert_eq!(j.get("max_depth").and_then(Json::as_usize), Some(2));
        assert_eq!(j.get("busy_rejections").and_then(Json::as_usize), Some(1));
        let hist = j.get("depth_histogram").unwrap();
        assert_eq!(hist.get("1").and_then(Json::as_usize), Some(1));
        assert_eq!(hist.get("2").and_then(Json::as_usize), Some(1));
    }
}
