//! Startup recovery: rebuild every tenant from its snapshot + WAL.
//!
//! For each subdirectory of the data root, in name order:
//!
//! 1. delete scratch files a crash may have left (`snapshot.json.tmp`,
//!    `wal.log.new`);
//! 2. read the WAL ([`crate::wal::read_wal`]), noting where its valid
//!    prefix ends;
//! 3. load snapshot candidates ([`crate::snapshot::load_snapshots`]):
//!    current, then `.prev`, then "no snapshot" as the final fallback;
//! 4. rebuild the session from the stored `open` request document, then
//!    for each candidate: replay its `base_rows` through one
//!    `clean_delta`, **cross-check** the result against the stored
//!    repaired relation and cost byte-for-byte, and replay the WAL
//!    records with `seq > snapshot.seq` batch-by-batch (identical batch
//!    boundaries ⇒ identical per-batch counters). First candidate to
//!    survive wins;
//! 5. physically truncate the WAL's torn tail and reopen it for append.
//!
//! §5.2 order-independence is what makes step 4 exact: any grouping of
//! the same acknowledged rows yields bit-identical cells, confidences,
//! marks, acceptance verdicts and cost — so a snapshot's one-shot base
//! replay plus per-batch suffix replay reconstructs the pre-crash state,
//! and the cross-check catches a snapshot that lies. (Engine-internal
//! odometers like `deltas()` are grouping-dependent and deliberately
//! outside the contract.)
//!
//! A directory that defeats every candidate is **quarantined** — renamed
//! to `<dir>.corrupt-<n>` with a stderr warning — rather than deleted or
//! allowed to wedge startup; the remaining tenants still come up.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use uniclean_core::RepairState;
use uniclean_model::json::{batch_from_json, relation_to_json};
use uniclean_model::Json;

use crate::protocol::parse_open;
use crate::registry::{DurabilityCfg, Durable, Tenant};
use crate::snapshot::{load_snapshots, SnapshotDoc, SNAP_TMP};
use crate::stats::{PhaseAccum, RelationStats};
use crate::tenant_dir_name;
use crate::wal::{open_record, read_wal, WalContents, WalWriter, WAL_FILE, WAL_REWRITE_TMP};

/// What startup recovery did — reported by the `ping` verb.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Tenants successfully rebuilt.
    pub relations: usize,
    /// WAL batch records replayed (beyond snapshot coverage).
    pub batches_replayed: u64,
    /// Tuples those batches carried.
    pub tuples_replayed: u64,
    /// Snapshots that passed their cross-check and seeded a tenant.
    pub snapshots_used: usize,
    /// WALs whose invalid tail was truncated.
    pub torn_tails: usize,
    /// Directories renamed aside as unrecoverable.
    pub quarantined: Vec<String>,
    /// Wall-clock seconds the whole scan took.
    pub seconds: f64,
}

impl RecoveryReport {
    /// The `recovery` member of the `ping` response.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("relations".to_string(), Json::Num(self.relations as f64)),
            (
                "batches_replayed".to_string(),
                Json::Num(self.batches_replayed as f64),
            ),
            (
                "tuples_replayed".to_string(),
                Json::Num(self.tuples_replayed as f64),
            ),
            (
                "snapshots_used".to_string(),
                Json::Num(self.snapshots_used as f64),
            ),
            ("torn_tails".to_string(), Json::Num(self.torn_tails as f64)),
            (
                "quarantined".to_string(),
                Json::Arr(self.quarantined.iter().map(Json::str).collect()),
            ),
            ("seconds".to_string(), Json::Num(self.seconds)),
        ])
    }
}

/// Scan the data root and rebuild every recoverable tenant.
pub(crate) fn recover_root(
    cfg: &DurabilityCfg,
    shards: usize,
) -> std::io::Result<(Vec<Arc<Tenant>>, RecoveryReport)> {
    let started = Instant::now();
    let mut report = RecoveryReport::default();
    let mut tenants = Vec::new();
    let mut dirs: Vec<_> = std::fs::read_dir(&cfg.root)?
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
        .map(|e| e.path())
        .collect();
    dirs.sort();
    for dir in dirs {
        let dir_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        // Tenant directory names escape `.` (see [`tenant_dir_name`]), so
        // a dotted name is foreign — most likely an earlier quarantine.
        if dir_name.contains('.') {
            continue;
        }
        match recover_tenant(&dir, &dir_name, cfg, shards, &mut report) {
            Ok(tenant) => {
                report.relations += 1;
                tenants.push(tenant);
            }
            Err(reason) => {
                quarantine(&dir, &dir_name, &reason, &mut report);
            }
        }
    }
    report.seconds = started.elapsed().as_secs_f64();
    Ok((tenants, report))
}

/// Rebuild one tenant directory; `Err` carries the human reason it is
/// unrecoverable (→ quarantine).
fn recover_tenant(
    dir: &Path,
    dir_name: &str,
    cfg: &DurabilityCfg,
    shards: usize,
    report: &mut RecoveryReport,
) -> Result<Arc<Tenant>, String> {
    for scratch in [SNAP_TMP, WAL_REWRITE_TMP] {
        let _ = std::fs::remove_file(dir.join(scratch));
    }
    let wal_path = dir.join(WAL_FILE);
    let wal = read_wal(&wal_path).map_err(|e| format!("WAL unreadable: {e}"))?;
    let snaps = load_snapshots(dir);
    let open_doc = snaps
        .first()
        .map(|s| s.open.clone())
        .or_else(|| wal.open.clone())
        .ok_or("no usable open record in snapshot or WAL")?;
    let spec =
        parse_open(&open_doc).map_err(|e| format!("stored open spec rejected: {}", e.render()))?;
    if tenant_dir_name(&spec.relation) != dir_name {
        return Err(format!(
            "directory name does not match stored relation {:?}",
            spec.relation
        ));
    }
    let tenant = Tenant::open(&spec, shards)
        .map_err(|e| format!("session rebuild failed: {}", e.render()))?;

    let mut outcome = None;
    for candidate in snaps.iter().map(Some).chain(std::iter::once(None)) {
        match replay_candidate(&tenant, candidate, &wal) {
            Ok(r) => {
                outcome = Some(r);
                break;
            }
            Err(why) => {
                eprintln!(
                    "uniclean serve: recovering {:?}: {} rejected: {why}",
                    spec.relation,
                    match candidate {
                        Some(s) => format!("snapshot at seq {}", s.seq),
                        None => "bare WAL replay".to_string(),
                    }
                );
            }
        }
    }
    let replayed = outcome.ok_or("every snapshot candidate and the bare WAL replay failed")?;

    // Repair the log file itself: drop the torn tail so future appends
    // extend the valid prefix, and rebuild the whole file if even the
    // open record was lost (a valid snapshot carries it).
    let wal_writer = if wal.open.is_some() {
        let file_len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        if file_len > wal.valid_len {
            report.torn_tails += 1;
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .map_err(|e| format!("cannot truncate torn WAL tail: {e}"))?;
            f.set_len(wal.valid_len)
                .and_then(|_| f.sync_data())
                .map_err(|e| format!("cannot truncate torn WAL tail: {e}"))?;
        }
        WalWriter::open_append(&wal_path, cfg.fsync)
            .map_err(|e| format!("cannot reopen WAL: {e}"))?
    } else {
        if std::fs::metadata(&wal_path)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            report.torn_tails += 1;
        }
        let mut w = WalWriter::create(&wal_path, cfg.fsync)
            .map_err(|e| format!("cannot rebuild WAL: {e}"))?;
        w.append(&open_record(&open_doc))
            .map_err(|e| format!("cannot rebuild WAL: {e}"))?;
        if cfg.fsync {
            // The rebuilt file is a fresh directory entry; without the
            // directory fsync a power loss can lose the file itself even
            // though its contents were synced.
            crate::snapshot::sync_dir(dir).map_err(|e| format!("cannot sync tenant dir: {e}"))?;
        }
        w
    };

    report.batches_replayed += replayed.batches;
    report.tuples_replayed += replayed.tuples;
    report.snapshots_used += replayed.used_snapshot as usize;
    tenant.replace_entry(
        replayed.state,
        replayed.stats,
        replayed.last_client_seq,
        replayed.repl_seq,
    );
    *tenant.durable_lock() = Some(Durable {
        wal: wal_writer,
        dir: dir.to_path_buf(),
        open_doc,
        seq: replayed.seq,
        since_snapshot: replayed.batches,
        base_rows: replayed.base_rows,
    });
    Ok(Arc::new(tenant))
}

/// A successful replay: the rebuilt state plus everything the tenant's
/// [`Durable`] handle needs.
pub(crate) struct Replayed {
    pub(crate) state: RepairState,
    pub(crate) stats: RelationStats,
    pub(crate) base_rows: Vec<Json>,
    pub(crate) seq: u64,
    /// WAL batches replayed beyond snapshot coverage.
    pub(crate) batches: u64,
    pub(crate) tuples: u64,
    pub(crate) used_snapshot: bool,
    /// Highest client exactly-once sequence covered by the replay.
    pub(crate) last_client_seq: Option<u64>,
    /// Highest mirrored primary sequence covered by the replay.
    pub(crate) repl_seq: Option<u64>,
}

/// Replay one snapshot candidate (or the bare WAL) onto a fresh state,
/// cross-checking the snapshot's stored repaired relation byte-for-byte.
/// Also the apply path for a standby bootstrapping from a streamed
/// snapshot ([`crate::replication`]), which passes an empty WAL.
pub(crate) fn replay_candidate(
    tenant: &Tenant,
    snap: Option<&SnapshotDoc>,
    wal: &WalContents,
) -> Result<Replayed, String> {
    let arity = tenant.cleaner.rules().schema().arity();
    let entry = tenant.entry_read();
    let mut state = tenant.cleaner.begin_empty(entry.state.phase());
    drop(entry);
    let mut stats = RelationStats::default();
    let mut base_rows: Vec<Json> = Vec::new();
    let mut seq = 0u64;
    let mut last_client_seq: Option<u64> = None;
    let mut repl_seq: Option<u64> = None;

    if let Some(s) = snap {
        let rows = batch_from_json(&s.base_rows, arity, tenant.default_cf)
            .map_err(|e| format!("snapshot base rows undecodable: {e}"))?;
        if !rows.is_empty() {
            tenant
                .cleaner
                .clean_delta(&mut state, &rows)
                .map_err(|e| format!("snapshot base replay failed: {e}"))?;
        }
        // The cross-check: replay must land exactly on the repaired
        // relation the snapshot recorded — cells, confidences, marks and
        // cost, byte-for-byte over the deterministic JSON rendering.
        let replayed = relation_to_json(state.repaired()).render();
        if replayed != s.repaired.render() {
            return Err("base replay does not match stored repaired relation".to_string());
        }
        if state.cost().to_bits() != s.cost.to_bits() {
            return Err(format!(
                "base replay cost {} does not match stored cost {}",
                state.cost(),
                s.cost
            ));
        }
        stats.batches = s.batches;
        stats.tuples_ingested = s.tuples_ingested;
        stats.fixes = s.fixes;
        stats.phase_seconds = s.phase_seconds;
        base_rows = s
            .base_rows
            .as_arr()
            .ok_or("snapshot base rows are not an array")?
            .to_vec();
        seq = s.seq;
        last_client_seq = s.last_client_seq;
        repl_seq = s.repl_seq;
    }

    let mut batches = 0u64;
    let mut tuples = 0u64;
    for batch in &wal.batches {
        let bseq = batch.seq;
        if bseq <= seq {
            continue; // covered by the snapshot
        }
        let rows = batch_from_json(&batch.rows, arity, tenant.default_cf)
            .map_err(|e| format!("WAL batch {bseq} undecodable: {e}"))?;
        let mut accum = PhaseAccum::default();
        let res = tenant
            .cleaner
            .clean_delta_observed(&mut state, &rows, &mut accum)
            .map_err(|e| format!("WAL batch {bseq} replay failed: {e}"))?;
        let (d, r, p) = res.fix_counts();
        stats.batches += 1;
        stats.tuples_ingested += rows.len() as u64;
        stats.fixes += (d + r + p) as u64;
        for (slot, s) in stats.phase_seconds.iter_mut().zip(accum.seconds) {
            *slot += s;
        }
        base_rows.extend_from_slice(
            batch
                .rows
                .as_arr()
                .ok_or_else(|| format!("WAL batch {bseq} rows are not an array"))?,
        );
        seq = bseq;
        if batch.client_seq.is_some() {
            last_client_seq = last_client_seq.max(batch.client_seq);
        }
        if batch.repl_seq.is_some() {
            repl_seq = repl_seq.max(batch.repl_seq);
        }
        batches += 1;
        tuples += rows.len() as u64;
    }

    Ok(Replayed {
        state,
        stats,
        base_rows,
        seq,
        batches,
        tuples,
        used_snapshot: snap.is_some(),
        last_client_seq,
        repl_seq,
    })
}

/// Rename an unrecoverable directory aside as `<dir>.corrupt-<n>`.
fn quarantine(dir: &Path, dir_name: &str, reason: &str, report: &mut RecoveryReport) {
    let parent = dir.parent().unwrap_or(Path::new("."));
    let target = (0..)
        .map(|n| parent.join(format!("{dir_name}.corrupt-{n}")))
        .find(|p| !p.exists())
        .unwrap();
    match std::fs::rename(dir, &target) {
        Ok(()) => {
            // Best-effort parent fsync: a power loss right here must not
            // undo the quarantine and wedge the next startup on the same
            // corrupt directory.
            let _ = crate::snapshot::sync_dir(parent);
            eprintln!(
                "uniclean serve: quarantined unrecoverable tenant directory {dir_name:?} \
                 as {:?}: {reason}",
                target.file_name().and_then(|n| n.to_str()).unwrap_or("?")
            );
            report.quarantined.push(dir_name.to_string());
        }
        Err(e) => {
            eprintln!(
                "uniclean serve: cannot quarantine unrecoverable tenant directory \
                 {dir_name:?} ({reason}): {e}; skipping it"
            );
            report.quarantined.push(dir_name.to_string());
        }
    }
}
