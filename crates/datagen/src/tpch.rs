//! TPC-H-like workload: a denormalized join of lineitem, orders, customer,
//! part and supplier (58 attributes, 55 CFDs + 10 MDs, matching the
//! paper's counts), used for scalability experiments (Figs 14(e)–(h)).
//!
//! "TPC-H data was generated … by joining all tables together into a single
//! table. … We manually designed 55 FDs, and controlled the number of CFDs
//! and MDs by adding pattern to the FDs." [`TpchScale`] reproduces that
//! control: the Σ sweep adds valid LHS-extended variants of every FD (an FD
//! `X → A` implies `X ∪ Z → A`), the Γ sweep adds premise-extended variants
//! of every MD — both provably hold on the generated data, so the sweeps
//! measure cost, not noise.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uniclean_model::{Relation, Schema, Tuple, TupleId, Value};
use uniclean_rules::{parse_rules, RuleSet};

use crate::dict;
use crate::noise::{assign_confidence, corrupt};
use crate::spec::{GenParams, Workload};

/// The 58 attributes of the joined table.
pub const TPCH_ATTRS: &[&str] = &[
    // lineitem (12)
    "LQty",
    "LPrice",
    "LDisc",
    "LTax",
    "LRFlag",
    "LStatus",
    "LShipDate",
    "LCommitDate",
    "LReceiptDate",
    "LShipMode",
    "LShipInstruct",
    "LComment",
    // orders (10)
    "OKey",
    "OStatus",
    "OTotal",
    "ODate",
    "OPriority",
    "OClerk",
    "OShipPrio",
    "OComment",
    "OYear",
    "OQuarter",
    // customer (12)
    "CKey",
    "CName",
    "CAddr",
    "CCity",
    "CNation",
    "CRegion",
    "CPhone",
    "CAcct",
    "CMkt",
    "CComment",
    "CNationCode",
    "CSegCode",
    // part (11)
    "PKey",
    "PName",
    "PMfgr",
    "PBrand",
    "PType",
    "PSize",
    "PContainer",
    "PPrice",
    "PComment",
    "PSizeCat",
    "PBrandLine",
    // supplier (11)
    "SKey",
    "SName",
    "SAddr",
    "SCity",
    "SNation",
    "SRegion",
    "SPhone",
    "SAcct",
    "SComment",
    "SNationCode",
    "SRating",
    // derived lineitem measures (2)
    "LProfit",
    "LMargin",
];

/// Rule-scaling knobs for Figs 14(g) and 14(h).
#[derive(Clone, Copy, Debug)]
pub struct TpchScale {
    /// Σ multiplier: total CFDs = 55 × this (1–5 supported).
    pub sigma_multiplier: usize,
    /// Γ multiplier: total MDs = 10 × this (1–5 supported).
    pub gamma_multiplier: usize,
}

impl Default for TpchScale {
    fn default() -> Self {
        TpchScale {
            sigma_multiplier: 1,
            gamma_multiplier: 1,
        }
    }
}

/// LHS-extension attributes for the Σ sweep: never used by any base rule.
const SIGMA_EXTENSIONS: &[&str] = &["LShipMode", "LShipInstruct", "LComment", "LProfit"];
/// Premise-extension attributes for the Γ sweep.
const GAMMA_EXTENSIONS: &[&str] = &["OShipPrio", "LShipMode", "OPriority", "CMkt"];

/// The 55 base FDs as (LHS list, RHS) pairs.
fn base_fds() -> Vec<(Vec<&'static str>, &'static str)> {
    let mut fds: Vec<(Vec<&str>, &str)> = Vec::new();
    // Order key determines every order attribute, the customer key, and
    // (transitively, stated directly as extra rules) customer identity.
    for rhs in [
        "OStatus",
        "OTotal",
        "ODate",
        "OPriority",
        "OClerk",
        "OShipPrio",
        "OComment",
        "OYear",
        "OQuarter",
    ] {
        fds.push((vec!["OKey"], rhs));
    }
    fds.push((vec!["OKey"], "CKey"));
    for rhs in ["CName", "CCity", "CPhone"] {
        fds.push((vec!["OKey"], rhs));
    }
    for rhs in [
        "CName",
        "CAddr",
        "CCity",
        "CNation",
        "CRegion",
        "CPhone",
        "CAcct",
        "CMkt",
        "CComment",
        "CNationCode",
        "CSegCode",
    ] {
        fds.push((vec!["CKey"], rhs));
    }
    fds.push((vec!["CNation"], "CRegion"));
    fds.push((vec!["CNation"], "CNationCode"));
    fds.push((vec!["CMkt"], "CSegCode"));
    fds.push((vec!["CCity"], "CNation"));
    for rhs in [
        "PName",
        "PMfgr",
        "PBrand",
        "PType",
        "PSize",
        "PContainer",
        "PPrice",
        "PComment",
        "PSizeCat",
        "PBrandLine",
    ] {
        fds.push((vec!["PKey"], rhs));
    }
    fds.push((vec!["PSize"], "PSizeCat"));
    fds.push((vec!["PBrand"], "PBrandLine"));
    for rhs in [
        "SName",
        "SAddr",
        "SCity",
        "SNation",
        "SRegion",
        "SPhone",
        "SAcct",
        "SComment",
        "SNationCode",
        "SRating",
    ] {
        fds.push((vec!["SKey"], rhs));
    }
    fds.push((vec!["SNation"], "SRegion"));
    fds.push((vec!["SNation"], "SNationCode"));
    fds.push((vec!["LRFlag"], "LStatus"));
    fds.push((vec!["ODate"], "OYear"));
    fds.push((vec!["ODate"], "OQuarter"));
    assert_eq!(fds.len(), 55, "paper rule count");
    fds
}

/// The 10 base MDs as (premise attrs, conclusion attrs).
fn base_mds() -> Vec<(Vec<&'static str>, Vec<&'static str>)> {
    vec![
        (vec!["OKey"], vec!["OTotal"]),
        (vec!["OKey"], vec!["ODate"]),
        (vec!["OClerk"], vec!["OStatus"]),
        (vec!["CPhone"], vec!["CName"]),
        (vec!["CName"], vec!["CAddr"]),
        (vec!["SPhone"], vec!["SName"]),
        (vec!["SName"], vec!["SAddr"]),
        (vec!["PName"], vec!["PBrand"]),
        (vec!["PName", "PMfgr"], vec!["PType"]),
        (vec!["OKey"], vec!["OPriority"]),
    ]
}

fn rule_text(scale: TpchScale) -> String {
    assert!(
        (1..=SIGMA_EXTENSIONS.len() + 1).contains(&scale.sigma_multiplier),
        "sigma multiplier 1–{} supported",
        SIGMA_EXTENSIONS.len() + 1
    );
    assert!(
        (1..=GAMMA_EXTENSIONS.len() + 1).contains(&scale.gamma_multiplier),
        "gamma multiplier 1–{} supported",
        GAMMA_EXTENSIONS.len() + 1
    );
    let mut t = String::new();
    let mut n = 0usize;
    for (lhs, rhs) in base_fds() {
        n += 1;
        t.push_str(&format!(
            "cfd t{n:03}: tpch([{}] -> [{rhs}])\n",
            lhs.join(", ")
        ));
        for ext in SIGMA_EXTENSIONS.iter().take(scale.sigma_multiplier - 1) {
            n += 1;
            t.push_str(&format!(
                "cfd t{n:03}: tpch([{}, {ext}] -> [{rhs}])\n",
                lhs.join(", ")
            ));
        }
    }
    let mut m = 0usize;
    for (premise, conclusion) in base_mds() {
        for variant in 0..scale.gamma_multiplier {
            m += 1;
            let mut prem: Vec<String> = premise
                .iter()
                .map(|a| format!("tpch[{a}] = tpchm[{a}]"))
                .collect();
            if variant > 0 {
                let ext = GAMMA_EXTENSIONS[variant - 1];
                prem.push(format!("tpch[{ext}] = tpchm[{ext}]"));
            }
            let concl: Vec<String> = conclusion
                .iter()
                .map(|a| format!("tpch[{a}] <=> tpchm[{a}]"))
                .collect();
            t.push_str(&format!(
                "md tm{m:02}: {} -> {}\n",
                prem.join(" AND "),
                concl.join(", ")
            ));
        }
    }
    t
}

fn mix(a: usize, b: usize) -> usize {
    let mut x = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (b as u64 ^ 0x5bf0_3635).wrapping_mul(0x2545_f491_4f6c_dd1d);
    x ^= x >> 31;
    x as usize
}

/// Entity renderers — each functional in the entity index.
mod entity {
    use super::*;

    pub fn customer(c: usize) -> [String; 12] {
        let (nation, region, ncode) = dict::NATIONS[c % dict::NATIONS.len()];
        let mkt_i = c % dict::SEGMENTS.len();
        [
            format!("C{c:06}"),
            format!("Customer#{c:09}"),
            format!("{} {}", 10 + c, dict::STREETS[c % dict::STREETS.len()]),
            format!("{} City {}", nation, c % 7), // city embeds the nation
            nation.to_string(),
            region.to_string(),
            format!("{}-{c:06}", 10 + c % 90),
            format!("{}.{:02}", 100 + mix(c, 1) % 9900, mix(c, 2) % 100),
            dict::SEGMENTS[mkt_i].to_string(),
            format!("customer note {}", mix(c, 3) % 1000),
            ncode.to_string(),
            format!("SEG{mkt_i}"),
        ]
    }

    pub fn part(p: usize) -> [String; 11] {
        let size = 1 + p % 50;
        let brand_a = p % 5;
        let brand_b = p % 4;
        [
            format!("P{p:06}"),
            format!("Part#{p:09}"),
            format!("Manufacturer#{}", 1 + p % 5),
            format!("Brand#{brand_a}{brand_b}"),
            dict::PART_TYPES[p % dict::PART_TYPES.len()].to_string(),
            size.to_string(),
            dict::CONTAINERS[p % dict::CONTAINERS.len()].to_string(),
            format!("{}.{:02}", 900 + mix(p, 5) % 1200, mix(p, 6) % 100),
            format!("part note {}", mix(p, 7) % 1000),
            (if size <= 15 {
                "SMALL"
            } else if size <= 35 {
                "MEDIUM"
            } else {
                "LARGE"
            })
            .to_string(),
            format!("Line{brand_a}{brand_b}"),
        ]
    }

    pub fn supplier(s: usize) -> [String; 11] {
        let (nation, region, ncode) = dict::NATIONS[(s * 5 + 3) % dict::NATIONS.len()];
        [
            format!("S{s:05}"),
            format!("Supplier#{s:09}"),
            format!(
                "{} {}",
                500 + s,
                dict::STREETS[(s * 3) % dict::STREETS.len()]
            ),
            format!("{} Depot {}", nation, s % 5),
            nation.to_string(),
            region.to_string(),
            format!("{}-{s:06}", 20 + s % 70),
            format!("{}.{:02}", 500 + mix(s, 8) % 9000, mix(s, 9) % 100),
            format!("supplier note {}", mix(s, 10) % 1000),
            ncode.to_string(),
            format!("{} stars", 1 + mix(s, 11) % 5),
        ]
    }

    pub fn order(o: usize, n_customers: usize) -> ([String; 10], usize) {
        let month = 1 + (o / 8) % 12;
        let date = format!("199{}-{month:02}-{:02}", o % 8, 1 + (o / 96) % 28);
        let fields = [
            format!("O{o:07}"),
            ["O", "F", "P"][o % 3].to_string(),
            format!("{}.{:02}", 1000 + mix(o, 12) % 99000, mix(o, 13) % 100),
            date,
            dict::PRIORITIES[o % dict::PRIORITIES.len()].to_string(),
            format!("Clerk#{o:09}"),
            "0".to_string(),
            format!("order note {}", mix(o, 14) % 1000),
            format!("199{}", o % 8),
            format!("Q{}", 1 + (month - 1) / 3),
        ];
        (fields, o % n_customers)
    }
}

/// Assemble a full 58-attribute row for (order, part, supplier, salt).
fn row(o: usize, p: usize, s: usize, salt: usize, n_customers: usize) -> Vec<Value> {
    let (ord, cust_idx) = entity::order(o, n_customers);
    let cust = entity::customer(cust_idx);
    let part = entity::part(p);
    let supp = entity::supplier(s);
    let rflag_i = mix(salt, 15) % 3;
    let rflag = ["R", "A", "N"][rflag_i];
    let lstatus = ["F", "F", "O"][rflag_i]; // LRFlag → LStatus
    let mut vals: Vec<Value> = Vec::with_capacity(58);
    // lineitem (12)
    vals.push(Value::str((1 + mix(salt, 16) % 50).to_string()));
    vals.push(Value::str(format!(
        "{}.{:02}",
        900 + mix(salt, 17) % 90000,
        mix(salt, 18) % 100
    )));
    vals.push(Value::str(format!("0.{:02}", mix(salt, 19) % 11)));
    vals.push(Value::str(format!("0.{:02}", mix(salt, 20) % 9)));
    vals.push(Value::str(rflag));
    vals.push(Value::str(lstatus));
    vals.push(Value::str(format!(
        "199{}-{:02}-{:02}",
        salt % 8,
        1 + mix(salt, 21) % 12,
        1 + mix(salt, 22) % 28
    )));
    vals.push(Value::str(format!(
        "199{}-{:02}-{:02}",
        salt % 8,
        1 + mix(salt, 23) % 12,
        1 + mix(salt, 24) % 28
    )));
    vals.push(Value::str(format!(
        "199{}-{:02}-{:02}",
        salt % 8,
        1 + mix(salt, 25) % 12,
        1 + mix(salt, 26) % 28
    )));
    vals.push(Value::str(
        dict::SHIP_MODES[mix(salt, 27) % dict::SHIP_MODES.len()],
    ));
    vals.push(Value::str(
        [
            "DELIVER IN PERSON",
            "COLLECT COD",
            "NONE",
            "TAKE BACK RETURN",
        ][mix(salt, 28) % 4],
    ));
    vals.push(Value::str(format!(
        "lineitem note {}",
        mix(salt, 29) % 1000
    )));
    // orders (10)
    vals.extend(ord.iter().map(Value::str));
    // customer (12)
    vals.extend(cust.iter().map(Value::str));
    // part (11)
    vals.extend(part.iter().map(Value::str));
    // supplier (11)
    vals.extend(supp.iter().map(Value::str));
    // derived (2)
    vals.push(Value::str(format!(
        "{}.{:02}",
        mix(salt, 30) % 5000,
        mix(salt, 31) % 100
    )));
    vals.push(Value::str(format!("0.{:02}", mix(salt, 32) % 60)));
    assert_eq!(vals.len(), 58);
    vals
}

/// Generate the TPC-H workload with the given rule scale.
pub fn tpch_workload(params: &GenParams, scale: TpchScale) -> Workload {
    params.validate().expect("invalid generation parameters");
    let schema = Schema::of_strings("tpch", TPCH_ATTRS);
    let master_schema: Arc<Schema> = Arc::new(Schema::new(
        "tpchm",
        schema.attrs().iter().map(|a| (a.name.clone(), a.ty)),
    ));
    let text = rule_text(scale);
    let parsed = parse_rules(&text, &schema, Some(&master_schema)).expect("TPCH rules parse");
    assert_eq!(parsed.cfds.len(), 55 * scale.sigma_multiplier);
    assert_eq!(parsed.positive_mds.len(), 10 * scale.gamma_multiplier);
    let rules = RuleSet::new(
        schema.clone(),
        Some(master_schema.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );

    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x7BC8);
    let m = params.master_tuples;
    let n_customers = (m / 4).max(4);
    let n_parts = 200;
    let n_suppliers = 50;

    // Master: one row per master order.
    let mut master = Relation::empty(master_schema);
    for o in 0..m {
        master.push(Tuple::from_values(
            row(
                o,
                mix(o, 40) % n_parts,
                mix(o, 41) % n_suppliers,
                o,
                n_customers,
            ),
            1.0,
        ));
    }

    // Each order contributes several lineitems, as in real TPC-H.
    const ROWS_PER_ENTITY: f64 = 5.0;
    let dup_pool =
        ((params.tuples as f64 * params.dup_rate / ROWS_PER_ENTITY).ceil() as usize).clamp(1, m);
    let non_master_orders =
        ((params.tuples as f64 * (1.0 - params.dup_rate) / ROWS_PER_ENTITY).ceil() as usize).max(1);
    let mut truth = Relation::empty(schema.clone());
    let mut order_of_row: Vec<Option<usize>> = Vec::with_capacity(params.tuples);
    for r in 0..params.tuples {
        let is_dup = rng.gen::<f64>() < params.dup_rate;
        let o = if is_dup {
            let o = rng.gen_range(0..dup_pool);
            order_of_row.push(Some(o));
            o
        } else {
            order_of_row.push(None);
            m + rng.gen_range(0..non_master_orders)
        };
        truth.push(Tuple::from_values(
            row(
                o,
                rng.gen_range(0..n_parts),
                rng.gen_range(0..n_suppliers),
                m + r,
                n_customers,
            ),
            0.0,
        ));
    }

    let mut dirty = truth.clone();
    let attrs: Vec<uniclean_model::AttrId> = schema.attr_ids().collect();
    let errors = corrupt(&mut dirty, &attrs, params.noise_rate, &mut rng);
    assign_confidence(&mut dirty, &truth, params.asserted_rate, &mut rng);

    let true_matches: HashSet<(TupleId, TupleId)> = order_of_row
        .iter()
        .enumerate()
        .filter_map(|(r, o)| o.map(|o| (TupleId::from(r), TupleId::from(o))))
        .collect();

    Workload {
        name: "tpch",
        rules,
        truth,
        dirty,
        master,
        true_matches,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenParams {
        GenParams {
            tuples: 150,
            master_tuples: 60,
            ..GenParams::default()
        }
    }

    #[test]
    fn workload_invariants_hold() {
        let w = tpch_workload(&small(), TpchScale::default());
        w.check_invariants();
        assert_eq!(w.truth.schema().arity(), 58);
        assert_eq!(w.rules.cfds().len(), 55);
    }

    #[test]
    fn sigma_sweep_scales_rule_count_and_stays_valid() {
        for mult in [1usize, 3, 5] {
            let w = tpch_workload(
                &GenParams {
                    tuples: 80,
                    master_tuples: 30,
                    ..GenParams::default()
                },
                TpchScale {
                    sigma_multiplier: mult,
                    gamma_multiplier: 1,
                },
            );
            assert_eq!(w.rules.cfds().len(), 55 * mult);
            w.check_invariants();
        }
    }

    #[test]
    fn gamma_sweep_scales_md_count_and_stays_valid() {
        for mult in [1usize, 2, 5] {
            let w = tpch_workload(
                &GenParams {
                    tuples: 80,
                    master_tuples: 30,
                    ..GenParams::default()
                },
                TpchScale {
                    sigma_multiplier: 1,
                    gamma_multiplier: mult,
                },
            );
            // Base MDs normalize to more than 10 (multi-RHS rules split),
            // but the declared count is 10 × mult.
            assert!(w.rules.mds().len() >= 10 * mult);
            w.check_invariants();
        }
    }

    #[test]
    #[should_panic(expected = "sigma multiplier")]
    fn oversized_sigma_multiplier_rejected() {
        tpch_workload(
            &small(),
            TpchScale {
                sigma_multiplier: 9,
                gamma_multiplier: 1,
            },
        );
    }

    #[test]
    fn determinism() {
        let a = tpch_workload(&small(), TpchScale::default());
        let b = tpch_workload(&small(), TpchScale::default());
        assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
    }
}
