//! HOSP-like workload: hospital quality-measure records (19 attributes,
//! 23 CFDs + 3 MDs, matching the paper's rule counts).
//!
//! Entities are *providers* (hospitals) crossed with *measures*. Provider
//! attributes are functionally determined by `ProviderID`; geography follows
//! the `ZIP → City/State/AreaCode` and `City → County` clusters; measure
//! attributes follow `MeasureCode`; `StateAvg` is functional in
//! `(State, MeasureCode)`. Addresses and phone numbers embed the provider
//! index, so the MD premises (`ProviderID`, `Address`+name,
//! `Phone`+`ZIP`) are entity-unique and the clean data satisfies `Γ`
//! against the master relation by construction.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uniclean_model::{Relation, Schema, Tuple, TupleId, Value};
use uniclean_rules::{parse_rules, RuleSet};

use crate::dict;
use crate::noise::{assign_confidence, corrupt};
use crate::spec::{GenParams, Workload};

/// The 19 HOSP attributes.
pub const HOSP_ATTRS: &[&str] = &[
    "ProviderID",
    "HospitalName",
    "Address",
    "City",
    "State",
    "ZIP",
    "County",
    "Phone",
    "Type",
    "Owner",
    "Emergency",
    "MeasureCode",
    "MeasureName",
    "Condition",
    "Score",
    "Sample",
    "StateAvg",
    "AreaCode",
    "Footnote",
];

/// Build the HOSP rule text (23 CFDs + 3 MDs).
fn rule_text() -> String {
    let mut t = String::new();
    // 17 variable CFDs.
    for (i, (lhs, rhs)) in [
        ("ZIP", "City"),
        ("ZIP", "State"),
        ("ZIP", "AreaCode"),
        ("City", "County"),
        ("ProviderID", "HospitalName"),
        ("ProviderID", "Address"),
        ("ProviderID", "City"),
        ("ProviderID", "State"),
        ("ProviderID", "ZIP"),
        ("ProviderID", "County"),
        ("ProviderID", "Phone"),
        ("ProviderID", "Type"),
        ("ProviderID", "Owner"),
        ("Phone", "AreaCode"),
        ("MeasureCode", "MeasureName"),
        ("MeasureCode", "Condition"),
    ]
    .iter()
    .enumerate()
    {
        t.push_str(&format!("cfd h{:02}: hosp([{lhs}] -> [{rhs}])\n", i + 1));
    }
    t.push_str("cfd h17: hosp([State, MeasureCode] -> [StateAvg])\n");
    // 6 constant CFDs, consistent with the dictionaries.
    t.push_str("cfd h18: hosp([City=Boston] -> [State=MA])\n");
    t.push_str("cfd h19: hosp([City=Chicago] -> [State=IL])\n");
    t.push_str("cfd h20: hosp([City=Seattle] -> [State=WA])\n");
    t.push_str("cfd h21: hosp([MeasureCode=AMI-1] -> [Condition=\"Heart Attack\"])\n");
    t.push_str("cfd h22: hosp([MeasureCode=HF-1] -> [Condition=\"Heart Failure\"])\n");
    t.push_str("cfd h23: hosp([MeasureCode=PN-2] -> [Condition=Pneumonia])\n");
    // 3 MDs.
    t.push_str(
        "md hm1: hosp[ProviderID] = hospm[ProviderID] -> hosp[Phone] <=> hospm[Phone], hosp[HospitalName] <=> hospm[HospitalName]\n",
    );
    t.push_str(
        "md hm2: hosp[HospitalName] ~lev(2) hospm[HospitalName] AND hosp[Address] = hospm[Address] AND hosp[City] = hospm[City] -> hosp[Phone] <=> hospm[Phone], hosp[ZIP] <=> hospm[ZIP]\n",
    );
    t.push_str(
        "md hm3: hosp[Phone] = hospm[Phone] AND hosp[ZIP] = hospm[ZIP] -> hosp[Address] <=> hospm[Address], hosp[ProviderID] <=> hospm[ProviderID]\n",
    );
    t
}

/// A provider's functional attribute bundle, derived from its index.
struct Provider {
    id: String,
    name: String,
    address: String,
    city: usize,
    zip: String,
    phone: String,
    typ: &'static str,
    owner: &'static str,
    emergency: &'static str,
}

fn provider(i: usize) -> Provider {
    let c = i % dict::CITIES.len();
    let (_, _, zip_prefix, area, _) = dict::CITIES[c];
    Provider {
        id: format!("P{i:06}"),
        name: format!(
            "{} {}",
            dict::LAST_NAMES[i % dict::LAST_NAMES.len()],
            dict::HOSPITAL_KINDS[(i / dict::LAST_NAMES.len()) % dict::HOSPITAL_KINDS.len()]
        ),
        address: format!("{} {}", 100 + i, dict::STREETS[i % dict::STREETS.len()]),
        city: c,
        zip: format!("{}{:02}", zip_prefix, (i / dict::CITIES.len()) % 50),
        phone: format!("{}-{:07}", area, 1_000_000 + i),
        typ: dict::HOSPITAL_TYPES[i % dict::HOSPITAL_TYPES.len()],
        owner: dict::HOSPITAL_OWNERS[i % dict::HOSPITAL_OWNERS.len()],
        emergency: if i.is_multiple_of(3) { "No" } else { "Yes" },
    }
}

/// Deterministic pseudo-hash for functional derived values.
fn mix(a: usize, b: usize) -> usize {
    let mut x = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (b as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    x ^= x >> 33;
    x as usize
}

fn state_avg(state: &str, measure_idx: usize) -> String {
    let h = mix(
        state.len() + state.bytes().map(|b| b as usize).sum::<usize>(),
        measure_idx,
    );
    format!("{}.{}%", 50 + h % 50, h % 10)
}

fn row(p: &Provider, measure_idx: usize, row_salt: usize) -> Vec<Value> {
    let (code, mname, cond) = dict::MEASURES[measure_idx % dict::MEASURES.len()];
    let (city, state, _, area, county) = dict::CITIES[p.city];
    let h = mix(row_salt, measure_idx);
    vec![
        Value::str(&p.id),
        Value::str(&p.name),
        Value::str(&p.address),
        Value::str(city),
        Value::str(state),
        Value::str(&p.zip),
        Value::str(county),
        Value::str(&p.phone),
        Value::str(p.typ),
        Value::str(p.owner),
        Value::str(p.emergency),
        Value::str(code),
        Value::str(mname),
        Value::str(cond),
        Value::str(format!("{}%", 40 + h % 60)),
        Value::str(format!("{} patients", 20 + h % 480)),
        Value::str(state_avg(state, measure_idx % dict::MEASURES.len())),
        Value::str(area),
        Value::str(if h.is_multiple_of(5) { "1" } else { "0" }),
    ]
}

/// Generate the HOSP workload.
pub fn hosp_workload(params: &GenParams) -> Workload {
    params.validate().expect("invalid generation parameters");
    let schema = Schema::of_strings("hosp", HOSP_ATTRS);
    let master_schema = build_master_schema(&schema, "hospm");
    let parsed =
        parse_rules(&rule_text(), &schema, Some(&master_schema)).expect("HOSP rules parse");
    assert_eq!(parsed.cfds.len(), 23, "paper rule count");
    assert_eq!(parsed.positive_mds.len(), 3, "paper rule count");
    let rules = RuleSet::new(
        schema.clone(),
        Some(master_schema.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );

    let mut rng = SmallRng::seed_from_u64(params.seed);
    let m = params.master_tuples;
    // Master: one row per master provider, measure assigned functionally.
    let mut master = Relation::empty(master_schema);
    for i in 0..m {
        let p = provider(i);
        master.push(Tuple::from_values(
            row(&p, i % dict::MEASURES.len(), i),
            1.0,
        ));
    }

    // Truth: dup% rows from master providers, the rest from a disjoint
    // pool. Pools are sized so each provider contributes several records
    // (≈ ROWS_PER_ENTITY) — the within-relation redundancy variable CFDs
    // and the entropy analysis feed on, mirroring the real HOSP data where
    // every hospital reports ~20 measures.
    const ROWS_PER_ENTITY: f64 = 6.0;
    let dup_pool =
        ((params.tuples as f64 * params.dup_rate / ROWS_PER_ENTITY).ceil() as usize).clamp(1, m);
    let non_master_pool =
        ((params.tuples as f64 * (1.0 - params.dup_rate) / ROWS_PER_ENTITY).ceil() as usize).max(1);
    let mut truth = Relation::empty(schema.clone());
    let mut provider_of_row: Vec<Option<usize>> = Vec::with_capacity(params.tuples);
    for r in 0..params.tuples {
        let is_dup = rng.gen::<f64>() < params.dup_rate;
        let pidx = if is_dup {
            let p = rng.gen_range(0..dup_pool);
            provider_of_row.push(Some(p));
            p
        } else {
            provider_of_row.push(None);
            m + rng.gen_range(0..non_master_pool)
        };
        let p = provider(pidx);
        let measure = rng.gen_range(0..dict::MEASURES.len());
        truth.push(Tuple::from_values(row(&p, measure, r), 0.0));
    }

    // Dirty copy: corrupt every attribute (uncovered attributes contribute
    // unfixable errors, as in real data), then assign confidence.
    let mut dirty = truth.clone();
    let attrs: Vec<uniclean_model::AttrId> = schema.attr_ids().collect();
    let errors = corrupt(&mut dirty, &attrs, params.noise_rate, &mut rng);
    assign_confidence(&mut dirty, &truth, params.asserted_rate, &mut rng);

    let true_matches: HashSet<(TupleId, TupleId)> = provider_of_row
        .iter()
        .enumerate()
        .filter_map(|(r, p)| p.map(|p| (TupleId::from(r), TupleId::from(p))))
        .collect();

    Workload {
        name: "hosp",
        rules,
        truth,
        dirty,
        master,
        true_matches,
        errors,
    }
}

/// Clone a schema under a new relation name (master side).
fn build_master_schema(schema: &Arc<Schema>, name: &str) -> Arc<Schema> {
    Arc::new(Schema::new(
        name,
        schema.attrs().iter().map(|a| (a.name.clone(), a.ty)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenParams {
        GenParams {
            tuples: 300,
            master_tuples: 80,
            ..GenParams::default()
        }
    }

    #[test]
    fn workload_invariants_hold() {
        let w = hosp_workload(&small());
        w.check_invariants();
        assert_eq!(w.truth.schema().arity(), 19);
        assert!(w.rules.cfds().len() >= 23, "normalized count ≥ declared");
        assert_eq!(w.dirty.len(), 300);
        assert_eq!(w.master.len(), 80);
    }

    #[test]
    fn noise_rate_reflected_in_errors() {
        let w = hosp_workload(&GenParams {
            noise_rate: 0.08,
            ..small()
        });
        let cells = w.truth.cell_count();
        let rate = w.errors as f64 / cells as f64;
        assert!((0.05..=0.11).contains(&rate), "rate {rate}");
    }

    #[test]
    fn dup_rate_reflected_in_matches() {
        let w = hosp_workload(&GenParams {
            dup_rate: 0.5,
            ..small()
        });
        let rate = w.true_matches.len() as f64 / w.dirty.len() as f64;
        assert!((0.4..=0.6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hosp_workload(&small());
        let b = hosp_workload(&small());
        assert_eq!(a.truth.diff_cells(&b.truth), 0);
        assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
        assert_eq!(a.true_matches, b.true_matches);
    }

    #[test]
    fn different_seeds_differ() {
        let a = hosp_workload(&small());
        let b = hosp_workload(&GenParams {
            seed: 1234,
            ..small()
        });
        assert!(a.dirty.diff_cells(&b.dirty) > 0);
    }

    #[test]
    fn zero_noise_means_clean_dirty() {
        let w = hosp_workload(&GenParams {
            noise_rate: 0.0,
            ..small()
        });
        assert_eq!(w.errors, 0);
        assert_eq!(w.truth.diff_cells(&w.dirty), 0);
    }
}
