//! Synthetic workload generators reproducing the paper's experimental
//! setting (§8).
//!
//! The paper evaluates on HOSP (US HHS hospital data, 100K × 19, 23 CFDs +
//! 3 MDs), DBLP (400K × 12, 7 CFDs + 3 MDs) and a TPC-H join (100K × 58,
//! 55 CFDs + 10 MDs). Those exact datasets cannot be shipped; each
//! generator here builds a synthetic equivalent with the same arity, the
//! same rule counts and the same *structure* — attributes are functionally
//! correlated exactly as the rule set demands, so the clean data satisfies
//! `Σ` and `Γ` by construction and every injected error is repairable
//! evidence for the algorithms (see DESIGN.md "Substitutions").
//!
//! The dirtying protocol follows §8 "Experimental Setting" to the letter:
//!
//! * `noi%` — ratio of erroneous attribute cells,
//! * `dup%` — fraction of tuples that have a match in the master data,
//! * `asr%` — per attribute, a random `asr%` of tuples get `cf = 1`, the
//!   rest `cf = 0` (assertions are random, so a noisy cell can be wrongly
//!   asserted — which is precisely why cRepair's precision dips slightly
//!   with the noise rate in Fig. 12),
//! * master data is carved from the clean source and verified consistent.

pub mod dblp;
pub mod dict;
pub mod hosp;
pub mod noise;
pub mod spec;
pub mod tpch;

pub use dblp::{dblp_similarity_workload, dblp_workload};
pub use hosp::hosp_workload;
pub use spec::{GenParams, Workload};
pub use tpch::{tpch_workload, TpchScale};
