//! Small embedded dictionaries used by the generators.
//!
//! Every list is deliberately modest: variety comes from combining entries
//! with entity indices, which also keeps the identifying attributes the MD
//! premises rely on unique by construction.

/// First names for people-ish entities.
pub const FIRST_NAMES: &[&str] = &[
    "Mark", "Robert", "Mary", "Susan", "James", "Linda", "Max", "Sarah", "David", "Karen", "Peter",
    "Laura", "Brian", "Nancy", "Kevin", "Diane", "Alice", "Henry", "Grace", "Oliver", "Emma",
    "Lucas", "Sophia", "Ethan", "Chloe", "Noah", "Ava", "Liam", "Mia", "Ella",
];

/// Last names for people-ish entities.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Brady", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Wilson", "Moore", "Taylor", "Anderson", "Thomas", "Jackson", "White", "Harris", "Martin",
    "Thompson", "Young", "Walker", "Hall", "Allen", "King", "Wright", "Scott", "Green", "Baker",
    "Adams", "Nelson",
];

/// `(city, state, zip prefix, area code, county)` — the functional cluster
/// behind the HOSP rules `ZIP → City/State/AreaCode` and `City → County`.
/// Zip prefixes and cities are pairwise distinct so the dependencies hold.
pub const CITIES: &[(&str, &str, &str, &str, &str)] = &[
    ("Boston", "MA", "021", "617", "Suffolk"),
    ("Chicago", "IL", "606", "312", "Cook"),
    ("Seattle", "WA", "981", "206", "King"),
    ("Austin", "TX", "733", "512", "Travis"),
    ("Denver", "CO", "802", "303", "Denver"),
    ("Portland", "OR", "972", "503", "Multnomah"),
    ("Atlanta", "GA", "303", "404", "Fulton"),
    ("Phoenix", "AZ", "850", "602", "Maricopa"),
    ("Nashville", "TN", "372", "615", "Davidson"),
    ("Baltimore", "MD", "212", "410", "Baltimore"),
    ("Columbus", "OH", "432", "614", "Franklin"),
    ("Madison", "WI", "537", "608", "Dane"),
    ("Raleigh", "NC", "276", "919", "Wake"),
    ("Omaha", "NE", "681", "402", "Douglas"),
    ("Tucson", "AZ2", "857", "520", "Pima"),
    ("Fresno", "CA", "937", "559", "Fresno"),
    ("Tampa", "FL", "336", "813", "Hillsborough"),
    ("StLouis", "MO", "631", "314", "StLouisCity"),
    ("Newark", "NJ", "071", "973", "Essex"),
    ("Albany", "NY", "122", "518", "AlbanyCounty"),
];

/// Street names.
pub const STREETS: &[&str] = &[
    "Oak St",
    "Wren St",
    "Maple Ave",
    "Pine Rd",
    "Cedar Ln",
    "Elm St",
    "Birch Way",
    "Willow Dr",
    "Chestnut Blvd",
    "Walnut St",
    "Spruce Ct",
    "Ash Ave",
    "Poplar Rd",
    "Hawthorn Ln",
    "Juniper St",
    "Magnolia Dr",
    "Sycamore Way",
    "Laurel Ct",
    "Holly Blvd",
    "Alder Pl",
];

/// Hospital name suffixes.
pub const HOSPITAL_KINDS: &[&str] = &[
    "General Hospital",
    "Medical Center",
    "Community Hospital",
    "Regional Clinic",
    "Memorial Hospital",
];

/// Hospital types.
pub const HOSPITAL_TYPES: &[&str] = &["Acute Care", "Critical Access", "Childrens", "Psychiatric"];

/// Hospital owners.
pub const HOSPITAL_OWNERS: &[&str] = &[
    "Government - State",
    "Voluntary non-profit",
    "Proprietary",
    "Government - Local",
    "Physician Owned",
];

/// `(measure code, measure name, condition)` — behind
/// `MeasureCode → MeasureName/Condition`.
pub const MEASURES: &[(&str, &str, &str)] = &[
    ("AMI-1", "Aspirin at Arrival", "Heart Attack"),
    ("AMI-2", "Aspirin at Discharge", "Heart Attack"),
    ("AMI-3", "ACEI or ARB for LVSD", "Heart Attack"),
    ("HF-1", "Discharge Instructions", "Heart Failure"),
    ("HF-2", "LVS Function Evaluation", "Heart Failure"),
    ("HF-3", "ACEI or ARB for LVSD HF", "Heart Failure"),
    ("PN-2", "Pneumococcal Vaccination", "Pneumonia"),
    ("PN-3", "Blood Culture Timing", "Pneumonia"),
    ("PN-5", "Initial Antibiotic Timing", "Pneumonia"),
    ("SCIP-1", "Prophylactic Antibiotic Timing", "Surgical Care"),
    ("SCIP-2", "Antibiotic Selection", "Surgical Care"),
    ("SCIP-3", "Antibiotic Discontinued", "Surgical Care"),
    ("CAC-1", "Relievers for Inpatient Asthma", "Asthma Care"),
    ("CAC-2", "Corticosteroids for Asthma", "Asthma Care"),
    ("OP-1", "Median Time to Fibrinolysis", "Outpatient"),
    ("OP-2", "Fibrinolytic within 30 Minutes", "Outpatient"),
    ("OP-4", "Aspirin on Arrival", "Outpatient"),
    ("OP-5", "Median Time to ECG", "Outpatient"),
    ("VTE-1", "VTE Prophylaxis", "Venous Thromboembolism"),
    ("VTE-2", "ICU VTE Prophylaxis", "Venous Thromboembolism"),
];

/// `(journal, publisher, venue)` — behind `Journal → Publisher/Venue`.
pub const JOURNALS: &[(&str, &str, &str)] = &[
    ("TODS", "ACM", "ACM Transactions on Database Systems"),
    ("VLDBJ", "Springer", "The VLDB Journal"),
    (
        "TKDE",
        "IEEE",
        "IEEE Transactions on Knowledge and Data Engineering",
    ),
    ("SIGMOD Record", "ACM", "ACM SIGMOD Record"),
    ("JDIQ", "ACM", "Journal of Data and Information Quality"),
    ("Inf Syst", "Elsevier", "Information Systems"),
    ("DKE", "Elsevier", "Data and Knowledge Engineering"),
    ("TOIS", "ACM", "ACM Transactions on Information Systems"),
    ("JACM", "ACM", "Journal of the ACM"),
    (
        "PVLDB",
        "VLDB Endowment",
        "Proceedings of the VLDB Endowment",
    ),
    ("CSUR", "ACM", "ACM Computing Surveys"),
    ("TCS", "Elsevier", "Theoretical Computer Science"),
];

/// Words for synthetic paper titles.
pub const TITLE_ADJ: &[&str] = &[
    "Adaptive",
    "Scalable",
    "Incremental",
    "Distributed",
    "Probabilistic",
    "Declarative",
    "Efficient",
    "Robust",
    "Interactive",
    "Parallel",
    "Streaming",
    "Approximate",
];

/// More words for synthetic paper titles.
pub const TITLE_NOUN: &[&str] = &[
    "Query Processing",
    "Data Cleaning",
    "Record Matching",
    "Entity Resolution",
    "Schema Mapping",
    "Data Repairing",
    "Integrity Checking",
    "View Maintenance",
    "Index Structures",
    "Join Algorithms",
    "Provenance Tracking",
    "Constraint Discovery",
    "Data Integration",
    "Duplicate Detection",
];

/// TPC-H-style market segments.
pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// TPC-H-style order priorities.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// TPC-H-style ship modes.
pub const SHIP_MODES: &[&str] = &["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"];

/// `(nation, region, nation code)`.
pub const NATIONS: &[(&str, &str, &str)] = &[
    ("FRANCE", "EUROPE", "N06"),
    ("GERMANY", "EUROPE", "N07"),
    ("UNITED KINGDOM", "EUROPE", "N23"),
    ("UNITED STATES", "AMERICA", "N24"),
    ("CANADA", "AMERICA", "N03"),
    ("BRAZIL", "AMERICA", "N02"),
    ("CHINA", "ASIA", "N18"),
    ("JAPAN", "ASIA", "N12"),
    ("INDIA", "ASIA", "N08"),
    ("AUSTRALIA", "OCEANIA", "N01"),
    ("EGYPT", "AFRICA", "N04"),
    ("KENYA", "AFRICA", "N14"),
];

/// TPC-H-style part type words.
pub const PART_TYPES: &[&str] = &[
    "ECONOMY ANODIZED STEEL",
    "STANDARD BRUSHED COPPER",
    "PROMO POLISHED BRASS",
    "SMALL PLATED NICKEL",
    "LARGE BURNISHED TIN",
    "MEDIUM ANODIZED STEEL",
];

/// TPC-H-style containers.
pub const CONTAINERS: &[&str] = &[
    "SM CASE",
    "LG BOX",
    "MED BAG",
    "JUMBO JAR",
    "WRAP PKG",
    "SM PACK",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn city_cluster_is_functional() {
        // ZIP → City requires distinct zip prefixes; City → County requires
        // distinct city names.
        let zips: HashSet<&str> = CITIES.iter().map(|c| c.2).collect();
        assert_eq!(zips.len(), CITIES.len(), "zip prefixes must be unique");
        let cities: HashSet<&str> = CITIES.iter().map(|c| c.0).collect();
        assert_eq!(cities.len(), CITIES.len(), "city names must be unique");
    }

    #[test]
    fn measure_codes_are_unique() {
        let codes: HashSet<&str> = MEASURES.iter().map(|m| m.0).collect();
        assert_eq!(codes.len(), MEASURES.len());
    }

    #[test]
    fn journals_are_unique() {
        let names: HashSet<&str> = JOURNALS.iter().map(|j| j.0).collect();
        assert_eq!(names.len(), JOURNALS.len());
    }

    #[test]
    fn nations_are_functional_to_regions() {
        let names: HashSet<&str> = NATIONS.iter().map(|n| n.0).collect();
        assert_eq!(names.len(), NATIONS.len());
        let codes: HashSet<&str> = NATIONS.iter().map(|n| n.2).collect();
        assert_eq!(codes.len(), NATIONS.len());
    }
}
