//! Generation parameters and the workload bundle.

use std::collections::HashSet;

use uniclean_model::{Relation, TupleId};
use uniclean_rules::RuleSet;

/// Knobs shared by all three generators, mirroring §8's parameters.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// `|D|` — number of (dirty) data tuples.
    pub tuples: usize,
    /// `|Dm|` — number of master tuples (entity count on the master side).
    pub master_tuples: usize,
    /// `noi%` — fraction of cells corrupted (over the corruptible
    /// attributes).
    pub noise_rate: f64,
    /// `dup%` — fraction of data tuples whose entity appears in the master
    /// data.
    pub dup_rate: f64,
    /// `asr%` — per attribute, the fraction of tuples whose cell gets
    /// confidence 1.0 (the rest get 0.0).
    pub asserted_rate: f64,
    /// RNG seed; equal seeds reproduce the workload bit for bit.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            tuples: 1000,
            master_tuples: 300,
            noise_rate: 0.06,
            dup_rate: 0.4,
            asserted_rate: 0.4,
            seed: 42,
        }
    }
}

impl GenParams {
    /// Validate ranges before generation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("noise_rate", self.noise_rate),
            ("dup_rate", self.dup_rate),
            ("asserted_rate", self.asserted_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.tuples == 0 {
            return Err("tuples must be positive".into());
        }
        if self.master_tuples == 0 {
            return Err("master_tuples must be positive".into());
        }
        Ok(())
    }
}

/// A complete experimental workload: rules, clean truth, dirty input,
/// master data and the ground-truth match set.
pub struct Workload {
    /// Dataset label ("hosp", "dblp", "tpch").
    pub name: &'static str,
    /// The rule set `Θ = Σ ∪ Γ` (normalized).
    pub rules: RuleSet,
    /// Ground truth: the clean relation the noise was injected into.
    pub truth: Relation,
    /// The dirty relation handed to the cleaning algorithms (with
    /// confidence assigned per `asr%`).
    pub dirty: Relation,
    /// Master data `Dm`, consistent with `Σ` and `Γ` by construction.
    pub master: Relation,
    /// True matches: (dirty tuple, master tuple) pairs referring to the
    /// same entity.
    pub true_matches: HashSet<(TupleId, TupleId)>,
    /// Number of corrupted cells actually injected.
    pub errors: usize,
}

impl Workload {
    /// Sanity invariants every generator must uphold; called by generator
    /// tests.
    pub fn check_invariants(&self) {
        use uniclean_rules::satisfies_all;
        assert_eq!(self.truth.len(), self.dirty.len(), "truth/dirty must align");
        assert!(
            satisfies_all(
                self.rules.cfds(),
                self.rules.mds(),
                &self.truth,
                &self.master
            ),
            "{}: ground truth must satisfy Σ and Γ",
            self.name
        );
        assert!(
            satisfies_all(self.rules.cfds(), &[], &self.master, &self.master),
            "{}: master data must satisfy Σ",
            self.name
        );
        assert_eq!(
            self.errors,
            self.truth.diff_cells(&self.dirty),
            "error count must match"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_the_papers() {
        let p = GenParams::default();
        assert_eq!(p.dup_rate, 0.4);
        assert_eq!(p.asserted_rate, 0.4);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn bad_rates_rejected() {
        let p = GenParams {
            noise_rate: 1.5,
            ..GenParams::default()
        };
        assert!(p.validate().is_err());
        let p = GenParams {
            tuples: 0,
            ..GenParams::default()
        };
        assert!(p.validate().is_err());
    }
}
