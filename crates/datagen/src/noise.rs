//! Noise injection and confidence assignment (§8 "Dirty datasets").

use rand::rngs::SmallRng;
use rand::Rng;

use uniclean_model::{AttrId, FixMark, Relation, Value};

/// Corrupt `rate` of the cells of `rel` over `attrs`, returning the number
/// of cells actually changed. Corruption styles: single-character typo,
/// value swap from the column's active domain, or truncation — the error
/// classes record-matching data actually exhibits.
pub fn corrupt(rel: &mut Relation, attrs: &[AttrId], rate: f64, rng: &mut SmallRng) -> usize {
    let mut domains: Vec<Vec<Value>> = attrs.iter().map(|a| rel.active_domain(*a)).collect();
    for d in &mut domains {
        d.truncate(200); // enough variety for swaps; keeps memory flat
    }
    let mut errors = 0usize;
    for i in 0..rel.len() {
        let mut t = rel.tuple_mut(uniclean_model::TupleId::from(i));
        for (k, &a) in attrs.iter().enumerate() {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let old = t.value(a).clone();
            let new = corrupt_value(&old, &domains[k], rng);
            if new != old {
                t.set(a, new, t.cf(a), FixMark::Untouched);
                errors += 1;
            }
        }
    }
    errors
}

fn corrupt_value(v: &Value, domain: &[Value], rng: &mut SmallRng) -> Value {
    let s = v.render().into_owned();
    match rng.gen_range(0..4u8) {
        // Typo: substitute one character.
        0 if !s.is_empty() => {
            let chars: Vec<char> = s.chars().collect();
            let pos = rng.gen_range(0..chars.len());
            let repl = (b'a' + rng.gen_range(0..26u8)) as char;
            let mut out: String = chars[..pos].iter().collect();
            out.push(repl);
            out.extend(&chars[pos + 1..]);
            Value::str(out)
        }
        // Typo: insert one character.
        1 => {
            let chars: Vec<char> = s.chars().collect();
            let pos = rng.gen_range(0..=chars.len());
            let ins = (b'a' + rng.gen_range(0..26u8)) as char;
            let mut out: String = chars[..pos].iter().collect();
            out.push(ins);
            out.extend(&chars[pos..]);
            Value::str(out)
        }
        // Swap with another domain value.
        2 if domain.len() > 1 => {
            let pick = &domain[rng.gen_range(0..domain.len())];
            if pick == v {
                corrupt_value(v, &[], rng) // fall back to a typo
            } else {
                pick.clone()
            }
        }
        // Truncate the tail.
        _ if s.chars().count() > 2 => {
            let chars: Vec<char> = s.chars().collect();
            Value::str(chars[..chars.len() - 1].iter().collect::<String>())
        }
        _ => {
            let mut out = s;
            out.push('x');
            Value::str(out)
        }
    }
}

/// Assign confidence per §8: for each attribute, a random `asr%` of tuples
/// get `cf = 1.0`, the rest `cf = 0.0`.
///
/// An asserted cell must actually be correct: confidence is "placed by the
/// user in the accuracy of the data" and the whole deterministic-fix
/// machinery of §5 *assumes* the correctness of confidence ("we assume the
/// correctness of master data, data cleaning rules and confidence levels
/// when studying deterministic fixes"). A tuple drawn for assertion whose
/// cell happens to be corrupted therefore keeps `cf = 0` — the user would
/// not have verified a wrong value.
pub fn assign_confidence(
    rel: &mut Relation,
    truth: &Relation,
    asserted_rate: f64,
    rng: &mut SmallRng,
) {
    let arity = rel.schema().arity();
    for a in 0..arity {
        let a = AttrId::from(a);
        for i in 0..rel.len() {
            let id = uniclean_model::TupleId::from(i);
            let correct = rel.tuple(id).value(a) == truth.tuple(id).value(a);
            let cf = if correct && rng.gen::<f64>() < asserted_rate {
                1.0
            } else {
                0.0
            };
            let mut t = rel.tuple_mut(id);
            let v = t.value(a).clone();
            t.set(a, v, cf, FixMark::Untouched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use uniclean_model::{Schema, Tuple, TupleId};

    fn rel(n: usize) -> Relation {
        let s = Schema::of_strings("r", &["A", "B"]);
        Relation::new(
            s,
            (0..n)
                .map(|i| Tuple::of_strs(&[&format!("alpha{i}"), &format!("beta{i}")], 0.0))
                .collect(),
        )
    }

    #[test]
    fn corruption_rate_is_respected() {
        let mut r = rel(2000);
        let attrs: Vec<AttrId> = r.schema().attr_ids().collect();
        let mut rng = SmallRng::seed_from_u64(7);
        let errors = corrupt(&mut r, &attrs, 0.10, &mut rng);
        let cells = 2000 * 2;
        let rate = errors as f64 / cells as f64;
        assert!(
            (0.07..=0.13).contains(&rate),
            "rate {rate} too far from 0.10"
        );
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let mut r = rel(100);
        let clean = r.clone();
        let attrs: Vec<AttrId> = r.schema().attr_ids().collect();
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(corrupt(&mut r, &attrs, 0.0, &mut rng), 0);
        assert_eq!(clean.diff_cells(&r), 0);
    }

    #[test]
    fn corruption_is_reproducible() {
        let mut a = rel(200);
        let mut b = rel(200);
        let attrs: Vec<AttrId> = a.schema().attr_ids().collect();
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        corrupt(&mut a, &attrs, 0.2, &mut r1);
        corrupt(&mut b, &attrs, 0.2, &mut r2);
        assert_eq!(a.diff_cells(&b), 0);
    }

    #[test]
    fn corrupted_values_differ_from_originals() {
        let mut r = rel(500);
        let clean = r.clone();
        let attrs: Vec<AttrId> = r.schema().attr_ids().collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let errors = corrupt(&mut r, &attrs, 0.5, &mut rng);
        assert_eq!(clean.diff_cells(&r), errors);
    }

    #[test]
    fn confidence_rate_is_respected() {
        let truth = rel(3000);
        let mut r = rel(3000);
        let mut rng = SmallRng::seed_from_u64(11);
        assign_confidence(&mut r, &truth, 0.4, &mut rng);
        let a = AttrId(0);
        let asserted = (0..r.len())
            .filter(|&i| r.tuple(TupleId::from(i)).cf(a) == 1.0)
            .count();
        let rate = asserted as f64 / r.len() as f64;
        assert!(
            (0.35..=0.45).contains(&rate),
            "rate {rate} too far from 0.4"
        );
        // Everything is either fully asserted or fully unasserted.
        assert!((0..r.len()).all(|i| {
            let cf = r.tuple(TupleId::from(i)).cf(a);
            cf == 1.0 || cf == 0.0
        }));
    }

    #[test]
    fn corrupted_cells_are_never_asserted() {
        let truth = rel(500);
        let mut r = rel(500);
        let attrs: Vec<AttrId> = r.schema().attr_ids().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        corrupt(&mut r, &attrs, 0.3, &mut rng);
        assign_confidence(&mut r, &truth, 0.9, &mut rng);
        for i in 0..r.len() {
            let id = TupleId::from(i);
            for &a in &attrs {
                if r.tuple(id).value(a) != truth.tuple(id).value(a) {
                    assert_eq!(r.tuple(id).cf(a), 0.0, "corrupted cell asserted");
                }
            }
        }
    }
}
