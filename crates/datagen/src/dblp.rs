//! DBLP-like workload: bibliography records (12 attributes, 7 CFDs + 3 MDs,
//! matching the paper's rule counts).
//!
//! Entities are *papers*. `Key` and `Pages` embed the paper index and are
//! unique; `Journal` functionally determines `Publisher` and `Venue`;
//! `Year` is functional in `(Journal, Volume)` (each journal has a fixed
//! base year). MD premises always include `Key` or `Pages`, keeping them
//! entity-unique.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uniclean_model::{Relation, Schema, Tuple, TupleId, Value};
use uniclean_rules::{parse_rules, RuleSet};

use crate::dict;
use crate::noise::{assign_confidence, corrupt};
use crate::spec::{GenParams, Workload};

/// The 12 DBLP attributes.
pub const DBLP_ATTRS: &[&str] = &[
    "Key",
    "Title",
    "Authors",
    "Journal",
    "Year",
    "Volume",
    "Number",
    "Pages",
    "Publisher",
    "Venue",
    "Type",
    "EE",
];

fn rule_text() -> String {
    let mut t = String::new();
    t.push_str("cfd d1: dblp([Key] -> [Title])\n");
    t.push_str("cfd d2: dblp([Key] -> [Authors])\n");
    t.push_str("cfd d3: dblp([Key] -> [Year])\n");
    t.push_str("cfd d4: dblp([Journal] -> [Publisher])\n");
    t.push_str("cfd d5: dblp([Journal] -> [Venue])\n");
    t.push_str("cfd d6: dblp([Journal, Volume] -> [Year])\n");
    t.push_str("cfd d7: dblp([Journal=TODS] -> [Type=article])\n");
    t.push_str(
        "md dm1: dblp[Key] = dblpm[Key] -> dblp[Title] <=> dblpm[Title], dblp[Authors] <=> dblpm[Authors]\n",
    );
    t.push_str(
        "md dm2: dblp[Title] ~lev(2) dblpm[Title] AND dblp[Pages] = dblpm[Pages] -> dblp[Authors] <=> dblpm[Authors], dblp[EE] <=> dblpm[EE]\n",
    );
    t.push_str(
        "md dm3: dblp[Title] ~lev(2) dblpm[Title] AND dblp[Journal] = dblpm[Journal] AND dblp[Pages] = dblpm[Pages] -> dblp[Key] <=> dblpm[Key]\n",
    );
    t
}

/// Rules for the similarity-heavy variant: every MD premise leads with a
/// `~jaro`/`~jw`/`~qgram`/`~lev` conjunct (no entity-unique equality), so
/// MD matching exercises exactly the predicate families that used to
/// degrade to a full master scan. Used by the access-path benchmark.
fn similarity_rule_text() -> String {
    let mut t = String::new();
    t.push_str("cfd d4: dblp([Journal] -> [Publisher])\n");
    t.push_str("cfd d5: dblp([Journal] -> [Venue])\n");
    t.push_str("md sv1: dblp[Title] ~qgram(3,0.55) dblpm[Title] -> dblp[Key] <=> dblpm[Key]\n");
    t.push_str("md sv2: dblp[Authors] ~jaro(0.88) dblpm[Authors] -> dblp[EE] <=> dblpm[EE]\n");
    t.push_str(
        "md sv3: dblp[Title] ~jw(0.9) dblpm[Title] AND dblp[Authors] ~qgram(2,0.5) dblpm[Authors] -> dblp[Journal] <=> dblpm[Journal]\n",
    );
    t.push_str("md sv4: dblp[Title] ~lev(2) dblpm[Title] -> dblp[Pages] <=> dblpm[Pages]\n");
    t
}

/// A paper's attribute bundle, functional in its index.
fn paper_row(i: usize) -> Vec<Value> {
    let j = i % dict::JOURNALS.len();
    let (journal, publisher, venue) = dict::JOURNALS[j];
    let volume = 1 + (i / dict::JOURNALS.len()) % 40;
    let year = 1960 + j + volume; // per-journal base year + volume
    let adj = dict::TITLE_ADJ[i % dict::TITLE_ADJ.len()];
    let noun = dict::TITLE_NOUN[(i / dict::TITLE_ADJ.len()) % dict::TITLE_NOUN.len()];
    let noun2 = dict::TITLE_NOUN[(i / 7) % dict::TITLE_NOUN.len()];
    let a1 = format!(
        "{} {}",
        dict::FIRST_NAMES[i % dict::FIRST_NAMES.len()],
        dict::LAST_NAMES[(i / 3) % dict::LAST_NAMES.len()]
    );
    let a2 = format!(
        "{} {}",
        dict::FIRST_NAMES[(i / 5) % dict::FIRST_NAMES.len()],
        dict::LAST_NAMES[(i / 11) % dict::LAST_NAMES.len()]
    );
    vec![
        Value::str(format!(
            "journals/{}/{}",
            journal.to_lowercase().replace(' ', ""),
            i
        )),
        Value::str(format!("{adj} {noun} for {noun2}")),
        Value::str(format!("{a1} and {a2}")),
        Value::str(journal),
        Value::str(year.to_string()),
        Value::str(volume.to_string()),
        Value::str((1 + i % 4).to_string()),
        Value::str(format!("{}-{}", 1 + 10 * i, 9 + 10 * i)),
        Value::str(publisher),
        Value::str(venue),
        Value::str("article"),
        Value::str(format!("https://doi.org/10.1000/jdq.{i}")),
    ]
}

/// Generate the DBLP workload.
pub fn dblp_workload(params: &GenParams) -> Workload {
    dblp_workload_with_rules(params, "dblp", &rule_text(), Some((7, 3)))
}

/// The similarity-heavy DBLP variant: same records and noise process, but
/// MDs whose premises are led by `~qgram`/`~jaro`/`~jw`/`~lev` conjuncts
/// instead of entity-unique equalities. This is the workload where the
/// engine previously fell back to O(|D|·|Dm|) scans for candidate
/// generation; the `perf` benchmark measures the access-path planner on
/// it (`BENCH_pr5.json`).
pub fn dblp_similarity_workload(params: &GenParams) -> Workload {
    dblp_workload_with_rules(params, "dblp-sim", &similarity_rule_text(), None)
}

fn dblp_workload_with_rules(
    params: &GenParams,
    name: &'static str,
    rules_text: &str,
    expect_counts: Option<(usize, usize)>,
) -> Workload {
    params.validate().expect("invalid generation parameters");
    let schema = Schema::of_strings("dblp", DBLP_ATTRS);
    let master_schema: Arc<Schema> = Arc::new(Schema::new(
        "dblpm",
        schema.attrs().iter().map(|a| (a.name.clone(), a.ty)),
    ));
    let parsed = parse_rules(rules_text, &schema, Some(&master_schema)).expect("DBLP rules parse");
    if let Some((cfds, mds)) = expect_counts {
        assert_eq!(parsed.cfds.len(), cfds, "paper rule count");
        assert_eq!(parsed.positive_mds.len(), mds, "paper rule count");
    }
    let rules = RuleSet::new(
        schema.clone(),
        Some(master_schema.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );

    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xD8_1F);
    let m = params.master_tuples;
    let mut master = Relation::empty(master_schema);
    for i in 0..m {
        master.push(Tuple::from_values(paper_row(i), 1.0));
    }

    // Pools sized for several records per paper (bibliography records of
    // the same paper from different sources), feeding variable CFDs and
    // entropy with within-relation redundancy.
    const ROWS_PER_ENTITY: f64 = 6.0;
    let dup_pool =
        ((params.tuples as f64 * params.dup_rate / ROWS_PER_ENTITY).ceil() as usize).clamp(1, m);
    let non_master_pool =
        ((params.tuples as f64 * (1.0 - params.dup_rate) / ROWS_PER_ENTITY).ceil() as usize).max(1);
    let mut truth = Relation::empty(schema.clone());
    let mut paper_of_row: Vec<Option<usize>> = Vec::with_capacity(params.tuples);
    for _ in 0..params.tuples {
        let is_dup = rng.gen::<f64>() < params.dup_rate;
        let pidx = if is_dup {
            let p = rng.gen_range(0..dup_pool);
            paper_of_row.push(Some(p));
            p
        } else {
            paper_of_row.push(None);
            m + rng.gen_range(0..non_master_pool)
        };
        truth.push(Tuple::from_values(paper_row(pidx), 0.0));
    }

    let mut dirty = truth.clone();
    let attrs: Vec<uniclean_model::AttrId> = schema.attr_ids().collect();
    let errors = corrupt(&mut dirty, &attrs, params.noise_rate, &mut rng);
    assign_confidence(&mut dirty, &truth, params.asserted_rate, &mut rng);

    let true_matches: HashSet<(TupleId, TupleId)> = paper_of_row
        .iter()
        .enumerate()
        .filter_map(|(r, p)| p.map(|p| (TupleId::from(r), TupleId::from(p))))
        .collect();

    Workload {
        name,
        rules,
        truth,
        dirty,
        master,
        true_matches,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenParams {
        GenParams {
            tuples: 300,
            master_tuples: 80,
            ..GenParams::default()
        }
    }

    #[test]
    fn workload_invariants_hold() {
        let w = dblp_workload(&small());
        w.check_invariants();
        assert_eq!(w.truth.schema().arity(), 12);
    }

    #[test]
    fn pages_are_unique_per_paper() {
        let w = dblp_workload(&small());
        let pages = w.master.schema().attr_id("Pages").unwrap();
        let keys = w.master.schema().attr_id("Key").unwrap();
        let mut seen = std::collections::HashMap::new();
        for (_, t) in w.master.iter() {
            let prev = seen.insert(t.value(pages).clone(), t.value(keys).clone());
            assert!(prev.is_none(), "duplicate pages in master");
        }
    }

    #[test]
    fn journal_determines_publisher_in_truth() {
        let w = dblp_workload(&small());
        let j = w.truth.schema().attr_id("Journal").unwrap();
        let p = w.truth.schema().attr_id("Publisher").unwrap();
        let mut map = std::collections::HashMap::new();
        for (_, t) in w.truth.iter() {
            let prev = map.insert(t.value(j).clone(), t.value(p).clone());
            if let Some(prev) = prev {
                assert_eq!(&prev, t.value(p), "Journal → Publisher must be functional");
            }
        }
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = dblp_workload(&small());
        let b = dblp_workload(&small());
        let c = dblp_workload(&GenParams { seed: 7, ..small() });
        assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
        assert!(a.dirty.diff_cells(&c.dirty) > 0);
    }
}
