//! Shared experiment plumbing: workload construction and the quality
//! numbers each figure plots.

use uniclean_baselines::{quaid_repair, sortn_match, uniclean_matches, SortNConfig};
use uniclean_core::{CleanConfig, CleanResult, Cleaner, MasterSource, Phase, PhaseObserver};
use uniclean_datagen::{
    dblp_workload, hosp_workload, tpch_workload, GenParams, TpchScale, Workload,
};
use uniclean_metrics::{matching_quality, repair_quality, PrecisionRecall};
use uniclean_model::FixMark;

/// Which dataset an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// HOSP-like (19 attrs, 23 CFDs + 3 MDs).
    Hosp,
    /// DBLP-like (12 attrs, 7 CFDs + 3 MDs).
    Dblp,
    /// TPC-H-like (58 attrs, 55 CFDs + 10 MDs).
    Tpch,
}

impl DatasetKind {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hosp" => Some(DatasetKind::Hosp),
            "dblp" => Some(DatasetKind::Dblp),
            "tpch" => Some(DatasetKind::Tpch),
            _ => None,
        }
    }

    /// Label used in figure ids.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Hosp => "hosp",
            DatasetKind::Dblp => "dblp",
            DatasetKind::Tpch => "tpch",
        }
    }
}

/// Default (quick) and `--full` (paper-leaning) sizes per dataset.
pub fn scaled_params(kind: DatasetKind, full: bool) -> GenParams {
    let (tuples, master) = match (kind, full) {
        (DatasetKind::Hosp, false) => (2000, 600),
        (DatasetKind::Hosp, true) => (20_000, 5000),
        (DatasetKind::Dblp, false) => (2000, 600),
        (DatasetKind::Dblp, true) => (40_000, 5000),
        (DatasetKind::Tpch, false) => (1000, 300),
        (DatasetKind::Tpch, true) => (10_000, 2000),
    };
    GenParams {
        tuples,
        master_tuples: master,
        ..GenParams::default()
    }
}

/// Build a workload for a dataset.
pub fn dataset_workload(kind: DatasetKind, params: &GenParams) -> Workload {
    match kind {
        DatasetKind::Hosp => hosp_workload(params),
        DatasetKind::Dblp => dblp_workload(params),
        DatasetKind::Tpch => tpch_workload(params, TpchScale::default()),
    }
}

/// The experiments' cleaning configuration: the paper set the confidence
/// threshold to 1.0 and the entropy threshold to 0.8 (§8).
pub fn experiment_config() -> CleanConfig {
    CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    }
}

/// A cleaning session over a workload's rules and master data with the
/// experiments' configuration.
pub fn session(w: &Workload) -> Cleaner {
    Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(experiment_config())
        .build()
        .expect("workloads build valid sessions")
}

/// Run UniClean up to `phase` on a workload.
pub fn run_uni(w: &Workload, phase: Phase) -> CleanResult {
    session(w).clean(&w.dirty, phase)
}

/// Run UniClean up to `phase` with a [`PhaseObserver`] attached (the
/// instrumentation surface the scalability experiments consume).
pub fn run_uni_observed(
    w: &Workload,
    phase: Phase,
    observer: &mut dyn PhaseObserver,
) -> CleanResult {
    session(w).clean_observed(&w.dirty, phase, observer)
}

/// Repair precision/recall of a cleaning variant on `w`, building a fresh
/// session for variants that need one. Callers evaluating several
/// session-backed variants on the same workload should build the session
/// once and use [`repair_pr_with`].
pub fn repair_pr(w: &Workload, variant: &str) -> PrecisionRecall {
    match variant {
        "uni" | "crepair" | "crepair+erepair" => repair_pr_with(&session(w), w, variant),
        "uni-cfd" => {
            let uni = Cleaner::builder()
                .rules(w.rules.without_mds())
                .config(experiment_config())
                .build()
                .expect("CFD-only sessions need no master");
            let r = uni.clean(&w.dirty, Phase::Full);
            repair_quality(&w.dirty, &r.repaired, &w.truth)
        }
        "quaid" => {
            let (repaired, _) = quaid_repair(&w.dirty, &w.rules, &experiment_config());
            repair_quality(&w.dirty, &repaired, &w.truth)
        }
        other => panic!("unknown repair variant `{other}`"),
    }
}

/// [`repair_pr`] for the session-backed phase-prefix variants, reusing one
/// prebuilt [`Cleaner`] (and its master index) across variants.
pub fn repair_pr_with(uni: &Cleaner, w: &Workload, variant: &str) -> PrecisionRecall {
    let phase = match variant {
        "uni" => Phase::Full,
        "crepair" => Phase::CRepair,
        "crepair+erepair" => Phase::CERepair,
        other => panic!("`{other}` is not a session-backed phase variant"),
    };
    let r = uni.clean(&w.dirty, phase);
    repair_quality(&w.dirty, &r.repaired, &w.truth)
}

/// Repair F-measure of a variant.
pub fn repair_f1(w: &Workload, variant: &str) -> f64 {
    repair_pr(w, variant).f1()
}

/// Matching F-measure (×100, the paper's "matched attributes %") of SortN
/// on the *dirty* data.
pub fn matching_f1_sortn(w: &Workload) -> f64 {
    let found = sortn_match(&w.dirty, &w.master, w.rules.mds(), SortNConfig::default());
    matching_quality(&found, &w.true_matches).f1() * 100.0
}

/// Matching F-measure (×100) of UniClean: matches identified on the
/// *repaired* data — repairing helps matching (Exp-2).
pub fn matching_f1_uni(w: &Workload) -> f64 {
    let r = run_uni(w, Phase::Full);
    let found = uniclean_matches(&r.repaired, &w.master, w.rules.mds());
    matching_quality(&found, &w.true_matches).f1() * 100.0
}

/// Share of deterministic fixes among all fixes of a full run (%).
pub fn deterministic_share(w: &Workload) -> f64 {
    let r = run_uni(w, Phase::Full);
    let det = r.report.count_final(FixMark::Deterministic);
    let total = r.report.cells_touched();
    if total == 0 {
        0.0
    } else {
        det as f64 / total as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: DatasetKind) -> Workload {
        dataset_workload(
            kind,
            &GenParams {
                tuples: 150,
                master_tuples: 50,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn uni_beats_quaid_on_hosp() {
        // The headline Exp-1 claim at a tiny scale.
        let w = tiny(DatasetKind::Hosp);
        let uni = repair_f1(&w, "uni");
        let quaid = repair_f1(&w, "quaid");
        assert!(uni > quaid, "uni {uni} must beat quaid {quaid}");
    }

    #[test]
    fn uni_matching_beats_sortn_on_hosp() {
        // The headline Exp-2 claim at a tiny scale.
        let w = tiny(DatasetKind::Hosp);
        let uni = matching_f1_uni(&w);
        let sortn = matching_f1_sortn(&w);
        assert!(uni >= sortn, "uni {uni} must beat sortn {sortn}");
    }

    #[test]
    fn crepair_precision_is_highest() {
        // The Exp-3 shape: deterministic fixes are the most precise.
        let w = tiny(DatasetKind::Hosp);
        let c = repair_pr(&w, "crepair");
        let full = repair_pr(&w, "uni");
        assert!(
            c.precision >= full.precision - 1e-9,
            "c {0} vs full {1}",
            c.precision,
            full.precision
        );
        assert!(c.recall <= full.recall + 1e-9);
    }

    #[test]
    fn variants_work_on_every_dataset() {
        for kind in [DatasetKind::Hosp, DatasetKind::Dblp, DatasetKind::Tpch] {
            let w = tiny(kind);
            let f1 = repair_f1(&w, "uni");
            assert!((0.0..=1.0).contains(&f1), "{kind:?} f1 {f1}");
        }
    }

    #[test]
    fn dataset_parse_roundtrip() {
        for kind in [DatasetKind::Hosp, DatasetKind::Dblp, DatasetKind::Tpch] {
            assert_eq!(DatasetKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(DatasetKind::parse("nope"), None);
    }
}
