//! `perf` — phase-throughput benchmark for the parallel internals and the
//! value-interning layer (the `BENCH_pr2.json` generator).
//!
//! Measures cRepair and eRepair tuples/sec on generated HOSP and DBLP
//! workloads across worker-thread counts (1/2/4/8) and interning on/off,
//! then writes a machine-readable JSON report. The determinism suite
//! guarantees every configuration produces identical repairs, so the
//! numbers compare pure wall-clock.
//!
//! ```text
//! cargo run --release -p uniclean-bench --bin perf               # full run
//! cargo run --release -p uniclean-bench --bin perf -- --smoke    # CI smoke
//!    [--out BENCH_pr2.json] [--tuples 10000] [--master 2000] [--repeat 3]
//! ```
//!
//! `--smoke` shrinks the workloads to a few hundred tuples, runs one
//! repeat, validates the emitted JSON and exits nonzero on any failure —
//! the CI `bench-smoke` job runs exactly this.

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use uniclean_bench::figure::json_num;
use uniclean_bench::{validate_json, Args};
use uniclean_core::{CleanConfig, Cleaner, MasterSource, Phase, PhaseKind, PhaseTimings};
use uniclean_datagen::{dblp_workload, hosp_workload, GenParams, Workload};

struct RunResult {
    threads: usize,
    interning: bool,
    crepair_seconds: f64,
    erepair_seconds: f64,
    fixes: usize,
}

struct DatasetReport {
    name: &'static str,
    tuples: usize,
    master_tuples: usize,
    runs: Vec<RunResult>,
}

fn measure(w: &Workload, threads: usize, interning: bool, repeat: usize) -> RunResult {
    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        parallelism: Some(NonZeroUsize::new(threads).expect("threads > 0")),
        interning,
        ..CleanConfig::default()
    };
    let cleaner = Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(cfg)
        .build()
        .expect("workloads build valid sessions");
    let mut best_c = f64::INFINITY;
    let mut best_e = f64::INFINITY;
    let mut fixes = 0;
    for _ in 0..repeat.max(1) {
        let mut timings = PhaseTimings::default();
        let r = cleaner.clean_observed(&w.dirty, Phase::CERepair, &mut timings);
        for s in &timings.stats {
            match s.phase {
                PhaseKind::CRepair => best_c = best_c.min(s.seconds),
                PhaseKind::ERepair => best_e = best_e.min(s.seconds),
                PhaseKind::HRepair => {}
            }
        }
        fixes = r.report.len();
    }
    RunResult {
        threads,
        interning,
        crepair_seconds: best_c,
        erepair_seconds: best_e,
        fixes,
    }
}

fn bench_dataset(
    name: &'static str,
    w: &Workload,
    thread_counts: &[usize],
    repeat: usize,
) -> DatasetReport {
    let mut runs = Vec::new();
    for &threads in thread_counts {
        for interning in [true, false] {
            eprintln!("  {name}: threads={threads} interning={interning}…");
            runs.push(measure(w, threads, interning, repeat));
        }
    }
    DatasetReport {
        name,
        tuples: w.dirty.len(),
        master_tuples: w.master.len(),
        runs,
    }
}

fn tuples_per_sec(tuples: usize, seconds: f64) -> f64 {
    if seconds > 0.0 {
        tuples as f64 / seconds
    } else {
        f64::INFINITY
    }
}

/// A JSON number rounded to `decimals` places; non-finite values render as
/// `null` (via [`json_num`]) instead of the invalid token `inf`/`NaN`.
fn num(x: f64, decimals: u32) -> String {
    let scale = 10f64.powi(decimals as i32);
    json_num((x * scale).round() / scale)
}

/// Hand-rolled JSON (the build is offline — no serde), same shape a serde
/// derive would produce.
fn render_json(reports: &[DatasetReport], smoke: bool, repeat: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr2_parallel_interning\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"note\": \"thread-scaling numbers are only meaningful when available_parallelism > 1 \
         (on one core extra workers are pure overhead); the interning comparison is \
         measurable at any core count\","
    );
    let _ = writeln!(out, "  \"repeat\": {repeat},");
    let _ = writeln!(out, "  \"phases\": [\"cRepair\", \"eRepair\"],");
    let _ = writeln!(out, "  \"datasets\": [");
    for (di, d) in reports.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", d.name);
        let _ = writeln!(out, "      \"tuples\": {},", d.tuples);
        let _ = writeln!(out, "      \"master_tuples\": {},", d.master_tuples);
        let _ = writeln!(out, "      \"runs\": [");
        let base_c = d
            .runs
            .iter()
            .find(|r| r.threads == 1 && r.interning)
            .map(|r| r.crepair_seconds);
        let base_e = d
            .runs
            .iter()
            .find(|r| r.threads == 1 && r.interning)
            .map(|r| r.erepair_seconds);
        for (ri, r) in d.runs.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"threads\": {},", r.threads);
            let _ = writeln!(out, "          \"interning\": {},", r.interning);
            let _ = writeln!(out, "          \"fixes\": {},", r.fixes);
            let _ = writeln!(
                out,
                "          \"crepair_seconds\": {},",
                num(r.crepair_seconds, 6)
            );
            let _ = writeln!(
                out,
                "          \"crepair_tuples_per_sec\": {},",
                num(tuples_per_sec(d.tuples, r.crepair_seconds), 1)
            );
            let _ = writeln!(
                out,
                "          \"erepair_seconds\": {},",
                num(r.erepair_seconds, 6)
            );
            let _ = writeln!(
                out,
                "          \"erepair_tuples_per_sec\": {},",
                num(tuples_per_sec(d.tuples, r.erepair_seconds), 1)
            );
            let speed = |base: Option<f64>, mine: f64| -> f64 {
                match base {
                    Some(b) if mine > 0.0 => b / mine,
                    _ => 1.0,
                }
            };
            let _ = writeln!(
                out,
                "          \"crepair_speedup_vs_1thread_interned\": {},",
                num(speed(base_c, r.crepair_seconds), 3)
            );
            let _ = writeln!(
                out,
                "          \"erepair_speedup_vs_1thread_interned\": {}",
                num(speed(base_e, r.erepair_seconds), 3)
            );
            let comma = if ri + 1 < d.runs.len() { "," } else { "" };
            let _ = writeln!(out, "        }}{comma}");
        }
        let _ = writeln!(out, "      ]");
        let comma = if di + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn render_table(reports: &[DatasetReport]) -> String {
    let mut out = String::new();
    for d in reports {
        let _ = writeln!(
            out,
            "## {} — {} tuples, {} master",
            d.name, d.tuples, d.master_tuples
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>16} {:>16} {:>8}",
            "threads", "interning", "cRepair tup/s", "eRepair tup/s", "fixes"
        );
        for r in &d.runs {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>16.0} {:>16.0} {:>8}",
                r.threads,
                if r.interning { "on" } else { "off" },
                tuples_per_sec(d.tuples, r.crepair_seconds),
                tuples_per_sec(d.tuples, r.erepair_seconds),
                r.fixes
            );
        }
        let _ = writeln!(out);
    }
    out
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let out_path = args.get_or("out", "BENCH_pr2.json").to_string();
    let (tuples, master, repeat, thread_counts): (usize, usize, usize, Vec<usize>) = if smoke {
        (200, 80, 1, vec![1, 2])
    } else {
        (
            args.get_usize("tuples", 10_000),
            args.get_usize("master", 2_000),
            args.get_usize("repeat", 3),
            vec![1, 2, 4, 8],
        )
    };

    let started = Instant::now();
    let params = GenParams {
        tuples,
        master_tuples: master,
        ..GenParams::default()
    };
    eprintln!("generating workloads ({tuples} tuples, {master} master)…");
    let hosp = hosp_workload(&params);
    let dblp = dblp_workload(&params);
    let reports = vec![
        bench_dataset("hosp", &hosp, &thread_counts, repeat),
        bench_dataset("dblp", &dblp, &thread_counts, repeat),
    ];

    let json = render_json(&reports, smoke, repeat);
    if let Err(pos) = validate_json(&json) {
        eprintln!("emitted JSON is malformed at byte {pos}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    // Read back and re-validate: the smoke contract is "the file on disk
    // parses", not "the string in memory did".
    match std::fs::read_to_string(&out_path) {
        Ok(disk) if validate_json(&disk).is_ok() => {}
        Ok(_) => {
            eprintln!("{out_path} does not round-trip as valid JSON");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot re-read {out_path}: {e}");
            std::process::exit(1);
        }
    }

    print!("{}", render_table(&reports));
    println!(
        "wrote {out_path} ({} datasets, {:.1}s total){}",
        reports.len(),
        started.elapsed().as_secs_f64(),
        if smoke { " [smoke]" } else { "" }
    );
}
