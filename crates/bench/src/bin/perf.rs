//! `perf` — phase-throughput benchmark for the parallel internals, the
//! value-interning layer (the `BENCH_pr2.json` generator), the
//! incremental `clean_delta` path (the `BENCH_pr3.json` generator), the
//! columnar storage layer (the `BENCH_pr4.json` generator), the
//! master-index access-path planner (the `BENCH_pr5.json` generator),
//! the bit-parallel similarity kernels (the `BENCH_pr8.json`
//! generator: Myers vs the scalar DPs it replaced, plus a like-for-like
//! re-run of the PR5 probe workload), and the runtime-dispatched SIMD
//! engine (the `BENCH_pr9.json` generator: vectorized gram hashing vs
//! the batched scalar kernel, plus the column-at-a-time Myers driver vs
//! per-value dispatch).
//!
//! Part 1 measures cRepair and eRepair tuples/sec on generated HOSP and
//! DBLP workloads across worker-thread counts (1/2/4/8) and interning
//! on/off. Part 2 replays an append-only service: a 10k-tuple HOSP base
//! absorbed through `Cleaner::begin`, then ten 1% batches through
//! `Cleaner::clean_delta`, each timed against a from-scratch reclean of
//! the concatenated relation — and *verified bit-identical to it* before
//! any number is reported. Part 3 compares the columnar, symbol-native
//! store against the row-major `Vec<Tuple>` representation it replaced:
//! resident heap bytes for the same HOSP instance and cell-scan
//! throughput (null sweep + value-equality sweep), with the scan answers
//! cross-checked between representations before timing is trusted. All
//! reports are machine-readable JSON, self-validated by the `json_check`
//! parser.
//!
//! ```text
//! cargo run --release -p uniclean-bench --bin perf               # full run
//! cargo run --release -p uniclean-bench --bin perf -- --smoke    # CI smoke
//!    [--out BENCH_pr2.json] [--delta-out BENCH_pr3.json]
//!    [--storage-out BENCH_pr4.json] [--sim-out BENCH_pr5.json]
//!    [--kernels-out BENCH_pr8.json] [--kernels-only] [--sim-only]
//!    [--simd-out BENCH_pr9.json] [--simd-only]
//!    [--tuples 10000] [--master 2000] [--repeat 3]
//!    [--delta-base 10000] [--delta-batches 10] [--delta-batch 100]
//! ```
//!
//! `--kernels-only` emits just `BENCH_pr8.json` (the edit-distance kernel
//! microbench plus the PR5 probe-workload re-run), skipping everything
//! else; `--simd-only` likewise emits just `BENCH_pr9.json` (the SIMD
//! dispatch comparison).
//!
//! `--smoke` shrinks the workloads to a few hundred tuples, runs one
//! repeat, validates the emitted JSON and exits nonzero on any failure —
//! the CI `bench-smoke` job runs exactly this.

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use uniclean_bench::figure::json_num;
use uniclean_bench::{validate_json, Args};
use uniclean_core::{CleanConfig, Cleaner, MasterSource, Phase, PhaseTimings};
use uniclean_datagen::{dblp_workload, hosp_workload, GenParams, Workload};
use uniclean_model::json::Json;

struct RunResult {
    threads: usize,
    interning: bool,
    crepair_seconds: f64,
    erepair_seconds: f64,
    fixes: usize,
}

struct DatasetReport {
    name: &'static str,
    tuples: usize,
    master_tuples: usize,
    runs: Vec<RunResult>,
}

fn measure(w: &Workload, threads: usize, interning: bool, repeat: usize) -> RunResult {
    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        parallelism: Some(NonZeroUsize::new(threads).expect("threads > 0")),
        interning,
        ..CleanConfig::default()
    };
    let cleaner = Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(cfg)
        .build()
        .expect("workloads build valid sessions");
    let mut best_c = f64::INFINITY;
    let mut best_e = f64::INFINITY;
    let mut fixes = 0;
    for _ in 0..repeat.max(1) {
        let mut timings = PhaseTimings::default();
        let r = cleaner.clean_observed(&w.dirty, Phase::CERepair, &mut timings);
        for s in &timings.stats {
            match s.phase {
                Phase::CRepair => best_c = best_c.min(s.seconds),
                Phase::ERepair => best_e = best_e.min(s.seconds),
                Phase::HRepair => {}
            }
        }
        fixes = r.report.len();
    }
    RunResult {
        threads,
        interning,
        crepair_seconds: best_c,
        erepair_seconds: best_e,
        fixes,
    }
}

fn bench_dataset(
    name: &'static str,
    w: &Workload,
    thread_counts: &[usize],
    repeat: usize,
) -> DatasetReport {
    let mut runs = Vec::new();
    for &threads in thread_counts {
        for interning in [true, false] {
            eprintln!("  {name}: threads={threads} interning={interning}…");
            runs.push(measure(w, threads, interning, repeat));
        }
    }
    DatasetReport {
        name,
        tuples: w.dirty.len(),
        master_tuples: w.master.len(),
        runs,
    }
}

fn tuples_per_sec(tuples: usize, seconds: f64) -> f64 {
    if seconds > 0.0 {
        tuples as f64 / seconds
    } else {
        f64::INFINITY
    }
}

/// A JSON number rounded to `decimals` places; non-finite values render as
/// `null` (via [`json_num`]) instead of the invalid token `inf`/`NaN`.
fn num(x: f64, decimals: u32) -> String {
    let scale = 10f64.powi(decimals as i32);
    json_num((x * scale).round() / scale)
}

/// Hand-rolled JSON (the build is offline — no serde), same shape a serde
/// derive would produce.
fn render_json(reports: &[DatasetReport], smoke: bool, repeat: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr2_parallel_interning\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"note\": \"thread-scaling numbers are only meaningful when available_parallelism > 1 \
         (on one core extra workers are pure overhead); the interning comparison is \
         measurable at any core count\","
    );
    let _ = writeln!(out, "  \"repeat\": {repeat},");
    let _ = writeln!(out, "  \"phases\": [\"cRepair\", \"eRepair\"],");
    let _ = writeln!(out, "  \"datasets\": [");
    for (di, d) in reports.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", d.name);
        let _ = writeln!(out, "      \"tuples\": {},", d.tuples);
        let _ = writeln!(out, "      \"master_tuples\": {},", d.master_tuples);
        let _ = writeln!(out, "      \"runs\": [");
        let base_c = d
            .runs
            .iter()
            .find(|r| r.threads == 1 && r.interning)
            .map(|r| r.crepair_seconds);
        let base_e = d
            .runs
            .iter()
            .find(|r| r.threads == 1 && r.interning)
            .map(|r| r.erepair_seconds);
        for (ri, r) in d.runs.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"threads\": {},", r.threads);
            let _ = writeln!(out, "          \"interning\": {},", r.interning);
            let _ = writeln!(out, "          \"fixes\": {},", r.fixes);
            let _ = writeln!(
                out,
                "          \"crepair_seconds\": {},",
                num(r.crepair_seconds, 6)
            );
            let _ = writeln!(
                out,
                "          \"crepair_tuples_per_sec\": {},",
                num(tuples_per_sec(d.tuples, r.crepair_seconds), 1)
            );
            let _ = writeln!(
                out,
                "          \"erepair_seconds\": {},",
                num(r.erepair_seconds, 6)
            );
            let _ = writeln!(
                out,
                "          \"erepair_tuples_per_sec\": {},",
                num(tuples_per_sec(d.tuples, r.erepair_seconds), 1)
            );
            let speed = |base: Option<f64>, mine: f64| -> f64 {
                match base {
                    Some(b) if mine > 0.0 => b / mine,
                    _ => 1.0,
                }
            };
            let _ = writeln!(
                out,
                "          \"crepair_speedup_vs_1thread_interned\": {},",
                num(speed(base_c, r.crepair_seconds), 3)
            );
            let _ = writeln!(
                out,
                "          \"erepair_speedup_vs_1thread_interned\": {}",
                num(speed(base_e, r.erepair_seconds), 3)
            );
            let comma = if ri + 1 < d.runs.len() { "," } else { "" };
            let _ = writeln!(out, "        }}{comma}");
        }
        let _ = writeln!(out, "      ]");
        let comma = if di + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn render_table(reports: &[DatasetReport]) -> String {
    let mut out = String::new();
    for d in reports {
        let _ = writeln!(
            out,
            "## {} — {} tuples, {} master",
            d.name, d.tuples, d.master_tuples
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>16} {:>16} {:>8}",
            "threads", "interning", "cRepair tup/s", "eRepair tup/s", "fixes"
        );
        for r in &d.runs {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>16.0} {:>16.0} {:>8}",
                r.threads,
                if r.interning { "on" } else { "off" },
                tuples_per_sec(d.tuples, r.crepair_seconds),
                tuples_per_sec(d.tuples, r.erepair_seconds),
                r.fixes
            );
        }
        let _ = writeln!(out);
    }
    out
}

// ---------------------------------------------------------------------------
// Part 2: the incremental `clean_delta` workload (BENCH_pr3.json).
// ---------------------------------------------------------------------------

struct DeltaStep {
    total_tuples: usize,
    delta_seconds: f64,
    full_seconds: f64,
    escalated: bool,
}

struct DeltaReport {
    base_tuples: usize,
    batch_tuples: usize,
    master_tuples: usize,
    steps: Vec<DeltaStep>,
}

impl DeltaReport {
    fn speedups(&self) -> Vec<f64> {
        self.steps
            .iter()
            .map(|s| {
                if s.delta_seconds > 0.0 {
                    s.full_seconds / s.delta_seconds
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }
}

/// Replay an append-only HOSP service: clean `base` once, then absorb
/// `batches` × `batch` tuples through `clean_delta`, timing each call
/// against a from-scratch `clean` of the same concatenated relation.
/// Every step is verified bit-identical to the reclean before timing is
/// trusted; a divergence aborts the bench with a nonzero exit.
fn bench_delta(base: usize, batches: usize, batch: usize, master: usize) -> DeltaReport {
    let params = GenParams {
        tuples: base + batches * batch,
        master_tuples: master,
        ..GenParams::default()
    };
    let w = hosp_workload(&params);
    let cleaner = Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(CleanConfig {
            eta: 1.0,
            delta_entropy: 0.8,
            parallelism: Some(NonZeroUsize::new(1).expect("nonzero")),
            ..CleanConfig::default()
        })
        .build()
        .expect("workloads build valid sessions");

    let schema = w.dirty.schema().clone();
    let rows = w.dirty.to_tuples();
    let base_rel = uniclean_model::Relation::new(schema.clone(), rows[..base].to_vec());
    let (mut state, _) = cleaner.begin(&base_rel, Phase::Full);

    let mut steps = Vec::with_capacity(batches);
    for i in 0..batches {
        let upto = base + (i + 1) * batch;
        let slice = &rows[upto - batch..upto];
        let escalations_before = state.escalations();

        let started = Instant::now();
        cleaner
            .clean_delta(&mut state, slice)
            .expect("batch tuples match the schema");
        let delta_seconds = started.elapsed().as_secs_f64();

        let concat = uniclean_model::Relation::new(schema.clone(), rows[..upto].to_vec());
        let started = Instant::now();
        let full = cleaner.clean(&concat, Phase::Full);
        let full_seconds = started.elapsed().as_secs_f64();

        // The acceptance criterion: the delta state must be bit-identical
        // to the from-scratch reclean. A bench reporting speedups for a
        // wrong answer would be worse than useless.
        if full.repaired.diff_cells(state.repaired()) != 0
            || full.consistent != state.consistent()
            || full.cost.to_bits() != state.cost().to_bits()
        {
            eprintln!("clean_delta diverged from the full reclean at batch {i}");
            std::process::exit(1);
        }
        steps.push(DeltaStep {
            total_tuples: upto,
            delta_seconds,
            full_seconds,
            escalated: state.escalations() > escalations_before,
        });
        eprintln!(
            "  delta batch {}/{batches}: {:.4}s vs full {:.4}s ({:.1}x)",
            i + 1,
            delta_seconds,
            full_seconds,
            full_seconds / delta_seconds.max(1e-12),
        );
    }
    DeltaReport {
        base_tuples: base,
        batch_tuples: batch,
        master_tuples: master,
        steps,
    }
}

fn render_delta_json(r: &DeltaReport, smoke: bool) -> String {
    let speedups = r.speedups();
    let finite: Vec<f64> = speedups.iter().copied().filter(|s| s.is_finite()).collect();
    let mean = if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr3_incremental_delta\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"dataset\": \"hosp\",");
    let _ = writeln!(out, "  \"phase\": \"full\",");
    let _ = writeln!(
        out,
        "  \"note\": \"each clean_delta call is verified bit-identical (cells, cost, acceptance) \
         to a from-scratch clean of the concatenated relation before its timing is reported; \
         escalated steps fell back to a full reclean by design\","
    );
    let _ = writeln!(out, "  \"base_tuples\": {},", r.base_tuples);
    let _ = writeln!(out, "  \"batch_tuples\": {},", r.batch_tuples);
    let _ = writeln!(out, "  \"batches\": {},", r.steps.len());
    let _ = writeln!(out, "  \"master_tuples\": {},", r.master_tuples);
    let _ = writeln!(out, "  \"steps\": [");
    for (i, (s, sp)) in r.steps.iter().zip(&speedups).enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"batch\": {},", i + 1);
        let _ = writeln!(out, "      \"total_tuples\": {},", s.total_tuples);
        let _ = writeln!(out, "      \"delta_seconds\": {},", num(s.delta_seconds, 6));
        let _ = writeln!(
            out,
            "      \"full_reclean_seconds\": {},",
            num(s.full_seconds, 6)
        );
        let _ = writeln!(out, "      \"speedup\": {},", num(*sp, 2));
        let _ = writeln!(out, "      \"escalated\": {},", s.escalated);
        let _ = writeln!(out, "      \"bit_identical\": true");
        let comma = if i + 1 < r.steps.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"mean_speedup\": {},", num(mean, 2));
    let _ = writeln!(out, "  \"min_speedup\": {}", num(min, 2));
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 3: the columnar storage layer (BENCH_pr4.json).
// ---------------------------------------------------------------------------

struct ScanResult {
    name: &'static str,
    /// Both representations must agree on the scan's answer.
    answer: usize,
    columnar_seconds: f64,
    row_seconds: f64,
}

struct StorageReport {
    tuples: usize,
    arity: usize,
    cells: usize,
    distinct_values: usize,
    columnar_bytes: usize,
    row_major_bytes: usize,
    scans: Vec<ScanResult>,
    /// cRepair/eRepair seconds on this instance (threads=1, interning on)
    /// — the regression reference against the committed BENCH_pr2.json.
    crepair_seconds: f64,
    erepair_seconds: f64,
}

/// Estimated resident heap of the replaced row-major representation:
/// one `Vec<Cell>` per tuple plus one owned string payload per `Str`
/// cell *occurrence* — the historical ingest (`from_csv`, the
/// generators) allocated per cell, it never shared payloads across rows.
fn row_major_bytes(rows: &[uniclean_model::Tuple]) -> usize {
    use uniclean_model::{Cell, Value};
    let mut total = 0usize;
    for t in rows {
        total += std::mem::size_of::<Vec<Cell>>() + t.arity() * std::mem::size_of::<Cell>();
        for c in t.cells() {
            if let Value::Str(s) = &c.value {
                // Arc<str> payload: two refcount words + the bytes.
                total += 16 + s.len();
            }
        }
    }
    total
}

/// Best-of-`repeat` wall time of `f`, which must return the scan answer.
fn time_scan(repeat: usize, mut f: impl FnMut() -> usize) -> (usize, f64) {
    let mut best = f64::INFINITY;
    let mut answer = 0;
    for _ in 0..repeat.max(1) {
        let started = Instant::now();
        answer = f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    (answer, best)
}

/// Compare the columnar store against the row-major representation on the
/// same instance: heap footprint and full-relation cell scans.
fn bench_storage(w: &Workload, repeat: usize) -> StorageReport {
    use uniclean_model::{AttrId, Value};
    let rel = &w.dirty;
    let rows = rel.to_tuples();
    let arity = rel.schema().arity();
    let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();

    let mut scans = Vec::new();

    // Scan 1: null sweep — count null cells across the relation. The
    // columnar side compares each symbol column against the null symbol;
    // the row side walks tuples and asks the value.
    let (col_nulls, col_s) = time_scan(repeat, || {
        let null = rel.null_sym();
        attrs
            .iter()
            .map(|&a| rel.col_syms(a).iter().filter(|&&s| s == null).count())
            .sum()
    });
    let (row_nulls, row_s) = time_scan(repeat, || {
        rows.iter()
            .map(|t| {
                (0..arity)
                    .filter(|&i| t.value(AttrId::from(i)).is_null())
                    .count()
            })
            .sum()
    });
    assert_eq!(col_nulls, row_nulls, "null sweep disagreed across layouts");
    scans.push(ScanResult {
        name: "null_sweep",
        answer: col_nulls,
        columnar_seconds: col_s,
        row_seconds: row_s,
    });

    // Scan 2: value-equality sweep — for every distinct value of the
    // first column (a realistic probe mix), count its occurrences across
    // all columns. Columnar: one interner lookup, then symbol compares.
    // Row: value compares (string content on the hot path).
    let probes: Vec<Value> = rel.active_domain(attrs[0]).into_iter().take(16).collect();
    let (col_hits, col_s) = time_scan(repeat, || {
        probes
            .iter()
            .map(|p| match rel.interner().get(p) {
                None => 0,
                Some(sym) => attrs
                    .iter()
                    .map(|&a| rel.col_syms(a).iter().filter(|&&s| s == sym).count())
                    .sum(),
            })
            .sum()
    });
    let (row_hits, row_s) = time_scan(repeat, || {
        probes
            .iter()
            .map(|p| {
                rows.iter()
                    .map(|t| {
                        (0..arity)
                            .filter(|&i| t.value(AttrId::from(i)) == p)
                            .count()
                    })
                    .sum::<usize>()
            })
            .sum()
    });
    assert_eq!(
        col_hits, row_hits,
        "equality sweep disagreed across layouts"
    );
    scans.push(ScanResult {
        name: "equality_sweep",
        answer: col_hits,
        columnar_seconds: col_s,
        row_seconds: row_s,
    });

    // Phase-throughput reference on the same instance (threads=1,
    // interning on) so a regression against BENCH_pr2.json is visible
    // from this report alone.
    let phase = measure(w, 1, true, repeat);

    StorageReport {
        tuples: rel.len(),
        arity,
        cells: rel.cell_count(),
        distinct_values: rel.interner().len(),
        columnar_bytes: rel.heap_bytes(),
        row_major_bytes: row_major_bytes(&rows),
        scans,
        crepair_seconds: phase.crepair_seconds,
        erepair_seconds: phase.erepair_seconds,
    }
}

fn render_storage_json(r: &StorageReport, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr4_columnar_storage\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"dataset\": \"hosp\",");
    let _ = writeln!(
        out,
        "  \"note\": \"row_major_bytes reconstructs the replaced Vec<Tuple> layout (one Cell per \
         slot, one owned string payload per Str cell occurrence); columnar_bytes is the live \
         store (symbol/cf/mark columns + interner). Scan answers are cross-checked between \
         layouts before timings are reported. crepair/erepair seconds are the threads=1 \
         interning=on reference for regression checks against BENCH_pr2.json.\","
    );
    let _ = writeln!(out, "  \"tuples\": {},", r.tuples);
    let _ = writeln!(out, "  \"arity\": {},", r.arity);
    let _ = writeln!(out, "  \"cells\": {},", r.cells);
    let _ = writeln!(out, "  \"distinct_values\": {},", r.distinct_values);
    let _ = writeln!(out, "  \"columnar_bytes\": {},", r.columnar_bytes);
    let _ = writeln!(out, "  \"row_major_bytes\": {},", r.row_major_bytes);
    let _ = writeln!(
        out,
        "  \"memory_ratio_row_over_columnar\": {},",
        num(
            r.row_major_bytes as f64 / (r.columnar_bytes.max(1)) as f64,
            3
        )
    );
    let _ = writeln!(out, "  \"scans\": [");
    for (i, s) in r.scans.iter().enumerate() {
        let cps = |secs: f64| tuples_per_sec(r.cells, secs);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(out, "      \"answer\": {},", s.answer);
        let _ = writeln!(
            out,
            "      \"columnar_seconds\": {},",
            num(s.columnar_seconds, 6)
        );
        let _ = writeln!(out, "      \"row_seconds\": {},", num(s.row_seconds, 6));
        let _ = writeln!(
            out,
            "      \"columnar_cells_per_sec\": {},",
            num(cps(s.columnar_seconds), 1)
        );
        let _ = writeln!(
            out,
            "      \"row_cells_per_sec\": {},",
            num(cps(s.row_seconds), 1)
        );
        let _ = writeln!(
            out,
            "      \"speedup_columnar_vs_row\": {}",
            num(s.row_seconds / s.columnar_seconds.max(1e-12), 3)
        );
        let comma = if i + 1 < r.scans.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"crepair_seconds\": {},", num(r.crepair_seconds, 6));
    let _ = writeln!(out, "  \"erepair_seconds\": {}", num(r.erepair_seconds, 6));
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 4: the access-path planner on a similarity-heavy workload
// (BENCH_pr5.json).
// ---------------------------------------------------------------------------

struct SimMdResult {
    name: String,
    plan: String,
    /// Candidates examined across the probe sample.
    scan_candidates: u64,
    indexed_candidates: u64,
    /// Verified matches found (identical on both paths by construction).
    matches: u64,
}

struct SimReport {
    tuples: usize,
    master_tuples: usize,
    probe_sample: usize,
    mds: Vec<SimMdResult>,
    scan_seconds: f64,
    indexed_seconds: f64,
    /// clean() outputs across parallelism {1,4} × interning {on,off} are
    /// bit-identical to the (1, on) baseline.
    bit_identical_matrix: bool,
}

/// Measure MD candidate generation on the similarity-heavy DBLP variant:
/// the naive full-master scan vs. the planner's blocked paths, answers
/// cross-checked tuple-by-tuple *before* any timing is reported, plus a
/// bit-identity sweep of full cleaning runs across the parallelism ×
/// interning matrix.
fn bench_similarity(tuples: usize, master: usize, sample: usize, repeat: usize) -> SimReport {
    use uniclean_core::{MasterIndex, ProbeScratch};
    use uniclean_model::TupleId;

    let params = GenParams {
        tuples,
        master_tuples: master,
        ..GenParams::default()
    };
    let w = uniclean_datagen::dblp_similarity_workload(&params);
    let mds = w.rules.mds();
    let idx = MasterIndex::build(mds, &w.master);
    let sample = sample.min(w.dirty.len());

    // Answers first: for every sampled tuple × MD the indexed path must
    // find exactly the matches the scan finds, while we tally candidates.
    let mut results: Vec<SimMdResult> = mds
        .iter()
        .enumerate()
        .map(|(i, md)| SimMdResult {
            name: md.name().to_string(),
            plan: idx.describe_plan(i, md),
            scan_candidates: 0,
            indexed_candidates: 0,
            matches: 0,
        })
        .collect();
    let mut scratch = ProbeScratch::new();
    let mut verified = Vec::new();
    for (i, md) in mds.iter().enumerate() {
        assert!(
            idx.is_indexed(i),
            "similarity workload MD {} fell back to scan",
            md.name()
        );
        for row in 0..sample {
            let t = w.dirty.tuple(TupleId::from(row));
            let scan_matches: Vec<TupleId> = w
                .master
                .iter()
                .filter(|(_, s)| md.premise_matches(t, s))
                .map(|(sid, _)| sid)
                .collect();
            let mut indexed_matches = Vec::new();
            let mut cands = 0u64;
            idx.for_each_candidate(i, md, t, &mut scratch, |sid| {
                cands += 1;
                if md.premise_matches(t, w.master.tuple(sid)) {
                    indexed_matches.push(sid);
                }
            });
            if indexed_matches != scan_matches {
                eprintln!(
                    "access path diverged from the scan: md {} tuple {row}",
                    md.name()
                );
                std::process::exit(1);
            }
            // The production entry point (cached Myers patterns + q-gram
            // profiles) must agree with the scalar kernels probe-by-probe.
            idx.matches_into(i, md, t, &w.master, None, &mut scratch, &mut verified);
            if verified != scan_matches {
                eprintln!(
                    "matches_into diverged from the scan: md {} tuple {row}",
                    md.name()
                );
                std::process::exit(1);
            }
            results[i].scan_candidates += w.master.len() as u64;
            results[i].indexed_candidates += cands;
            results[i].matches += scan_matches.len() as u64;
        }
    }

    // Wall clock, best of `repeat`, same probe sample on both sides. The
    // scan side is the no-index baseline (scalar `premise_matches` against
    // every master row); the indexed side is the engine's production entry
    // point, `matches_into` (candidate generation + verification on the
    // scratch-cached kernels) — asserted bit-identical to the scan above.
    let mut scan_seconds = f64::INFINITY;
    let mut indexed_seconds = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let started = Instant::now();
        let mut found = 0usize;
        for md in mds.iter() {
            for row in 0..sample {
                let t = w.dirty.tuple(TupleId::from(row));
                found += w
                    .master
                    .iter()
                    .filter(|(_, s)| md.premise_matches(t, s))
                    .count();
            }
        }
        scan_seconds = scan_seconds.min(started.elapsed().as_secs_f64());
        std::hint::black_box(found);

        let started = Instant::now();
        let mut found = 0usize;
        for (i, md) in mds.iter().enumerate() {
            for row in 0..sample {
                let t = w.dirty.tuple(TupleId::from(row));
                idx.matches_into(i, md, t, &w.master, None, &mut scratch, &mut verified);
                found += verified.len();
            }
        }
        indexed_seconds = indexed_seconds.min(started.elapsed().as_secs_f64());
        std::hint::black_box(found);
    }

    // Full cleaning runs must stay bit-identical across the parallelism ×
    // interning matrix on this workload too.
    let clean_with = |threads: usize, interning: bool| {
        let cleaner = Cleaner::builder()
            .rules(w.rules.clone())
            .master(MasterSource::external(w.master.clone()))
            .config(CleanConfig {
                parallelism: Some(NonZeroUsize::new(threads).expect("threads > 0")),
                interning,
                ..CleanConfig::default()
            })
            .build()
            .expect("similarity workload builds a valid session");
        cleaner.clean(&w.dirty, Phase::Full)
    };
    let baseline = clean_with(1, true);
    let mut bit_identical = true;
    for (threads, interning) in [(1, false), (4, true), (4, false)] {
        let r = clean_with(threads, interning);
        if r.repaired.diff_cells(&baseline.repaired) != 0
            || r.consistent != baseline.consistent
            || r.cost.to_bits() != baseline.cost.to_bits()
        {
            eprintln!("cleaning diverged at threads={threads} interning={interning}");
            bit_identical = false;
        }
    }
    if !bit_identical {
        std::process::exit(1);
    }

    SimReport {
        tuples: w.dirty.len(),
        master_tuples: w.master.len(),
        probe_sample: sample,
        mds: results,
        scan_seconds,
        indexed_seconds,
        bit_identical_matrix: bit_identical,
    }
}

fn render_sim_json(r: &SimReport, smoke: bool) -> String {
    let total_scan: u64 = r.mds.iter().map(|m| m.scan_candidates).sum();
    let total_indexed: u64 = r.mds.iter().map(|m| m.indexed_candidates).sum();
    let reduction = total_scan as f64 / (total_indexed.max(1)) as f64;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr5_access_paths\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"dataset\": \"dblp-sim\",");
    let _ = writeln!(
        out,
        "  \"note\": \"similarity-heavy DBLP variant (~qgram/~jaro/~jw/~lev MD premises, no \
         entity-unique equalities). Per sampled probe, the indexed path's verified matches are \
         asserted equal to the full-master scan before candidates or timings are reported; the \
         cleaning matrix rows are full Phase::Full runs compared bit-for-bit against the \
         threads=1 interning=on baseline.\","
    );
    let _ = writeln!(out, "  \"tuples\": {},", r.tuples);
    let _ = writeln!(out, "  \"master_tuples\": {},", r.master_tuples);
    let _ = writeln!(out, "  \"probe_sample\": {},", r.probe_sample);
    let _ = writeln!(out, "  \"mds\": [");
    for (i, m) in r.mds.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"plan\": \"{}\",", m.plan.replace('"', "'"));
        let _ = writeln!(out, "      \"scan_candidates\": {},", m.scan_candidates);
        let _ = writeln!(
            out,
            "      \"indexed_candidates\": {},",
            m.indexed_candidates
        );
        let _ = writeln!(
            out,
            "      \"candidate_reduction\": {},",
            num(
                m.scan_candidates as f64 / (m.indexed_candidates.max(1)) as f64,
                2
            )
        );
        let _ = writeln!(out, "      \"verified_matches\": {}", m.matches);
        let comma = if i + 1 < r.mds.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"total_scan_candidates\": {total_scan},");
    let _ = writeln!(out, "  \"total_indexed_candidates\": {total_indexed},");
    let _ = writeln!(out, "  \"candidate_reduction\": {},", num(reduction, 2));
    let _ = writeln!(out, "  \"scan_seconds\": {},", num(r.scan_seconds, 6));
    let _ = writeln!(out, "  \"indexed_seconds\": {},", num(r.indexed_seconds, 6));
    let _ = writeln!(
        out,
        "  \"wall_clock_speedup\": {},",
        num(r.scan_seconds / r.indexed_seconds.max(1e-12), 2)
    );
    let _ = writeln!(
        out,
        "  \"bit_identical_across_parallelism_and_interning\": {}",
        r.bit_identical_matrix
    );
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 5: the serving daemon (BENCH_pr6.json).
// ---------------------------------------------------------------------------

/// One shard-count configuration of the serving workload.
struct ServeRun {
    shards: usize,
    relations: usize,
    base_tuples: usize,
    batch_tuples: usize,
    batches: usize,
    ingest_seconds: f64,
    check_queries: usize,
    check_seconds: f64,
    busy_rejections: u64,
    all_consistent: bool,
    /// Enqueue-time depth histogram, merged across shards (label, count).
    depth_histogram: Vec<(&'static str, u64)>,
}

struct ServeReport {
    runs: Vec<ServeRun>,
}

/// A minimal line-oriented protocol client for driving the daemon.
struct ServeClient {
    writer: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl ServeClient {
    fn connect(addr: std::net::SocketAddr) -> ServeClient {
        let writer = std::net::TcpStream::connect(addr).expect("connect to daemon");
        let reader = std::io::BufReader::new(writer.try_clone().expect("clone stream"));
        ServeClient { writer, reader }
    }

    fn rpc(&mut self, req: &Json) -> Json {
        use std::io::{BufRead, Write};
        self.writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        let resp = Json::parse(&line).expect("response parses");
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("serving request failed: {resp}");
            std::process::exit(1);
        }
        resp
    }
}

fn jobj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Render a rule set back into the parser grammar (the `Display` forms
/// round-trip; HOSP carries no negative MDs). Datagen names rules like
/// `hm1#1`, but `#` starts a comment in the grammar — remap rule names to
/// identifier-safe characters before shipping them over the wire.
fn rules_as_text(rules: &uniclean_rules::RuleSet) -> String {
    fn ident_safe(line: String) -> String {
        match line.split_once(':') {
            Some((name, rest)) => {
                let name: String = name
                    .chars()
                    .map(|c| {
                        if c.is_alphanumeric() || matches!(c, '_' | '-' | '.') {
                            c
                        } else {
                            '_'
                        }
                    })
                    .collect();
                format!("{name}:{rest}")
            }
            None => line,
        }
    }
    let mut t = String::new();
    for cfd in rules.cfds() {
        let _ = writeln!(t, "cfd {}", ident_safe(cfd.to_string()));
    }
    for md in rules.mds() {
        let _ = writeln!(t, "md {}", ident_safe(md.to_string()));
    }
    t
}

/// A relation's cells as wire rows: `[value, cf]` pairs, so the served
/// tenant sees exactly the workload's confidences.
fn rows_as_json(rows: &[uniclean_model::Tuple]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|t| {
                Json::Arr(
                    t.cells()
                        .iter()
                        .map(|c| {
                            Json::Arr(vec![
                                uniclean_model::json::value_to_json(&c.value),
                                Json::Num(c.cf),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Drive one daemon configuration: `relations` tenants served over TCP,
/// each streaming a base then `batches` timed 1% batches from its own
/// client thread, then answering timed `check` queries — wall-clocked
/// across all clients with barriers.
fn bench_serving_run(
    w: &Workload,
    names: &[String],
    shards: usize,
    base: usize,
    batches: usize,
    batch: usize,
    checks_per_relation: usize,
) -> ServeRun {
    use std::sync::{Arc, Barrier};
    let daemon = uniclean_server::Daemon::bind(uniclean_server::DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
        queue_bound: 64,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let daemon_thread = std::thread::spawn(move || daemon.run());

    let rules_text = rules_as_text(&w.rules);
    let master_attrs: Vec<String> = w
        .master
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    let data_attrs: Vec<String> = w
        .dirty
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    let master_rows = rows_as_json(&w.master.to_tuples());
    let all_rows = Arc::new(w.dirty.to_tuples());
    let total = base + batches * batch;
    assert!(all_rows.len() >= total, "workload too small for the plan");

    // Barriers bracket the two timed windows; the main thread is the
    // (relations + 1)-th participant and holds the wall clock.
    let barrier = Arc::new(Barrier::new(names.len() + 1));
    let mut clients = Vec::new();
    for name in names {
        let name = name.clone();
        let barrier = barrier.clone();
        let all_rows = all_rows.clone();
        let open = jobj(vec![
            ("op", Json::str("open")),
            ("relation", Json::str(&name)),
            ("table", Json::str(w.dirty.schema().name())),
            (
                "attrs",
                Json::Arr(data_attrs.iter().map(|a| Json::str(a.as_str())).collect()),
            ),
            ("rules", Json::str(&rules_text)),
            (
                "master",
                jobj(vec![
                    ("table", Json::str(w.master.schema().name())),
                    (
                        "attrs",
                        Json::Arr(master_attrs.iter().map(|a| Json::str(a.as_str())).collect()),
                    ),
                    ("rows", master_rows.clone()),
                ]),
            ),
            ("phase", Json::str("full")),
            ("threads", Json::Num(1.0)),
        ]);
        clients.push(std::thread::spawn(move || {
            let mut c = ServeClient::connect(addr);
            c.rpc(&open);
            // Untimed: stream the base in 1000-tuple chunks.
            for chunk in all_rows[..base].chunks(1000) {
                c.rpc(&jobj(vec![
                    ("op", Json::str("ingest")),
                    ("relation", Json::str(&name)),
                    ("rows", rows_as_json(chunk)),
                ]));
            }
            barrier.wait();
            // Timed window 1: the streamed 1% batches.
            for i in 0..batches {
                let slice = &all_rows[base + i * batch..base + (i + 1) * batch];
                c.rpc(&jobj(vec![
                    ("op", Json::str("ingest")),
                    ("relation", Json::str(&name)),
                    ("rows", rows_as_json(slice)),
                ]));
            }
            barrier.wait();
            barrier.wait();
            // Timed window 2: online acceptance queries.
            for q in 0..checks_per_relation {
                c.rpc(&jobj(vec![
                    ("op", Json::str("check")),
                    ("relation", Json::str(&name)),
                    ("tuple", Json::Num((q % (base + batches * batch)) as f64)),
                ]));
            }
            barrier.wait();
            // Relation-level verdict for the report.
            let check = c.rpc(&jobj(vec![
                ("op", Json::str("check")),
                ("relation", Json::str(&name)),
            ]));
            check.get("consistent").and_then(Json::as_bool) == Some(true)
        }));
    }

    barrier.wait();
    let started = Instant::now();
    barrier.wait();
    let ingest_seconds = started.elapsed().as_secs_f64();
    barrier.wait();
    let started = Instant::now();
    barrier.wait();
    let check_seconds = started.elapsed().as_secs_f64();

    let all_consistent = clients
        .into_iter()
        .all(|c| c.join().expect("client thread panicked"));

    // Shard counters, then a graceful shutdown.
    let mut c = ServeClient::connect(addr);
    let stats = c.rpc(&jobj(vec![("op", Json::str("stats"))]));
    let mut busy = 0u64;
    const LABELS: [&str; 8] = ["0", "1", "2", "3", "4-7", "8-15", "16-31", "32+"];
    let mut hist: Vec<(&'static str, u64)> = LABELS.iter().map(|l| (*l, 0u64)).collect();
    for shard in stats.get("shards").and_then(Json::as_arr).unwrap_or(&[]) {
        busy += shard
            .get("busy_rejections")
            .and_then(Json::as_usize)
            .unwrap_or(0) as u64;
        if let Some(h) = shard.get("depth_histogram") {
            for (label, count) in hist.iter_mut() {
                *count += h.get(label).and_then(Json::as_usize).unwrap_or(0) as u64;
            }
        }
    }
    c.rpc(&jobj(vec![("op", Json::str("shutdown"))]));
    drop(c);
    daemon_thread
        .join()
        .expect("daemon thread panicked")
        .expect("daemon exited with an error");

    ServeRun {
        shards,
        relations: names.len(),
        base_tuples: base,
        batch_tuples: batch,
        batches,
        ingest_seconds,
        check_queries: checks_per_relation * names.len(),
        check_seconds,
        busy_rejections: busy,
        all_consistent,
        depth_histogram: hist,
    }
}

/// The serving workload across shard counts: a fixed set of relations
/// (names chosen to cover all shards at the widest configuration) served
/// by one daemon per shard count.
fn bench_serving(
    shard_counts: &[usize],
    relations: usize,
    base: usize,
    batches: usize,
    batch: usize,
    checks_per_relation: usize,
    master_tuples: usize,
) -> ServeReport {
    let params = GenParams {
        tuples: base + batches * batch,
        master_tuples,
        ..GenParams::default()
    };
    let w = hosp_workload(&params);
    // Pick relation names landing on distinct shards at the widest shard
    // count, so the spread is real when the pool is widest.
    let widest = shard_counts.iter().copied().max().unwrap_or(1);
    let mut names: Vec<String> = Vec::new();
    let mut covered = vec![false; widest];
    for i in 0.. {
        if names.len() == relations {
            break;
        }
        let cand = format!("hosp{i}");
        let s = uniclean_server::shard_for(&cand, widest);
        if !covered[s] || covered.iter().all(|c| *c) {
            covered[s] = true;
            names.push(cand);
        }
    }
    let mut runs = Vec::new();
    for &shards in shard_counts {
        eprintln!(
            "  serving: shards={shards} relations={relations} base={base} \
             batches={batches}x{batch} checks={checks_per_relation}…"
        );
        runs.push(bench_serving_run(
            &w,
            &names,
            shards,
            base,
            batches,
            batch,
            checks_per_relation,
        ));
    }
    ServeReport { runs }
}

fn render_serve_json(r: &ServeReport, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr6_serving_daemon\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"dataset\": \"hosp\",");
    let _ = writeln!(
        out,
        "  \"note\": \"a fixed set of tenants streams an untimed base then timed 1% batches \
         into one daemon per shard count, over real TCP; checks are online acceptance reads. \
         Every tenant runs engine threads=1 so shard spread is the only parallelism knob; on \
         a 1-core container wall-clock gains across shard counts are expected to be flat.\","
    );
    let _ = writeln!(out, "  \"runs\": [");
    for (i, run) in r.runs.iter().enumerate() {
        let batches_total = run.batches * run.relations;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"shards\": {},", run.shards);
        let _ = writeln!(out, "      \"relations\": {},", run.relations);
        let _ = writeln!(
            out,
            "      \"base_tuples_per_relation\": {},",
            run.base_tuples
        );
        let _ = writeln!(out, "      \"batch_tuples\": {},", run.batch_tuples);
        let _ = writeln!(out, "      \"batches_per_relation\": {},", run.batches);
        let _ = writeln!(
            out,
            "      \"ingest_seconds\": {},",
            num(run.ingest_seconds, 6)
        );
        let _ = writeln!(
            out,
            "      \"ingest_batches_per_sec\": {},",
            num(batches_total as f64 / run.ingest_seconds.max(1e-12), 2)
        );
        let _ = writeln!(
            out,
            "      \"ingest_tuples_per_sec\": {},",
            num(
                (batches_total * run.batch_tuples) as f64 / run.ingest_seconds.max(1e-12),
                1
            )
        );
        let _ = writeln!(out, "      \"check_queries\": {},", run.check_queries);
        let _ = writeln!(
            out,
            "      \"check_seconds\": {},",
            num(run.check_seconds, 6)
        );
        let _ = writeln!(
            out,
            "      \"check_queries_per_sec\": {},",
            num(run.check_queries as f64 / run.check_seconds.max(1e-12), 1)
        );
        let _ = writeln!(out, "      \"busy_rejections\": {},", run.busy_rejections);
        let _ = writeln!(out, "      \"all_consistent\": {},", run.all_consistent);
        let _ = writeln!(out, "      \"queue_depth_histogram\": {{");
        for (j, (label, count)) in run.depth_histogram.iter().enumerate() {
            let comma = if j + 1 < run.depth_histogram.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "        \"{label}\": {count}{comma}");
        }
        let _ = writeln!(out, "      }}");
        let comma = if i + 1 < r.runs.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 6: durability overhead and recovery cost (BENCH_pr7.json).
// ---------------------------------------------------------------------------

/// One timed ingest stream under one durability mode.
struct DurRun {
    mode: &'static str,
    batches: usize,
    batch_tuples: usize,
    seconds: f64,
}

/// One timed restart on a WAL of a given size.
struct RecoveryRun {
    wal_batches: usize,
    wal_tuples: usize,
    wal_bytes: u64,
    /// Recovery's own wall clock, from the daemon's `ping` report.
    recovery_seconds: f64,
    /// Bind → first successful `ping`, as a client sees it.
    restart_wall_seconds: f64,
}

struct DurabilityReport {
    ingest: Vec<DurRun>,
    snapshot: Vec<DurRun>,
    recovery: Vec<RecoveryRun>,
}

/// The `open` request Part 5's clients build, reusable for one tenant.
fn serve_open_request(w: &Workload, name: &str) -> Json {
    let master_attrs: Vec<String> = w
        .master
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    let data_attrs: Vec<String> = w
        .dirty
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    jobj(vec![
        ("op", Json::str("open")),
        ("relation", Json::str(name)),
        ("table", Json::str(w.dirty.schema().name())),
        (
            "attrs",
            Json::Arr(data_attrs.iter().map(|a| Json::str(a.as_str())).collect()),
        ),
        ("rules", Json::str(rules_as_text(&w.rules))),
        (
            "master",
            jobj(vec![
                ("table", Json::str(w.master.schema().name())),
                (
                    "attrs",
                    Json::Arr(master_attrs.iter().map(|a| Json::str(a.as_str())).collect()),
                ),
                ("rows", rows_as_json(&w.master.to_tuples())),
            ]),
        ),
        ("phase", Json::str("full")),
        ("threads", Json::Num(1.0)),
    ])
}

fn boot_daemon(
    data_dir: Option<&std::path::Path>,
    snapshot_every: u64,
    fsync: bool,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let daemon = uniclean_server::Daemon::bind(uniclean_server::DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_bound: 64,
        data_dir: data_dir.map(|p| p.to_path_buf()),
        snapshot_every,
        fsync,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = daemon.local_addr();
    (addr, std::thread::spawn(move || daemon.run()))
}

/// Durability modes over one tenant: in-memory vs WAL (fsync off/on),
/// snapshot compaction cadence, and recovery wall-clock per WAL size.
fn bench_durability(
    w: &Workload,
    batches: usize,
    batch: usize,
    wal_sizes: &[usize],
) -> DurabilityReport {
    let root = std::env::temp_dir().join(format!("uniclean-bench-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench scratch dir");
    let rows = w.dirty.to_tuples();
    let need = batches * batch.max(1);
    assert!(rows.len() >= need, "workload too small for the plan");

    let stream = |c: &mut ServeClient, count: usize| {
        for i in 0..count {
            c.rpc(&jobj(vec![
                ("op", Json::str("ingest")),
                ("relation", Json::str("dur0")),
                ("rows", rows_as_json(&rows[i * batch..(i + 1) * batch])),
            ]));
        }
    };
    let shutdown = |mut c: ServeClient, handle: std::thread::JoinHandle<std::io::Result<()>>| {
        c.rpc(&jobj(vec![("op", Json::str("shutdown"))]));
        drop(c);
        handle
            .join()
            .expect("daemon thread panicked")
            .expect("daemon exited with an error");
    };
    let run_mode = |mode: &'static str,
                    dir: Option<std::path::PathBuf>,
                    fsync: bool,
                    snapshot_every: u64|
     -> DurRun {
        if let Some(d) = &dir {
            let _ = std::fs::remove_dir_all(d);
        }
        eprintln!("  durability: mode={mode} batches={batches}x{batch}…");
        let (addr, handle) = boot_daemon(dir.as_deref(), snapshot_every, fsync);
        let mut c = ServeClient::connect(addr);
        c.rpc(&serve_open_request(w, "dur0"));
        let started = Instant::now();
        stream(&mut c, batches);
        let seconds = started.elapsed().as_secs_f64();
        shutdown(c, handle);
        DurRun {
            mode,
            batches,
            batch_tuples: batch,
            seconds,
        }
    };

    let ingest = vec![
        run_mode("memory", None, true, 0),
        run_mode("wal_nofsync", Some(root.join("nofsync")), false, 0),
        run_mode("wal_fsync", Some(root.join("fsync")), true, 0),
    ];
    let snapshot = vec![
        run_mode(
            "wal_fsync_snapshot_never",
            Some(root.join("snap-never")),
            true,
            0,
        ),
        run_mode(
            "wal_fsync_snapshot_every_batch",
            Some(root.join("snap-every")),
            true,
            1,
        ),
    ];

    let mut recovery = Vec::new();
    for &k in wal_sizes {
        assert!(
            rows.len() >= k * batch,
            "workload too small for WAL size {k}"
        );
        let dir = root.join(format!("recover-{k}"));
        let _ = std::fs::remove_dir_all(&dir);
        // Build the WAL (fsync off: build speed is not what's measured).
        let (addr, handle) = boot_daemon(Some(&dir), 0, false);
        let mut c = ServeClient::connect(addr);
        c.rpc(&serve_open_request(w, "dur0"));
        stream(&mut c, k);
        shutdown(c, handle);
        let wal_bytes = std::fs::metadata(
            dir.join(uniclean_server::tenant_dir_name("dur0"))
                .join("wal.log"),
        )
        .map(|m| m.len())
        .unwrap_or(0);

        eprintln!("  durability: recovery of {k} batches ({wal_bytes} WAL bytes)…");
        let started = Instant::now();
        let (addr, handle) = boot_daemon(Some(&dir), 0, false);
        let mut c = ServeClient::connect(addr);
        let ping = c.rpc(&jobj(vec![("op", Json::str("ping"))]));
        let restart_wall_seconds = started.elapsed().as_secs_f64();
        let recovery_seconds = ping
            .get("recovery")
            .and_then(|r| r.get("seconds"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        shutdown(c, handle);
        recovery.push(RecoveryRun {
            wal_batches: k,
            wal_tuples: k * batch,
            wal_bytes,
            recovery_seconds,
            restart_wall_seconds,
        });
    }
    let _ = std::fs::remove_dir_all(&root);
    DurabilityReport {
        ingest,
        snapshot,
        recovery,
    }
}

fn render_durability_json(r: &DurabilityReport, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr7_durability\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"dataset\": \"hosp\",");
    let _ = writeln!(
        out,
        "  \"note\": \"one tenant streams identical batches under each durability mode \
         (in-memory, WAL without fsync, WAL with fsync-before-ack), then under snapshot \
         compaction cadences, over real TCP with engine threads=1; recovery restarts a \
         daemon on cold WALs of increasing size and reports both the recovery scan's own \
         wall clock and bind-to-first-ping as a client sees it.\","
    );
    let memory_seconds = r
        .ingest
        .iter()
        .find(|m| m.mode == "memory")
        .map(|m| m.seconds)
        .unwrap_or(0.0);
    let section = |out: &mut String, name: &str, runs: &[DurRun], last: bool| {
        let _ = writeln!(out, "  \"{name}\": [");
        for (i, m) in runs.iter().enumerate() {
            let tuples = (m.batches * m.batch_tuples) as f64;
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"mode\": \"{}\",", m.mode);
            let _ = writeln!(out, "      \"batches\": {},", m.batches);
            let _ = writeln!(out, "      \"batch_tuples\": {},", m.batch_tuples);
            let _ = writeln!(out, "      \"seconds\": {},", num(m.seconds, 6));
            let _ = writeln!(
                out,
                "      \"tuples_per_sec\": {},",
                num(tuples / m.seconds.max(1e-12), 1)
            );
            let _ = writeln!(
                out,
                "      \"slowdown_vs_memory\": {}",
                num(m.seconds / memory_seconds.max(1e-12), 3)
            );
            let comma = if i + 1 < runs.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        let comma = if last { "" } else { "," };
        let _ = writeln!(out, "  ]{comma}");
    };
    section(&mut out, "ingest_modes", &r.ingest, false);
    section(&mut out, "snapshot_compaction", &r.snapshot, false);
    let _ = writeln!(out, "  \"recovery\": [");
    for (i, rec) in r.recovery.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"wal_batches\": {},", rec.wal_batches);
        let _ = writeln!(out, "      \"wal_tuples\": {},", rec.wal_tuples);
        let _ = writeln!(out, "      \"wal_bytes\": {},", rec.wal_bytes);
        let _ = writeln!(
            out,
            "      \"recovery_seconds\": {},",
            num(rec.recovery_seconds, 6)
        );
        let _ = writeln!(
            out,
            "      \"restart_wall_seconds\": {}",
            num(rec.restart_wall_seconds, 6)
        );
        let comma = if i + 1 < r.recovery.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 6b: the replication tax (BENCH_pr10.json).
// ---------------------------------------------------------------------------

/// The same fsync'd ingest stream with and without a standby tailing it.
struct ReplIngest {
    batches: usize,
    batch_tuples: usize,
    solo_seconds: f64,
    standby_seconds: f64,
    /// Replica lag on the primary, sampled every 25ms during the timed
    /// standby ingest (frames behind the primary's WAL tip).
    lag_samples: usize,
    lag_max_frames: u64,
    lag_mean_frames: f64,
    lag_max_bytes: u64,
    /// Last primary ack → standby fully caught up (lag 0, all acked).
    drain_seconds: f64,
}

/// One failover: a fresh standby bootstraps a WAL of `wal_batches`
/// batches, catches up, and is promoted after the primary goes away.
struct FailoverRun {
    wal_batches: usize,
    wal_tuples: usize,
    wal_bytes: u64,
    /// Standby boot → replica fully caught up (bootstrap + tail).
    catch_up_seconds: f64,
    /// The `promote` RPC's own wall clock (drains the apply queue).
    promote_seconds: f64,
}

struct ReplReport {
    ingest: ReplIngest,
    failover: Vec<FailoverRun>,
}

fn boot_standby(
    data_dir: &std::path::Path,
    primary: std::net::SocketAddr,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let daemon = uniclean_server::Daemon::bind(uniclean_server::DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_bound: 64,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_every: 0,
        fsync: false,
        replicate_from: Some(primary.to_string()),
        ..Default::default()
    })
    .expect("bind standby port");
    let addr = daemon.local_addr();
    (addr, std::thread::spawn(move || daemon.run()))
}

/// Read `relations[0].replication.{lag_frames, lag_bytes, acked_seq}`
/// from a primary's `stats`; `None` until the standby first acks.
fn primary_lag(c: &mut ServeClient) -> Option<(u64, u64, u64)> {
    let stats = c.rpc(&jobj(vec![("op", Json::str("stats"))]));
    let relations = stats.get("relations").and_then(Json::as_arr)?;
    let repl = relations.first()?.get("replication")?;
    Some((
        repl.get("lag_frames").and_then(Json::as_u64)?,
        repl.get("lag_bytes").and_then(Json::as_u64)?,
        repl.get("acked_seq").and_then(Json::as_u64)?,
    ))
}

/// Poll a node's `stats` until its one relation exists and has applied
/// WAL frames through `want` (a just-bootstrapped relation reports no
/// `repl_seq` until the first batch frame lands — that reads as 0).
fn wait_repl_seq(addr: std::net::SocketAddr, want: u64) {
    let mut c = ServeClient::connect(addr);
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let stats = c.rpc(&jobj(vec![("op", Json::str("stats"))]));
        let seq = stats
            .get("relations")
            .and_then(Json::as_arr)
            .and_then(|r| r.first())
            .map(|r| r.get("repl_seq").and_then(Json::as_u64).unwrap_or(0));
        if matches!(seq, Some(s) if s >= want) {
            return;
        }
        if Instant::now() > deadline {
            eprintln!("standby never reached seq {want} (at {seq:?})");
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Price the standby: identical fsync'd ingest streams with and without
/// a replica attached, plus failover wall-clock across WAL sizes.
fn bench_replication(
    w: &Workload,
    batches: usize,
    batch: usize,
    wal_sizes: &[usize],
) -> ReplReport {
    let root = std::env::temp_dir().join(format!("uniclean-bench-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench scratch dir");
    let rows = w.dirty.to_tuples();
    let max_batches = batches.max(wal_sizes.iter().copied().max().unwrap_or(0));
    assert!(
        rows.len() >= max_batches * batch.max(1),
        "workload too small for the plan"
    );

    let stream = |c: &mut ServeClient, count: usize| {
        for i in 0..count {
            c.rpc(&jobj(vec![
                ("op", Json::str("ingest")),
                ("relation", Json::str("repl0")),
                ("rows", rows_as_json(&rows[i * batch..(i + 1) * batch])),
            ]));
        }
    };
    let shutdown = |mut c: ServeClient, handle: std::thread::JoinHandle<std::io::Result<()>>| {
        c.rpc(&jobj(vec![("op", Json::str("shutdown"))]));
        drop(c);
        handle
            .join()
            .expect("daemon thread panicked")
            .expect("daemon exited with an error");
    };

    // Solo baseline: WAL + fsync, nobody tailing.
    eprintln!("  replication: solo ingest {batches}x{batch}…");
    let dir = root.join("solo");
    let (addr, handle) = boot_daemon(Some(&dir), 0, true);
    let mut c = ServeClient::connect(addr);
    c.rpc(&serve_open_request(w, "repl0"));
    let started = Instant::now();
    stream(&mut c, batches);
    let solo_seconds = started.elapsed().as_secs_f64();
    shutdown(c, handle);

    // Same stream with a standby attached; a sampler thread reads the
    // primary's per-tenant lag while the ingest clock runs.
    eprintln!("  replication: ingest {batches}x{batch} with a standby tailing…");
    let pdir = root.join("primary");
    let (paddr, phandle) = boot_daemon(Some(&pdir), 0, true);
    let mut c = ServeClient::connect(paddr);
    c.rpc(&serve_open_request(w, "repl0"));
    let (saddr, shandle) = boot_standby(&root.join("standby"), paddr);
    wait_repl_seq(saddr, 0); // open frame applied — the tail is live
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = ServeClient::connect(paddr);
            let mut samples: Vec<(u64, u64)> = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if let Some((frames, bytes, _)) = primary_lag(&mut c) {
                    samples.push((frames, bytes));
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            samples
        })
    };
    let started = Instant::now();
    stream(&mut c, batches);
    let standby_seconds = started.elapsed().as_secs_f64();
    // Drain: the primary has acked everything; clock the replica to zero.
    let drain_started = Instant::now();
    let drain_deadline = drain_started + std::time::Duration::from_secs(120);
    loop {
        if let Some((frames, _, acked)) = primary_lag(&mut c) {
            if frames == 0 && acked == batches as u64 {
                break;
            }
        }
        if Instant::now() > drain_deadline {
            eprintln!("standby never drained to zero lag");
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let drain_seconds = drain_started.elapsed().as_secs_f64();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let samples = sampler.join().expect("sampler thread panicked");
    shutdown(ServeClient::connect(saddr), shandle);
    shutdown(c, phandle);
    let lag_max_frames = samples.iter().map(|&(f, _)| f).max().unwrap_or(0);
    let lag_max_bytes = samples.iter().map(|&(_, b)| b).max().unwrap_or(0);
    let lag_mean_frames = if samples.is_empty() {
        0.0
    } else {
        samples.iter().map(|&(f, _)| f as f64).sum::<f64>() / samples.len() as f64
    };
    let ingest = ReplIngest {
        batches,
        batch_tuples: batch,
        solo_seconds,
        standby_seconds,
        lag_samples: samples.len(),
        lag_max_frames,
        lag_mean_frames,
        lag_max_bytes,
        drain_seconds,
    };

    // Failover: per WAL size, a cold standby bootstraps the whole log,
    // catches up, loses its primary, and is promoted.
    let mut failover = Vec::new();
    for &k in wal_sizes {
        let pdir = root.join(format!("fo-primary-{k}"));
        let (paddr, phandle) = boot_daemon(Some(&pdir), 0, false);
        let mut c = ServeClient::connect(paddr);
        c.rpc(&serve_open_request(w, "repl0"));
        stream(&mut c, k);
        let wal_bytes = std::fs::metadata(
            pdir.join(uniclean_server::tenant_dir_name("repl0"))
                .join("wal.log"),
        )
        .map(|m| m.len())
        .unwrap_or(0);

        eprintln!("  replication: failover after {k} batches ({wal_bytes} WAL bytes)…");
        let started = Instant::now();
        let (saddr, shandle) = boot_standby(&root.join(format!("fo-standby-{k}")), paddr);
        wait_repl_seq(saddr, k as u64);
        let catch_up_seconds = started.elapsed().as_secs_f64();
        shutdown(c, phandle);
        let mut sc = ServeClient::connect(saddr);
        let started = Instant::now();
        sc.rpc(&jobj(vec![("op", Json::str("promote"))]));
        let promote_seconds = started.elapsed().as_secs_f64();
        let ping = sc.rpc(&jobj(vec![("op", Json::str("ping"))]));
        if ping.get("role").and_then(Json::as_str) != Some("primary") {
            eprintln!("promoted standby does not report role=primary: {ping}");
            std::process::exit(1);
        }
        shutdown(sc, shandle);
        failover.push(FailoverRun {
            wal_batches: k,
            wal_tuples: k * batch,
            wal_bytes,
            catch_up_seconds,
            promote_seconds,
        });
    }
    let _ = std::fs::remove_dir_all(&root);
    ReplReport { ingest, failover }
}

fn render_replication_json(r: &ReplReport, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr10_replication\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"dataset\": \"hosp\",");
    let _ = writeln!(
        out,
        "  \"note\": \"replication tax: the same fsync'd ingest stream is clocked solo and \
         with an asynchronous standby tailing the WAL over TCP; lag is the primary's \
         per-tenant frames-behind figure sampled every 25ms while the clock runs. Failover \
         boots a cold standby against an existing WAL, waits for full catch-up, then \
         promotes it after the primary is gone.\","
    );
    let i = &r.ingest;
    let _ = writeln!(out, "  \"ingest\": {{");
    let _ = writeln!(out, "    \"batches\": {},", i.batches);
    let _ = writeln!(out, "    \"batch_tuples\": {},", i.batch_tuples);
    let _ = writeln!(out, "    \"solo_seconds\": {},", num(i.solo_seconds, 6));
    let _ = writeln!(
        out,
        "    \"standby_seconds\": {},",
        num(i.standby_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"standby_overhead_x\": {},",
        num(i.standby_seconds / i.solo_seconds.max(1e-12), 4)
    );
    let _ = writeln!(
        out,
        "    \"solo_tuples_per_sec\": {},",
        num(
            (i.batches * i.batch_tuples) as f64 / i.solo_seconds.max(1e-12),
            1
        )
    );
    let _ = writeln!(
        out,
        "    \"standby_tuples_per_sec\": {},",
        num(
            (i.batches * i.batch_tuples) as f64 / i.standby_seconds.max(1e-12),
            1
        )
    );
    let _ = writeln!(out, "    \"lag_samples\": {},", i.lag_samples);
    let _ = writeln!(out, "    \"lag_max_frames\": {},", i.lag_max_frames);
    let _ = writeln!(
        out,
        "    \"lag_mean_frames\": {},",
        num(i.lag_mean_frames, 3)
    );
    let _ = writeln!(out, "    \"lag_max_bytes\": {},", i.lag_max_bytes);
    let _ = writeln!(out, "    \"drain_seconds\": {}", num(i.drain_seconds, 6));
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"failover\": [");
    for (j, f) in r.failover.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"wal_batches\": {},", f.wal_batches);
        let _ = writeln!(out, "      \"wal_tuples\": {},", f.wal_tuples);
        let _ = writeln!(out, "      \"wal_bytes\": {},", f.wal_bytes);
        let _ = writeln!(
            out,
            "      \"catch_up_seconds\": {},",
            num(f.catch_up_seconds, 6)
        );
        let _ = writeln!(
            out,
            "      \"promote_seconds\": {}",
            num(f.promote_seconds, 6)
        );
        let comma = if j + 1 < r.failover.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 7: the bit-parallel similarity kernels (BENCH_pr8.json).
// ---------------------------------------------------------------------------

/// The committed BENCH_pr5.json probe-workload wall clock (indexed path,
/// this container, pre-Myers banded-DP kernels + top-l LCS access path).
/// PR8 re-runs the identical workload so the kernel win is like-for-like.
const PR5_COMMITTED_INDEXED_SECONDS: f64 = 0.225341;

/// One (length, threshold) shape of the edit-distance microbench.
struct KernelCase {
    name: &'static str,
    chars: usize,
    k: usize,
    pairs: usize,
    /// How many pairs were within `k` (identical for all three kernels —
    /// asserted before timing).
    accepted: usize,
    myers_seconds: f64,
    banded_dp_seconds: f64,
    full_dp_seconds: f64,
}

/// Deterministic string pairs: a random base of `len` chars and a partner
/// `i % (k+3)` edits away, so both the accept and the reject path are hot.
/// No RNG crate — a fixed-seed splitmix-style generator keeps every run
/// (and every kernel under test) on identical inputs.
fn kernel_pairs(len: usize, k: usize, n: usize, unicode: bool) -> Vec<(String, String)> {
    let alphabet: Vec<char> = if unicode {
        "abcdefgéüλжД中рñ ".chars().collect()
    } else {
        "abcdefghijklmnopqrstuvwxyz 0123456789".chars().collect()
    };
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (len as u64) << 32 ^ k as u64;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m.max(1)
    };
    let mut pairs = Vec::with_capacity(n);
    for i in 0..n {
        let a: Vec<char> = (0..len).map(|_| alphabet[next(alphabet.len())]).collect();
        let mut b = a.clone();
        for _ in 0..i % (k + 3) {
            match next(3) {
                0 if !b.is_empty() => {
                    let p = next(b.len());
                    b[p] = alphabet[next(alphabet.len())];
                }
                1 => {
                    let p = next(b.len() + 1);
                    b.insert(p, alphabet[next(alphabet.len())]);
                }
                _ if !b.is_empty() => {
                    let p = next(b.len());
                    b.remove(p);
                }
                _ => {}
            }
        }
        pairs.push((a.into_iter().collect(), b.into_iter().collect()));
    }
    pairs
}

/// Myers bit-vector vs the scalar DPs it replaced, same inputs, answers
/// asserted identical pair-by-pair before any timing is reported.
fn bench_kernels(repeat: usize, smoke: bool) -> Vec<KernelCase> {
    use uniclean_similarity::edit_distance::reference;
    use uniclean_similarity::{levenshtein_bounded_with, EditScratch};

    let n = if smoke { 64 } else { 512 };
    // Lengths cover the single-word fast path (≤64), the 55-char title
    // shape the similarity workload probes, a multi-block pattern, and a
    // non-ASCII alphabet (the binary-search Peq path).
    let specs: &[(&'static str, usize, usize, bool)] = &[
        ("ascii_12_k1", 12, 1, false),
        ("ascii_30_k2", 30, 2, false),
        ("ascii_55_k2", 55, 2, false),
        ("ascii_120_k3", 120, 3, false),
        ("unicode_30_k2", 30, 2, true),
    ];
    let mut cases = Vec::new();
    for &(name, len, k, unicode) in specs {
        let pairs = kernel_pairs(len, k, n, unicode);
        let mut scratch = EditScratch::new();

        // Parity before speed: all three kernels must agree on every pair.
        let mut accepted = 0usize;
        for (a, b) in &pairs {
            let myers = levenshtein_bounded_with(a, b, k, &mut scratch);
            let banded = reference::levenshtein_bounded_dp(a, b, k);
            if myers != banded {
                eprintln!("kernel mismatch [{name}]: myers {myers:?} vs banded {banded:?} on ({a:?}, {b:?})");
                std::process::exit(1);
            }
            if let Some(d) = myers {
                let full = reference::levenshtein_dp(a, b);
                if d != full {
                    eprintln!(
                        "kernel mismatch [{name}]: myers {d} vs full DP {full} on ({a:?}, {b:?})"
                    );
                    std::process::exit(1);
                }
                accepted += 1;
            }
        }

        let time = |f: &mut dyn FnMut() -> usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..repeat.max(1) {
                let started = Instant::now();
                let hits = f();
                best = best.min(started.elapsed().as_secs_f64());
                assert_eq!(hits, accepted, "kernel disagreed during timing [{name}]");
            }
            best
        };
        eprintln!("  kernels: {name} ({n} pairs)…");
        let myers_seconds = time(&mut || {
            pairs
                .iter()
                .filter(|(a, b)| levenshtein_bounded_with(a, b, k, &mut scratch).is_some())
                .count()
        });
        let banded_dp_seconds = time(&mut || {
            pairs
                .iter()
                .filter(|(a, b)| reference::levenshtein_bounded_dp(a, b, k).is_some())
                .count()
        });
        let full_dp_seconds = time(&mut || {
            pairs
                .iter()
                .filter(|(a, b)| reference::levenshtein_dp(a, b) <= k)
                .count()
        });
        cases.push(KernelCase {
            name,
            chars: len,
            k,
            pairs: n,
            accepted,
            myers_seconds,
            banded_dp_seconds,
            full_dp_seconds,
        });
    }
    cases
}

fn render_kernels_json(cases: &[KernelCase], sim: &SimReport, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr8_bitparallel_kernels\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf -- --kernels-only\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"note\": \"kernel_cases time the Myers bit-vector kernel against the banded and \
         full scalar DPs it replaced on identical deterministic pair sets, answers asserted \
         equal pair-by-pair before timing. probe_workload re-runs the BENCH_pr5 similarity \
         probe workload (same generator, sizes and probe-by-probe scan-equality assertion) on \
         the new lev-count access path; speedup_vs_committed_pr5 compares its indexed wall \
         clock against the committed pre-kernel BENCH_pr5.json number from this same \
         single-core container (thread scaling plays no part in either run).\","
    );
    let _ = writeln!(out, "  \"kernel_cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(out, "      \"chars\": {},", c.chars);
        let _ = writeln!(out, "      \"k\": {},", c.k);
        let _ = writeln!(out, "      \"pairs\": {},", c.pairs);
        let _ = writeln!(out, "      \"accepted\": {},", c.accepted);
        let _ = writeln!(out, "      \"myers_seconds\": {},", num(c.myers_seconds, 6));
        let _ = writeln!(
            out,
            "      \"banded_dp_seconds\": {},",
            num(c.banded_dp_seconds, 6)
        );
        let _ = writeln!(
            out,
            "      \"full_dp_seconds\": {},",
            num(c.full_dp_seconds, 6)
        );
        let _ = writeln!(
            out,
            "      \"myers_vs_banded_dp\": {},",
            num(c.banded_dp_seconds / c.myers_seconds.max(1e-12), 2)
        );
        let _ = writeln!(
            out,
            "      \"myers_vs_full_dp\": {},",
            num(c.full_dp_seconds / c.myers_seconds.max(1e-12), 2)
        );
        let _ = writeln!(out, "      \"agreement_checked\": true");
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let total_scan: u64 = sim.mds.iter().map(|m| m.scan_candidates).sum();
    let total_indexed: u64 = sim.mds.iter().map(|m| m.indexed_candidates).sum();
    let _ = writeln!(out, "  \"probe_workload\": {{");
    let _ = writeln!(out, "    \"dataset\": \"dblp-sim\",");
    let _ = writeln!(out, "    \"tuples\": {},", sim.tuples);
    let _ = writeln!(out, "    \"master_tuples\": {},", sim.master_tuples);
    let _ = writeln!(out, "    \"probe_sample\": {},", sim.probe_sample);
    let _ = writeln!(out, "    \"plans\": [");
    for (i, m) in sim.mds.iter().enumerate() {
        let comma = if i + 1 < sim.mds.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"name\": \"{}\", \"plan\": \"{}\", \"indexed_candidates\": {}, \
             \"verified_matches\": {}}}{comma}",
            m.name,
            m.plan.replace('"', "'"),
            m.indexed_candidates,
            m.matches
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(out, "    \"total_scan_candidates\": {total_scan},");
    let _ = writeln!(out, "    \"total_indexed_candidates\": {total_indexed},");
    let _ = writeln!(out, "    \"scan_seconds\": {},", num(sim.scan_seconds, 6));
    let _ = writeln!(
        out,
        "    \"indexed_seconds\": {},",
        num(sim.indexed_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"wall_clock_speedup\": {},",
        num(sim.scan_seconds / sim.indexed_seconds.max(1e-12), 2)
    );
    let _ = writeln!(out, "    \"scan_equality_asserted\": true,");
    let _ = writeln!(
        out,
        "    \"bit_identical_across_parallelism_and_interning\": {}",
        sim.bit_identical_matrix
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"committed_pr5_indexed_seconds\": {},",
        num(PR5_COMMITTED_INDEXED_SECONDS, 6)
    );
    // A smoke run probes a toy workload; the cross-commit comparison only
    // holds at the full PR5 sizes, so render null instead of a fiction.
    let vs_committed = if smoke {
        f64::NAN
    } else {
        PR5_COMMITTED_INDEXED_SECONDS / sim.indexed_seconds.max(1e-12)
    };
    let _ = writeln!(
        out,
        "  \"speedup_vs_committed_pr5\": {}",
        num(vs_committed, 2)
    );
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Part 8: runtime-dispatched SIMD — vectorized gram hashing and the
// column-at-a-time Myers driver (BENCH_pr9.json).
// ---------------------------------------------------------------------------

struct SimdReport {
    /// `DispatchInfo` under auto dispatch and under the forced-scalar kill
    /// switch — the latter proves the fallback row below really ran scalar.
    dispatch_auto: String,
    dispatch_forced: String,
    /// Gram hashing: every distinct master value of the 10k-DBLP Title and
    /// Authors columns, padded exactly as `QGramProfile::rebuild` pads.
    hash_values: usize,
    hash_bytes: u64,
    hash_q: usize,
    /// Production dispatcher under the forced-scalar override (the PR 8
    /// batched scalar kernel) vs under auto dispatch, hashes asserted
    /// equal window-by-window.
    hash_scalar_seconds: f64,
    hash_simd_seconds: f64,
    /// Whole `MasterIndex::build` on the same 10k master, both engines.
    index_build_scalar_seconds: f64,
    index_build_simd_seconds: f64,
    /// Columnar `~lev` driver on the BENCH_pr5 probe workload's Title
    /// column: per-value dispatch (master-compiled cached pattern +
    /// `distance_bounded` per pair) vs one probe-compiled pattern swept
    /// over the whole distinct column, verdicts asserted equal
    /// value-by-value.
    lev_probes: usize,
    lev_texts: usize,
    lev_k: usize,
    lev_pairs: u64,
    lev_hits: u64,
    per_value_seconds: f64,
    columnar_seconds: f64,
}

/// Distinct rendered (ASCII) values of one attribute column, sorted for
/// deterministic iteration order.
fn distinct_column(rel: &uniclean_model::Relation, attr: &str) -> Vec<String> {
    let attr = rel.schema().attr_id_or_panic(attr);
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (_, s) in rel.iter() {
        let v = s.value(attr);
        if !v.is_null() {
            seen.insert(v.render().into_owned());
        }
    }
    seen.into_iter().collect()
}

/// SIMD dispatch benches: (a) the vectorized FNV gram-hash lanes against
/// the batched scalar kernel over a 10k-DBLP index-build's hashing stage,
/// (b) the column-at-a-time Myers driver against per-value dispatch on the
/// BENCH_pr5 probe workload — both through the production dispatcher, both
/// with answers asserted equal before any timing is reported.
fn bench_simd(repeat: usize, smoke: bool) -> SimdReport {
    use uniclean_core::MasterIndex;
    use uniclean_model::{FxHashMap, TupleId};
    use uniclean_similarity::simd::{self, hash_gram_windows, hash_gram_windows_scalar};
    use uniclean_similarity::{ColumnVerdicts, EditScratch, MyersPattern};

    let dispatch_auto = simd::dispatch_info().to_string();
    simd::set_forced_scalar(Some(true));
    let dispatch_forced = simd::dispatch_info().to_string();
    simd::set_forced_scalar(None);

    // -- Gram hashing: 10k DBLP index-build hashing stage. -----------------
    let (hash_tuples, hash_master) = if smoke { (60, 300) } else { (1_000, 10_000) };
    let w = uniclean_datagen::dblp_similarity_workload(&GenParams {
        tuples: hash_tuples,
        master_tuples: hash_master,
        ..GenParams::default()
    });
    let q = 2usize; // LEV_QGRAM_Q — the shared `~lev`/`~qgram(2, …)` artifact.
    let mut padded: Vec<Vec<u8>> = Vec::new();
    for attr in ["Title", "Authors"] {
        for v in distinct_column(&w.master, attr) {
            if !v.is_ascii() {
                continue;
            }
            // Pad exactly as `QGramProfile::rebuild` pads ASCII strings.
            let mut buf = vec![0x1Fu8; q - 1];
            buf.extend_from_slice(v.as_bytes());
            buf.resize(buf.len() + q - 1, 0x1Fu8);
            padded.push(buf);
        }
    }
    let hash_values = padded.len();
    let hash_bytes: u64 = padded.iter().map(|p| p.len() as u64).sum();

    // Parity first: the dispatched kernel must reproduce the scalar hashes
    // bit-for-bit on every window of every value.
    let mut a = Vec::new();
    let mut b = Vec::new();
    for p in &padded {
        a.clear();
        b.clear();
        hash_gram_windows(p, q, &mut a);
        hash_gram_windows_scalar(p, q, &mut b);
        if a != b {
            eprintln!("gram-hash kernels disagreed on {p:?}");
            std::process::exit(1);
        }
    }

    // One corpus pass is sub-millisecond, below timer/frequency noise —
    // each sample times a block of passes and reports the per-pass time,
    // and the two engines alternate samples so clock drift on a shared
    // host cannot skew the ratio.
    let hash_passes = if smoke { 4 } else { 24 };
    let hash_sample = |forced: bool| -> f64 {
        simd::set_forced_scalar(Some(forced));
        let mut out = Vec::new();
        let started = Instant::now();
        let mut acc = 0u64;
        for _ in 0..hash_passes {
            for p in &padded {
                out.clear();
                hash_gram_windows(p, q, &mut out);
                acc ^= out.last().copied().unwrap_or(0);
            }
        }
        std::hint::black_box(acc);
        let elapsed = started.elapsed().as_secs_f64() / hash_passes as f64;
        simd::set_forced_scalar(None);
        elapsed
    };
    eprintln!("  simd: gram hashing ({hash_values} distinct values, {hash_bytes} bytes)…");
    let mut hash_scalar_seconds = f64::INFINITY;
    let mut hash_simd_seconds = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        hash_scalar_seconds = hash_scalar_seconds.min(hash_sample(true));
        hash_simd_seconds = hash_simd_seconds.min(hash_sample(false));
    }

    let build_sample = |forced: bool| -> f64 {
        simd::set_forced_scalar(Some(forced));
        let started = Instant::now();
        std::hint::black_box(MasterIndex::build(w.rules.mds(), &w.master));
        let elapsed = started.elapsed().as_secs_f64();
        simd::set_forced_scalar(None);
        elapsed
    };
    eprintln!("  simd: full index build ({hash_master} master tuples)…");
    let mut index_build_scalar_seconds = f64::INFINITY;
    let mut index_build_simd_seconds = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        index_build_scalar_seconds = index_build_scalar_seconds.min(build_sample(true));
        index_build_simd_seconds = index_build_simd_seconds.min(build_sample(false));
    }

    // -- Columnar Myers driver: BENCH_pr5 probe workload. ------------------
    let (lev_tuples, lev_master, sample) = if smoke {
        (200, 80, 60)
    } else {
        (4_000, 2_000, 800)
    };
    let w = uniclean_datagen::dblp_similarity_workload(&GenParams {
        tuples: lev_tuples,
        master_tuples: lev_master,
        ..GenParams::default()
    });
    let lev_k = 2usize; // sv4: Title ~lev(2) — the workload's `~lev` conjunct.
    let texts = distinct_column(&w.master, "Title");
    let title = w.dirty.schema().attr_id_or_panic("Title");
    let sample = sample.min(w.dirty.len());
    let probes: Vec<String> = (0..sample)
        .map(|row| {
            w.dirty
                .tuple(TupleId::from(row))
                .value(title)
                .render()
                .into_owned()
        })
        .collect();

    // Parity first: the columnar sweep's verdict bitmap must equal the
    // per-value kernel's accept/reject, probe × value.
    let mut edit = EditScratch::new();
    let mut verdicts = ColumnVerdicts::new();
    let mut lev_hits = 0u64;
    for p in &probes {
        let pat = MyersPattern::new(p);
        pat.distance_column(texts.iter(), lev_k, &mut edit, &mut verdicts);
        for (i, t) in texts.iter().enumerate() {
            let per_value = MyersPattern::new(t)
                .distance_bounded(p, lev_k, &mut edit)
                .is_some();
            if per_value != verdicts.get(i) {
                eprintln!("columnar verdict diverged on probe {p:?} vs text {t:?}");
                std::process::exit(1);
            }
        }
        lev_hits += verdicts.count_ones() as u64;
    }

    // Per-value dispatch, exactly as the pre-columnar probe path ran it: a
    // pattern cache keyed by master value (warm after the first probe) and
    // one `distance_bounded` call per pair.
    let mut per_value_seconds = f64::INFINITY;
    let mut columnar_seconds = f64::INFINITY;
    eprintln!(
        "  simd: columnar ~lev driver ({} probes x {} distinct values)…",
        probes.len(),
        texts.len()
    );
    for _ in 0..repeat.max(1) {
        let mut pats: FxHashMap<u32, MyersPattern> = FxHashMap::default();
        let started = Instant::now();
        let mut found = 0u64;
        for p in &probes {
            for (i, t) in texts.iter().enumerate() {
                let pat = pats.entry(i as u32).or_insert_with(|| MyersPattern::new(t));
                if pat.distance_bounded(p, lev_k, &mut edit).is_some() {
                    found += 1;
                }
            }
        }
        per_value_seconds = per_value_seconds.min(started.elapsed().as_secs_f64());
        assert_eq!(found, lev_hits, "per-value kernel disagreed during timing");

        let mut pat = MyersPattern::default();
        let started = Instant::now();
        let mut found = 0u64;
        for p in &probes {
            pat.build(p);
            pat.distance_column(texts.iter(), lev_k, &mut edit, &mut verdicts);
            found += verdicts.count_ones() as u64;
        }
        columnar_seconds = columnar_seconds.min(started.elapsed().as_secs_f64());
        assert_eq!(found, lev_hits, "columnar driver disagreed during timing");
    }

    SimdReport {
        dispatch_auto,
        dispatch_forced,
        hash_values,
        hash_bytes,
        hash_q: q,
        hash_scalar_seconds,
        hash_simd_seconds,
        index_build_scalar_seconds,
        index_build_simd_seconds,
        lev_probes: probes.len(),
        lev_texts: texts.len(),
        lev_k,
        lev_pairs: (probes.len() * texts.len()) as u64,
        lev_hits,
        per_value_seconds,
        columnar_seconds,
    }
}

fn render_simd_json(r: &SimdReport, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"pr9_simd_dispatch\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p uniclean-bench --bin perf -- --simd-only\","
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"note\": \"gram_hashing times the production dispatcher over the padded distinct \
         master values of a 10k-DBLP index build, once under the forced-scalar override (the \
         PR 8 batched scalar kernel) and once auto-dispatched, hashes asserted bit-identical \
         window-by-window first; index_build times the whole MasterIndex::build both ways. \
         columnar_lev times one probe-compiled Myers pattern swept over the BENCH_pr5 \
         workload's distinct Title column against the per-value dispatch it replaced \
         (master-compiled cached pattern + distance_bounded per pair), verdicts asserted \
         equal value-by-value before timing. forced_scalar dispatch names the fallback row's \
         engine.\","
    );
    let _ = writeln!(out, "  \"dispatch\": {{");
    let _ = writeln!(out, "    \"auto\": \"{}\",", r.dispatch_auto);
    let _ = writeln!(out, "    \"forced_scalar\": \"{}\"", r.dispatch_forced);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"gram_hashing\": {{");
    let _ = writeln!(out, "    \"distinct_values\": {},", r.hash_values);
    let _ = writeln!(out, "    \"padded_bytes\": {},", r.hash_bytes);
    let _ = writeln!(out, "    \"q\": {},", r.hash_q);
    let _ = writeln!(
        out,
        "    \"scalar_seconds\": {},",
        num(r.hash_scalar_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"simd_seconds\": {},",
        num(r.hash_simd_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"speedup\": {},",
        num(r.hash_scalar_seconds / r.hash_simd_seconds.max(1e-12), 2)
    );
    let _ = writeln!(out, "    \"hashes_bit_identical\": true");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"index_build\": {{");
    let _ = writeln!(
        out,
        "    \"scalar_seconds\": {},",
        num(r.index_build_scalar_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"simd_seconds\": {},",
        num(r.index_build_simd_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"speedup\": {}",
        num(
            r.index_build_scalar_seconds / r.index_build_simd_seconds.max(1e-12),
            2
        )
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"columnar_lev\": {{");
    let _ = writeln!(out, "    \"probes\": {},", r.lev_probes);
    let _ = writeln!(out, "    \"distinct_values\": {},", r.lev_texts);
    let _ = writeln!(out, "    \"k\": {},", r.lev_k);
    let _ = writeln!(out, "    \"pairs\": {},", r.lev_pairs);
    let _ = writeln!(out, "    \"within_k\": {},", r.lev_hits);
    let _ = writeln!(
        out,
        "    \"per_value_seconds\": {},",
        num(r.per_value_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"columnar_seconds\": {},",
        num(r.columnar_seconds, 6)
    );
    let _ = writeln!(
        out,
        "    \"speedup\": {},",
        num(r.per_value_seconds / r.columnar_seconds.max(1e-12), 2)
    );
    let _ = writeln!(out, "    \"verdicts_equal_value_by_value\": true");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Validate, write, re-read and re-validate one JSON report file.
fn write_validated(path: &str, json: &str) {
    if let Err(pos) = validate_json(json) {
        eprintln!("emitted JSON is malformed at byte {pos}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    // Read back and re-validate: the smoke contract is "the file on disk
    // parses", not "the string in memory did".
    match std::fs::read_to_string(path) {
        Ok(disk) if validate_json(&disk).is_ok() => {}
        Ok(_) => {
            eprintln!("{path} does not round-trip as valid JSON");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot re-read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    // `--storage-only`: emit just BENCH_pr4.json (the storage comparison),
    // skipping the slower thread-matrix and delta replays. `--kernels-only`
    // likewise emits just BENCH_pr8.json, and `--sim-only` just
    // BENCH_pr5.json.
    let storage_only = args.flag("storage-only");
    let kernels_only = args.flag("kernels-only");
    let sim_only = args.flag("sim-only");
    let simd_only = args.flag("simd-only");
    let replication_only = args.flag("replication-only");
    let out_path = args.get_or("out", "BENCH_pr2.json").to_string();
    let delta_out_path = args.get_or("delta-out", "BENCH_pr3.json").to_string();
    let storage_out_path = args.get_or("storage-out", "BENCH_pr4.json").to_string();
    let sim_out_path = args.get_or("sim-out", "BENCH_pr5.json").to_string();
    let serve_out_path = args.get_or("serve-out", "BENCH_pr6.json").to_string();
    let durability_out_path = args.get_or("durability-out", "BENCH_pr7.json").to_string();
    let kernels_out_path = args.get_or("kernels-out", "BENCH_pr8.json").to_string();
    let simd_out_path = args.get_or("simd-out", "BENCH_pr9.json").to_string();
    let replication_out_path = args
        .get_or("replication-out", "BENCH_pr10.json")
        .to_string();
    let (tuples, master, repeat, thread_counts): (usize, usize, usize, Vec<usize>) = if smoke {
        (200, 80, 1, vec![1, 2])
    } else {
        (
            args.get_usize("tuples", 10_000),
            args.get_usize("master", 2_000),
            args.get_usize("repeat", 3),
            vec![1, 2, 4, 8],
        )
    };
    let (delta_base, delta_batches, delta_batch) = if smoke {
        (240, 3, 20)
    } else {
        (
            args.get_usize("delta-base", 10_000),
            args.get_usize("delta-batches", 10),
            args.get_usize("delta-batch", 100),
        )
    };

    let started = Instant::now();
    let (sim_tuples, sim_master, sim_sample) = if smoke {
        (200, 80, 60)
    } else {
        (4_000, 2_000, 800)
    };

    if simd_only {
        let simd = bench_simd(repeat, smoke);
        write_validated(&simd_out_path, &render_simd_json(&simd, smoke));
        println!(
            "## simd — gram hashing: scalar {:.6}s vs simd {:.6}s ({:.1}x); index build {:.1}x; \
             columnar ~lev: per-value {:.6}s vs columnar {:.6}s ({:.1}x)",
            simd.hash_scalar_seconds,
            simd.hash_simd_seconds,
            simd.hash_scalar_seconds / simd.hash_simd_seconds.max(1e-12),
            simd.index_build_scalar_seconds / simd.index_build_simd_seconds.max(1e-12),
            simd.per_value_seconds,
            simd.columnar_seconds,
            simd.per_value_seconds / simd.columnar_seconds.max(1e-12),
        );
        println!(
            "## dispatch: {} | forced: {}",
            simd.dispatch_auto, simd.dispatch_forced
        );
        println!(
            "wrote {simd_out_path} ({:.1}s){}",
            started.elapsed().as_secs_f64(),
            if smoke { " [smoke]" } else { "" }
        );
        return;
    }

    let (repl_batches, repl_batch, repl_wal_sizes): (usize, usize, Vec<usize>) = if smoke {
        (3, 40, vec![2, 4])
    } else {
        (
            args.get_usize("repl-batches", 20),
            args.get_usize("repl-batch", 100),
            vec![5, 20, 80],
        )
    };

    if replication_only {
        let need = repl_batches.max(repl_wal_sizes.iter().copied().max().unwrap_or(0)) * repl_batch;
        let params = GenParams {
            tuples: need,
            master_tuples: if smoke { 80 } else { 2_000 },
            ..GenParams::default()
        };
        let w = hosp_workload(&params);
        eprintln!(
            "replication workload ({repl_batches} x {repl_batch} batches, \
             failover WALs {repl_wal_sizes:?})…"
        );
        let repl = bench_replication(&w, repl_batches, repl_batch, &repl_wal_sizes);
        write_validated(
            &replication_out_path,
            &render_replication_json(&repl, smoke),
        );
        println!(
            "## replication — {} x {} batches: solo {:.3}s vs with standby {:.3}s ({:.2}x), \
             lag max {} frames / mean {:.1}, drain {:.3}s; failover {}",
            repl.ingest.batches,
            repl.ingest.batch_tuples,
            repl.ingest.solo_seconds,
            repl.ingest.standby_seconds,
            repl.ingest.standby_seconds / repl.ingest.solo_seconds.max(1e-12),
            repl.ingest.lag_max_frames,
            repl.ingest.lag_mean_frames,
            repl.ingest.drain_seconds,
            repl.failover
                .iter()
                .map(|f| format!(
                    "{}B catch-up {:.3}s + promote {:.3}s",
                    f.wal_bytes, f.catch_up_seconds, f.promote_seconds
                ))
                .collect::<Vec<_>>()
                .join(", "),
        );
        println!(
            "wrote {replication_out_path} ({:.1}s){}",
            started.elapsed().as_secs_f64(),
            if smoke { " [smoke]" } else { "" }
        );
        return;
    }

    if kernels_only {
        let cases = bench_kernels(repeat, smoke);
        eprintln!(
            "similarity workload (access paths, {sim_tuples} tuples, {sim_master} master, \
             {sim_sample} probes)…"
        );
        let sim = bench_similarity(sim_tuples, sim_master, sim_sample, repeat);
        write_validated(&kernels_out_path, &render_kernels_json(&cases, &sim, smoke));
        for c in &cases {
            println!(
                "## kernels — {}: myers {:.6}s vs banded DP {:.6}s ({:.1}x) vs full DP {:.6}s ({:.1}x)",
                c.name,
                c.myers_seconds,
                c.banded_dp_seconds,
                c.banded_dp_seconds / c.myers_seconds.max(1e-12),
                c.full_dp_seconds,
                c.full_dp_seconds / c.myers_seconds.max(1e-12),
            );
        }
        println!(
            "## probe workload — {:.3}s scan vs {:.3}s indexed ({:.1}x); committed pr5 indexed \
             {:.6}s -> {:.1}x vs committed",
            sim.scan_seconds,
            sim.indexed_seconds,
            sim.scan_seconds / sim.indexed_seconds.max(1e-12),
            PR5_COMMITTED_INDEXED_SECONDS,
            PR5_COMMITTED_INDEXED_SECONDS / sim.indexed_seconds.max(1e-12),
        );
        println!(
            "wrote {kernels_out_path} ({:.1}s){}",
            started.elapsed().as_secs_f64(),
            if smoke { " [smoke]" } else { "" }
        );
        return;
    }

    if sim_only {
        eprintln!(
            "similarity workload (access paths, {sim_tuples} tuples, {sim_master} master, \
             {sim_sample} probes)…"
        );
        let sim = bench_similarity(sim_tuples, sim_master, sim_sample, repeat);
        write_validated(&sim_out_path, &render_sim_json(&sim, smoke));
        println!(
            "## access paths — {:.3}s scan vs {:.3}s indexed ({:.1}x)",
            sim.scan_seconds,
            sim.indexed_seconds,
            sim.scan_seconds / sim.indexed_seconds.max(1e-12),
        );
        println!(
            "wrote {sim_out_path} ({:.1}s)",
            started.elapsed().as_secs_f64()
        );
        return;
    }

    let params = GenParams {
        tuples,
        master_tuples: master,
        ..GenParams::default()
    };
    eprintln!("generating workloads ({tuples} tuples, {master} master)…");
    let hosp = hosp_workload(&params);

    if storage_only {
        eprintln!("storage workload (columnar vs row-major, {tuples} tuples)…");
        let storage = bench_storage(&hosp, repeat);
        write_validated(&storage_out_path, &render_storage_json(&storage, smoke));
        println!(
            "## storage — {} cells: columnar {} B vs row-major {} B ({:.2}x)",
            storage.cells,
            storage.columnar_bytes,
            storage.row_major_bytes,
            storage.row_major_bytes as f64 / storage.columnar_bytes.max(1) as f64,
        );
        println!(
            "wrote {storage_out_path} ({:.1}s)",
            started.elapsed().as_secs_f64()
        );
        return;
    }

    let dblp = dblp_workload(&params);
    let reports = vec![
        bench_dataset("hosp", &hosp, &thread_counts, repeat),
        bench_dataset("dblp", &dblp, &thread_counts, repeat),
    ];

    let json = render_json(&reports, smoke, repeat);
    write_validated(&out_path, &json);

    eprintln!("storage workload (columnar vs row-major, {tuples} tuples)…");
    let storage = bench_storage(&hosp, repeat);
    write_validated(&storage_out_path, &render_storage_json(&storage, smoke));

    eprintln!(
        "similarity workload (access paths, {sim_tuples} tuples, {sim_master} master, \
         {sim_sample} probes)…"
    );
    let sim = bench_similarity(sim_tuples, sim_master, sim_sample, repeat);
    write_validated(&sim_out_path, &render_sim_json(&sim, smoke));

    let kernel_cases = bench_kernels(repeat, smoke);
    write_validated(
        &kernels_out_path,
        &render_kernels_json(&kernel_cases, &sim, smoke),
    );

    let simd = bench_simd(repeat, smoke);
    write_validated(&simd_out_path, &render_simd_json(&simd, smoke));

    eprintln!("delta workload ({delta_base} base + {delta_batches} x {delta_batch} batches)…");
    let delta = bench_delta(delta_base, delta_batches, delta_batch, master);
    let delta_json = render_delta_json(&delta, smoke);
    write_validated(&delta_out_path, &delta_json);

    let (serve_shards, serve_relations, serve_base, serve_batches, serve_batch, serve_checks) =
        if smoke {
            (vec![1usize, 2], 2usize, 150usize, 3usize, 20usize, 60usize)
        } else {
            (
                vec![1usize, 2, 4],
                4usize,
                args.get_usize("serve-base", 10_000),
                args.get_usize("serve-batches", 10),
                args.get_usize("serve-batch", 100),
                args.get_usize("serve-checks", 2_000),
            )
        };
    eprintln!(
        "serving workload ({serve_relations} relations x ({serve_base} base + \
         {serve_batches} x {serve_batch} batches), shards {serve_shards:?})…"
    );
    let serve = bench_serving(
        &serve_shards,
        serve_relations,
        serve_base,
        serve_batches,
        serve_batch,
        serve_checks,
        master,
    );
    write_validated(&serve_out_path, &render_serve_json(&serve, smoke));

    let (dur_batches, dur_batch, dur_wal_sizes): (usize, usize, Vec<usize>) = if smoke {
        (3, 40, vec![2, 4])
    } else {
        (
            args.get_usize("dur-batches", 20),
            args.get_usize("dur-batch", 100),
            vec![5, 20, 80],
        )
    };
    eprintln!(
        "durability workload ({dur_batches} x {dur_batch} batches per mode, \
         recovery WALs {dur_wal_sizes:?})…"
    );
    let durability = bench_durability(&hosp, dur_batches, dur_batch, &dur_wal_sizes);
    write_validated(
        &durability_out_path,
        &render_durability_json(&durability, smoke),
    );

    eprintln!(
        "replication workload ({repl_batches} x {repl_batch} batches, \
         failover WALs {repl_wal_sizes:?})…"
    );
    let replication = bench_replication(&hosp, repl_batches, repl_batch, &repl_wal_sizes);
    write_validated(
        &replication_out_path,
        &render_replication_json(&replication, smoke),
    );

    print!("{}", render_table(&reports));
    let speedups = delta.speedups();
    println!(
        "## delta — {} base + {} x {} batches: mean speedup {:.1}x, min {:.1}x",
        delta.base_tuples,
        delta.steps.len(),
        delta.batch_tuples,
        speedups
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .sum::<f64>()
            / speedups.len().max(1) as f64,
        speedups.iter().copied().fold(f64::INFINITY, f64::min),
    );
    println!(
        "## storage — {} cells: columnar {} B vs row-major {} B ({:.2}x), scans {}",
        storage.cells,
        storage.columnar_bytes,
        storage.row_major_bytes,
        storage.row_major_bytes as f64 / storage.columnar_bytes.max(1) as f64,
        storage
            .scans
            .iter()
            .map(|s| format!(
                "{} {:.2}x",
                s.name,
                s.row_seconds / s.columnar_seconds.max(1e-12)
            ))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let sim_scan: u64 = sim.mds.iter().map(|m| m.scan_candidates).sum();
    let sim_idx: u64 = sim.mds.iter().map(|m| m.indexed_candidates).sum();
    println!(
        "## access paths — {} probes x {} mds: candidates {} -> {} ({:.1}x fewer), \
         wall clock {:.3}s -> {:.3}s ({:.1}x)",
        sim.probe_sample,
        sim.mds.len(),
        sim_scan,
        sim_idx,
        sim_scan as f64 / sim_idx.max(1) as f64,
        sim.scan_seconds,
        sim.indexed_seconds,
        sim.scan_seconds / sim.indexed_seconds.max(1e-12),
    );
    for c in &kernel_cases {
        println!(
            "## kernels — {}: myers {:.6}s vs banded DP {:.6}s ({:.1}x) vs full DP {:.6}s ({:.1}x)",
            c.name,
            c.myers_seconds,
            c.banded_dp_seconds,
            c.banded_dp_seconds / c.myers_seconds.max(1e-12),
            c.full_dp_seconds,
            c.full_dp_seconds / c.myers_seconds.max(1e-12),
        );
    }
    for run in &serve.runs {
        let batches_total = run.batches * run.relations;
        println!(
            "## serving — {} shards x {} relations: {} batches in {:.3}s ({:.1} batches/s, \
             {:.0} tuples/s), {} checks in {:.3}s ({:.0} q/s), busy {} , all_consistent {}",
            run.shards,
            run.relations,
            batches_total,
            run.ingest_seconds,
            batches_total as f64 / run.ingest_seconds.max(1e-12),
            (batches_total * run.batch_tuples) as f64 / run.ingest_seconds.max(1e-12),
            run.check_queries,
            run.check_seconds,
            run.check_queries as f64 / run.check_seconds.max(1e-12),
            run.busy_rejections,
            run.all_consistent,
        );
    }
    let fsync_run = durability.ingest.iter().find(|m| m.mode == "wal_fsync");
    let memory_run = durability.ingest.iter().find(|m| m.mode == "memory");
    if let (Some(f), Some(m)) = (fsync_run, memory_run) {
        println!(
            "## durability — {} x {} batches: fsync WAL {:.3}s vs memory {:.3}s \
             ({:.2}x), recovery {}",
            f.batches,
            f.batch_tuples,
            f.seconds,
            m.seconds,
            f.seconds / m.seconds.max(1e-12),
            durability
                .recovery
                .iter()
                .map(|r| format!("{} tuples {:.3}s", r.wal_tuples, r.recovery_seconds))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    println!(
        "## replication — {} x {} batches: solo {:.3}s vs with standby {:.3}s ({:.2}x), \
         lag max {} frames, drain {:.3}s; failover {}",
        replication.ingest.batches,
        replication.ingest.batch_tuples,
        replication.ingest.solo_seconds,
        replication.ingest.standby_seconds,
        replication.ingest.standby_seconds / replication.ingest.solo_seconds.max(1e-12),
        replication.ingest.lag_max_frames,
        replication.ingest.drain_seconds,
        replication
            .failover
            .iter()
            .map(|f| format!(
                "{}B catch-up {:.3}s + promote {:.3}s",
                f.wal_bytes, f.catch_up_seconds, f.promote_seconds
            ))
            .collect::<Vec<_>>()
            .join(", "),
    );
    println!(
        "wrote {out_path} + {storage_out_path} + {sim_out_path} + {kernels_out_path} \
         + {simd_out_path} + {delta_out_path} + {serve_out_path} + {durability_out_path} \
         + {replication_out_path} ({} datasets, {:.1}s total){}",
        reports.len(),
        started.elapsed().as_secs_f64(),
        if smoke { " [smoke]" } else { "" }
    );
}
