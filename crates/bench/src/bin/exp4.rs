//! Exp-4 (Fig. 13): Impact of dup% and asr% on deterministic fixes.
//!
//! (a) share of deterministic fixes vs dup% ∈ {20..100} at asr% = 40;
//! (b) share of deterministic fixes vs asr% ∈ {0..80} at dup% = 40.
//! Both on HOSP and DBLP.
//!
//! ```text
//! cargo run -p uniclean-bench --release --bin exp4 -- [--sweep dup|asr|both] [--full]
//! ```

use std::path::Path;

use uniclean_bench::{
    dataset_workload, deterministic_share, scaled_params, Args, DatasetKind, Figure, Series,
};
use uniclean_datagen::GenParams;

fn sweep_dup(full: bool) -> Figure {
    let mut series = Vec::new();
    for kind in [DatasetKind::Hosp, DatasetKind::Dblp] {
        let base = scaled_params(kind, full);
        let mut pts = Vec::new();
        for dup in [20u32, 40, 60, 80, 100] {
            let params = GenParams {
                dup_rate: dup as f64 / 100.0,
                ..base.clone()
            };
            let w = dataset_workload(kind, &params);
            eprintln!("[exp4:dup] {} dup={dup}%", kind.label());
            pts.push((dup as f64, deterministic_share(&w)));
        }
        series.push(Series {
            label: kind.label().to_uppercase(),
            points: pts,
        });
    }
    Figure {
        id: "fig13a".into(),
        title: "Exp-4 Deterministic fixes vs duplicate rate (asr%=40)".into(),
        x_label: "dup %".into(),
        y_label: "deterministic fixes %".into(),
        series,
    }
}

fn sweep_asr(full: bool) -> Figure {
    let mut series = Vec::new();
    for kind in [DatasetKind::Hosp, DatasetKind::Dblp] {
        let base = scaled_params(kind, full);
        let mut pts = Vec::new();
        for asr in [0u32, 20, 40, 60, 80] {
            let params = GenParams {
                asserted_rate: asr as f64 / 100.0,
                ..base.clone()
            };
            let w = dataset_workload(kind, &params);
            eprintln!("[exp4:asr] {} asr={asr}%", kind.label());
            pts.push((asr as f64, deterministic_share(&w)));
        }
        series.push(Series {
            label: kind.label().to_uppercase(),
            points: pts,
        });
    }
    Figure {
        id: "fig13b".into(),
        title: "Exp-4 Deterministic fixes vs asserted rate (dup%=40)".into(),
        x_label: "asr %".into(),
        y_label: "deterministic fixes %".into(),
        series,
    }
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let which = args.get_or("sweep", "both");
    if which == "dup" || which == "both" {
        let fig = sweep_dup(full);
        fig.print();
        fig.write_json(Path::new("experiments"))
            .expect("write json");
    }
    if which == "asr" || which == "both" {
        let fig = sweep_asr(full);
        fig.print();
        fig.write_json(Path::new("experiments"))
            .expect("write json");
    }
}
