//! Ablations beyond the paper's figures: sensitivity of the pipeline to its
//! thresholds, and the master-free mode of §1/§9.
//!
//! * `--sweep eta` — confidence threshold η: lowering η lets cRepair trust
//!   weaker assertions (more deterministic fixes, lower precision);
//! * `--sweep delta2` — entropy threshold δ2: raising δ2 lets eRepair
//!   resolve more uncertain conflicts (recall up, precision down);
//! * `--sweep master` — with master data vs self-matching vs CFDs only:
//!   the paper's contention that "master data is desirable … but not a
//!   must; reliable and heuristic fixes would not degrade substantially".
//!
//! ```text
//! cargo run -p uniclean-bench --release --bin ablation -- [--sweep eta|delta2|master|all]
//! ```

use std::path::Path;

use uniclean_bench::{dataset_workload, scaled_params, Args, DatasetKind, Figure, Series};
use uniclean_core::{CleanConfig, Cleaner, MasterSource, Phase};
use uniclean_datagen::Workload;
use uniclean_metrics::repair_quality;

/// A session over `w` with the given master source and config.
fn build(w: &Workload, master: MasterSource, cfg: CleanConfig) -> Cleaner {
    Cleaner::builder()
        .rules(w.rules.clone())
        .master(master)
        .config(cfg)
        .build()
        .expect("ablation sessions are well-formed")
}

fn workload() -> Workload {
    dataset_workload(DatasetKind::Hosp, &scaled_params(DatasetKind::Hosp, false))
}

fn sweep_eta(w: &Workload) -> Figure {
    let mut prec = Vec::new();
    let mut rec = Vec::new();
    let mut det_share = Vec::new();
    for eta100 in [60u32, 70, 80, 90, 100] {
        let cfg = CleanConfig {
            eta: eta100 as f64 / 100.0,
            delta_entropy: 0.8,
            ..CleanConfig::default()
        };
        let uni = build(w, MasterSource::external(w.master.clone()), cfg);
        let r = uni.clean(&w.dirty, Phase::Full);
        let q = repair_quality(&w.dirty, &r.repaired, &w.truth);
        eprintln!("[ablation:eta] {eta100}");
        prec.push((eta100 as f64 / 100.0, q.precision));
        rec.push((eta100 as f64 / 100.0, q.recall));
        let (det, _, _) = r.fix_counts();
        let total = r.report.cells_touched().max(1);
        det_share.push((eta100 as f64 / 100.0, det as f64 / total as f64));
    }
    Figure {
        id: "ablation-eta".into(),
        title: "Ablation: confidence threshold η (HOSP, full pipeline)".into(),
        x_label: "eta".into(),
        y_label: "metric".into(),
        series: vec![
            Series {
                label: "precision".into(),
                points: prec,
            },
            Series {
                label: "recall".into(),
                points: rec,
            },
            Series {
                label: "det share".into(),
                points: det_share,
            },
        ],
    }
}

fn sweep_delta2(w: &Workload) -> Figure {
    let mut prec = Vec::new();
    let mut rec = Vec::new();
    for d100 in [50u32, 65, 80, 90, 99] {
        let cfg = CleanConfig {
            eta: 1.0,
            delta_entropy: d100 as f64 / 100.0,
            ..CleanConfig::default()
        };
        let uni = build(w, MasterSource::external(w.master.clone()), cfg);
        // Measure at the c+e prefix where δ2 acts.
        let r = uni.clean(&w.dirty, Phase::CERepair);
        let q = repair_quality(&w.dirty, &r.repaired, &w.truth);
        eprintln!("[ablation:delta2] {d100}");
        prec.push((d100 as f64 / 100.0, q.precision));
        rec.push((d100 as f64 / 100.0, q.recall));
    }
    Figure {
        id: "ablation-delta2".into(),
        title: "Ablation: entropy threshold δ2 (HOSP, cRepair+eRepair)".into(),
        x_label: "delta2".into(),
        y_label: "metric".into(),
        series: vec![
            Series {
                label: "precision".into(),
                points: prec,
            },
            Series {
                label: "recall".into(),
                points: rec,
            },
        ],
    }
}

fn sweep_master(w: &Workload) -> Figure {
    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    };
    let mut series = Vec::new();
    // With master data (the full system).
    {
        let uni = build(w, MasterSource::external(w.master.clone()), cfg.clone());
        let r = uni.clean(&w.dirty, Phase::Full);
        let q = repair_quality(&w.dirty, &r.repaired, &w.truth);
        eprintln!("[ablation:master] with-master");
        series.push(Series {
            label: "with master".into(),
            points: vec![(0.0, q.precision), (1.0, q.recall), (2.0, q.f1())],
        });
    }
    // Master-free: the data is its own master (self-matching MDs).
    {
        let r = build(w, MasterSource::SelfSnapshot, cfg.clone()).clean(&w.dirty, Phase::Full);
        let q = repair_quality(&w.dirty, &r.repaired, &w.truth);
        eprintln!("[ablation:master] self-match");
        series.push(Series {
            label: "self-matching".into(),
            points: vec![(0.0, q.precision), (1.0, q.recall), (2.0, q.f1())],
        });
    }
    // No MDs at all.
    {
        let uni = Cleaner::builder()
            .rules(w.rules.without_mds())
            .config(cfg)
            .build()
            .expect("CFD-only session");
        let r = uni.clean(&w.dirty, Phase::Full);
        let q = repair_quality(&w.dirty, &r.repaired, &w.truth);
        eprintln!("[ablation:master] cfd-only");
        series.push(Series {
            label: "CFDs only".into(),
            points: vec![(0.0, q.precision), (1.0, q.recall), (2.0, q.f1())],
        });
    }
    Figure {
        id: "ablation-master".into(),
        title: "Ablation: master data vs self-matching vs CFDs only (HOSP; x: 0=precision 1=recall 2=F1)".into(),
        x_label: "metric idx".into(),
        y_label: "value".into(),
        series,
    }
}

fn main() {
    let args = Args::parse();
    let which = args.get_or("sweep", "all");
    let w = workload();
    let mut figs = Vec::new();
    if which == "eta" || which == "all" {
        figs.push(sweep_eta(&w));
    }
    if which == "delta2" || which == "all" {
        figs.push(sweep_delta2(&w));
    }
    if which == "master" || which == "all" {
        figs.push(sweep_master(&w));
    }
    for fig in figs {
        fig.print();
        fig.write_json(Path::new("experiments"))
            .expect("write json");
    }
}
