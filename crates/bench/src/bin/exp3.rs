//! Exp-3 (Fig. 12): Accuracy of deterministic and reliable fixes.
//!
//! Precision and recall vs noise rate (2–10%), dup% = 40, for the phase
//! prefixes cRepair, cRepair+eRepair and the full Uni.
//!
//! ```text
//! cargo run -p uniclean-bench --release --bin exp3 -- [--dataset hosp|dblp|both] [--full]
//! ```

use std::path::Path;

use uniclean_bench::{
    dataset_workload, repair_pr_with, scaled_params, session, Args, DatasetKind, Figure, Series,
};
use uniclean_datagen::GenParams;
use uniclean_metrics::PrecisionRecall;

fn run(kind: DatasetKind, full: bool) -> (Figure, Figure) {
    let base = scaled_params(kind, full);
    let variants = ["crepair", "crepair+erepair", "uni"];
    let labels = ["cRepair", "cRepair+eRepair", "Uni"];
    let mut prec: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    let mut rec: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    for noi in [2u32, 4, 6, 8, 10] {
        let params = GenParams {
            noise_rate: noi as f64 / 100.0,
            ..base.clone()
        };
        let w = dataset_workload(kind, &params);
        eprintln!("[exp3:{}] noi={noi}%", kind.label());
        // One session (and one master index) shared by all three variants.
        let uni = session(&w);
        for (i, v) in variants.iter().enumerate() {
            let pr: PrecisionRecall = repair_pr_with(&uni, &w, v);
            prec[i].push((noi as f64, pr.precision));
            rec[i].push((noi as f64, pr.recall));
        }
    }
    let subs = if kind == DatasetKind::Hosp {
        ("a", "b")
    } else {
        ("c", "d")
    };
    let mk = |sub: &str, what: &str, data: Vec<Vec<(f64, f64)>>| Figure {
        id: format!("fig12{sub}-{}", kind.label()),
        title: format!(
            "Exp-3 {} of the three phases ({})",
            what,
            kind.label().to_uppercase()
        ),
        x_label: "noise %".into(),
        y_label: what.to_lowercase(),
        series: labels
            .iter()
            .zip(data)
            .map(|(l, points)| Series {
                label: l.to_string(),
                points,
            })
            .collect(),
    };
    (mk(subs.0, "Precision", prec), mk(subs.1, "Recall", rec))
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let kinds: Vec<DatasetKind> = match args.get_or("dataset", "both") {
        "both" => vec![DatasetKind::Hosp, DatasetKind::Dblp],
        name => vec![DatasetKind::parse(name).expect("dataset: hosp|dblp|both")],
    };
    for kind in kinds {
        let (p, r) = run(kind, full);
        p.print();
        r.print();
        p.write_json(Path::new("experiments")).expect("write json");
        r.write_json(Path::new("experiments")).expect("write json");
    }
}
