//! Exp-5 (Fig. 14): Scalability.
//!
//! Cumulative phase times (cRepair / +eRepair / +hRepair = Uni total) while
//! sweeping |D| (a,c,e), |Dm| (b,d,f) on HOSP/DBLP/TPCH, and |Σ| (g),
//! |Γ| (h) on TPCH.
//!
//! ```text
//! cargo run -p uniclean-bench --release --bin exp5 -- \
//!     [--dataset hosp|dblp|tpch|all] [--sweep d|dm|sigma|gamma|all] [--full]
//! ```

use std::path::Path;

use uniclean_bench::{run_uni_observed, scaled_params, Args, DatasetKind, Figure, Series};
use uniclean_core::{Phase, PhaseTimings};
use uniclean_datagen::{
    dblp_workload, hosp_workload, tpch_workload, GenParams, TpchScale, Workload,
};

fn build(kind: DatasetKind, params: &GenParams, scale: TpchScale) -> Workload {
    match kind {
        DatasetKind::Hosp => hosp_workload(params),
        DatasetKind::Dblp => dblp_workload(params),
        DatasetKind::Tpch => tpch_workload(params, scale),
    }
}

/// Run the full pipeline, returning cumulative (c, c+e, c+e+h) seconds as
/// streamed through the [`PhaseTimings`] observer.
fn timed(w: &Workload) -> (f64, f64, f64) {
    let mut timings = PhaseTimings::default();
    run_uni_observed(w, Phase::Full, &mut timings);
    let [c, e, h] = timings.seconds();
    (c, c + e, c + e + h)
}

fn sweep_size(kind: DatasetKind, vary_master: bool, full: bool) -> Figure {
    let base = scaled_params(kind, full);
    let steps: Vec<usize> = (1..=5).collect();
    let mut s_c = Vec::new();
    let mut s_ce = Vec::new();
    let mut s_full = Vec::new();
    for step in steps {
        let params = if vary_master {
            GenParams {
                master_tuples: base.master_tuples * step,
                ..base.clone()
            }
        } else {
            GenParams {
                tuples: base.tuples * step,
                ..base.clone()
            }
        };
        let w = build(kind, &params, TpchScale::default());
        let x = if vary_master {
            params.master_tuples
        } else {
            params.tuples
        } as f64;
        eprintln!(
            "[exp5:{}:{}] |D|={} |Dm|={}",
            kind.label(),
            if vary_master { "dm" } else { "d" },
            params.tuples,
            params.master_tuples
        );
        let (c, ce, f) = timed(&w);
        s_c.push((x, c));
        s_ce.push((x, ce));
        s_full.push((x, f));
    }
    let sub = match (kind, vary_master) {
        (DatasetKind::Hosp, false) => "a",
        (DatasetKind::Hosp, true) => "b",
        (DatasetKind::Dblp, false) => "c",
        (DatasetKind::Dblp, true) => "d",
        (DatasetKind::Tpch, false) => "e",
        (DatasetKind::Tpch, true) => "f",
    };
    Figure {
        id: format!("fig14{sub}-{}", kind.label()),
        title: format!(
            "Exp-5 Scalability in {} ({})",
            if vary_master { "|Dm|" } else { "|D|" },
            kind.label().to_uppercase()
        ),
        x_label: if vary_master {
            "|Dm| tuples"
        } else {
            "|D| tuples"
        }
        .into(),
        y_label: "seconds".into(),
        series: vec![
            Series {
                label: "cRepair".into(),
                points: s_c,
            },
            Series {
                label: "cRepair+eRepair".into(),
                points: s_ce,
            },
            Series {
                label: "Uni".into(),
                points: s_full,
            },
        ],
    }
}

fn sweep_rules(gamma: bool, full: bool) -> Figure {
    let base = scaled_params(DatasetKind::Tpch, full);
    let mut s_c = Vec::new();
    let mut s_ce = Vec::new();
    let mut s_full = Vec::new();
    for mult in 1..=5usize {
        let scale = if gamma {
            TpchScale {
                sigma_multiplier: 1,
                gamma_multiplier: mult,
            }
        } else {
            TpchScale {
                sigma_multiplier: mult,
                gamma_multiplier: 1,
            }
        };
        let w = build(DatasetKind::Tpch, &base, scale);
        let x = if gamma { 10 * mult } else { 55 * mult } as f64;
        eprintln!(
            "[exp5:tpch:{}] x={x}",
            if gamma { "gamma" } else { "sigma" }
        );
        let (c, ce, f) = timed(&w);
        s_c.push((x, c));
        s_ce.push((x, ce));
        s_full.push((x, f));
    }
    Figure {
        id: if gamma { "fig14h-tpch" } else { "fig14g-tpch" }.into(),
        title: format!(
            "Exp-5 Scalability in {} (TPCH)",
            if gamma { "|Γ|" } else { "|Σ|" }
        ),
        x_label: if gamma { "|Γ| (MDs)" } else { "|Σ| (CFDs)" }.into(),
        y_label: "seconds".into(),
        series: vec![
            Series {
                label: "cRepair".into(),
                points: s_c,
            },
            Series {
                label: "cRepair+eRepair".into(),
                points: s_ce,
            },
            Series {
                label: "Uni".into(),
                points: s_full,
            },
        ],
    }
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let dataset = args.get_or("dataset", "all");
    let sweep = args.get_or("sweep", "all");
    let kinds: Vec<DatasetKind> = match dataset {
        "all" => vec![DatasetKind::Hosp, DatasetKind::Dblp, DatasetKind::Tpch],
        name => vec![DatasetKind::parse(name).expect("dataset: hosp|dblp|tpch|all")],
    };
    let mut figs: Vec<Figure> = Vec::new();
    for kind in &kinds {
        if sweep == "d" || sweep == "all" {
            figs.push(sweep_size(*kind, false, full));
        }
        if sweep == "dm" || sweep == "all" {
            figs.push(sweep_size(*kind, true, full));
        }
    }
    if kinds.contains(&DatasetKind::Tpch) {
        if sweep == "sigma" || sweep == "all" {
            figs.push(sweep_rules(false, full));
        }
        if sweep == "gamma" || sweep == "all" {
            figs.push(sweep_rules(true, full));
        }
    }
    for fig in figs {
        fig.print();
        fig.write_json(Path::new("experiments"))
            .expect("write json");
    }
}
