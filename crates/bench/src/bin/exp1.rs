//! Exp-1 (Fig. 10): Matching helps repairing.
//!
//! F-measure of repairing vs noise rate (2–10%), dup% = 40, for Uni (full
//! system), Uni(CFD) (repairing only) and Quaid (heuristic CFD repair).
//!
//! ```text
//! cargo run -p uniclean-bench --release --bin exp1 -- [--dataset hosp|dblp|both] [--full]
//! ```

use std::path::Path;

use uniclean_bench::{
    dataset_workload, repair_f1, scaled_params, Args, DatasetKind, Figure, Series,
};
use uniclean_datagen::GenParams;

fn run(kind: DatasetKind, full: bool) -> Figure {
    let base = scaled_params(kind, full);
    let mut uni = Vec::new();
    let mut uni_cfd = Vec::new();
    let mut quaid = Vec::new();
    for noi in [2u32, 4, 6, 8, 10] {
        let params = GenParams {
            noise_rate: noi as f64 / 100.0,
            ..base.clone()
        };
        let w = dataset_workload(kind, &params);
        eprintln!(
            "[exp1:{}] noi={noi}% |D|={} |Dm|={}",
            kind.label(),
            w.dirty.len(),
            w.master.len()
        );
        uni.push((noi as f64, repair_f1(&w, "uni")));
        uni_cfd.push((noi as f64, repair_f1(&w, "uni-cfd")));
        quaid.push((noi as f64, repair_f1(&w, "quaid")));
    }
    let sub = if kind == DatasetKind::Hosp { "a" } else { "b" };
    Figure {
        id: format!("fig10{sub}-{}", kind.label()),
        title: format!(
            "Exp-1 Matching helps repairing ({})",
            kind.label().to_uppercase()
        ),
        x_label: "noise %".into(),
        y_label: "F-measure".into(),
        series: vec![
            Series {
                label: "Uni".into(),
                points: uni,
            },
            Series {
                label: "Uni(CFD)".into(),
                points: uni_cfd,
            },
            Series {
                label: "Quaid".into(),
                points: quaid,
            },
        ],
    }
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let kinds: Vec<DatasetKind> = match args.get_or("dataset", "both") {
        "both" => vec![DatasetKind::Hosp, DatasetKind::Dblp],
        name => vec![DatasetKind::parse(name).expect("dataset: hosp|dblp|both")],
    };
    for kind in kinds {
        let fig = run(kind, full);
        fig.print();
        fig.write_json(Path::new("experiments"))
            .expect("write json");
    }
}
