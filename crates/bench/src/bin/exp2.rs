//! Exp-2 (Fig. 11): Repairing helps matching.
//!
//! Matched attributes (%) vs noise rate (2–10%), dup% = 40, for Uni
//! (matches identified on the repaired data) and SortN(MD) (sorted
//! neighborhood on the dirty data).
//!
//! ```text
//! cargo run -p uniclean-bench --release --bin exp2 -- [--dataset hosp|dblp|both] [--full]
//! ```

use std::path::Path;

use uniclean_bench::{
    dataset_workload, matching_f1_sortn, matching_f1_uni, scaled_params, Args, DatasetKind, Figure,
    Series,
};
use uniclean_datagen::GenParams;

fn run(kind: DatasetKind, full: bool) -> Figure {
    let base = scaled_params(kind, full);
    let mut uni = Vec::new();
    let mut sortn = Vec::new();
    for noi in [2u32, 4, 6, 8, 10] {
        let params = GenParams {
            noise_rate: noi as f64 / 100.0,
            ..base.clone()
        };
        let w = dataset_workload(kind, &params);
        eprintln!("[exp2:{}] noi={noi}%", kind.label());
        uni.push((noi as f64, matching_f1_uni(&w)));
        sortn.push((noi as f64, matching_f1_sortn(&w)));
    }
    let sub = if kind == DatasetKind::Hosp { "a" } else { "b" };
    Figure {
        id: format!("fig11{sub}-{}", kind.label()),
        title: format!(
            "Exp-2 Repairing helps matching ({})",
            kind.label().to_uppercase()
        ),
        x_label: "noise %".into(),
        y_label: "matched attributes %".into(),
        series: vec![
            Series {
                label: "Uni".into(),
                points: uni,
            },
            Series {
                label: "SortN(MD)".into(),
                points: sortn,
            },
        ],
    }
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let kinds: Vec<DatasetKind> = match args.get_or("dataset", "both") {
        "both" => vec![DatasetKind::Hosp, DatasetKind::Dblp],
        name => vec![DatasetKind::parse(name).expect("dataset: hosp|dblp|both")],
    };
    for kind in kinds {
        let fig = run(kind, full);
        fig.print();
        fig.write_json(Path::new("experiments"))
            .expect("write json");
    }
}
