//! Figure rendering: aligned text tables on stdout plus JSON dumps under
//! `experiments/`, from which EXPERIMENTS.md's paper-vs-measured entries
//! are filled in.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

/// One plotted line.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// Legend label (e.g. "Uni", "Quaid").
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// One figure of the paper.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Paper figure id, e.g. "fig10a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render the figure as an aligned table (rows = x values, one column
    /// per series), matching how the paper's plots read.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self.series.first().map(|s| s.points.iter().map(|p| p.0).collect()).unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{:>12}", trim_float(*x));
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {:>16}", format!("{y:.4}"));
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write the JSON dump under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, serde_json::to_string_pretty(self).expect("figure serializes"))
    }
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "fig10a".into(),
            title: "Matching helps repairing (HOSP)".into(),
            x_label: "noise %".into(),
            y_label: "F-measure".into(),
            series: vec![
                Series { label: "Uni".into(), points: vec![(2.0, 0.9), (4.0, 0.85)] },
                Series { label: "Quaid".into(), points: vec![(2.0, 0.7), (4.0, 0.66)] },
            ],
        }
    }

    #[test]
    fn render_contains_all_series_and_points() {
        let text = fig().render();
        assert!(text.contains("fig10a"));
        assert!(text.contains("Uni"));
        assert!(text.contains("Quaid"));
        assert!(text.contains("0.9000"));
        assert!(text.contains("0.6600"));
    }

    #[test]
    fn json_roundtrip_has_points() {
        let f = fig();
        let json = serde_json::to_value(&f).unwrap();
        assert_eq!(json["id"], "fig10a");
        assert_eq!(json["series"][0]["points"][1][1], 0.85);
    }

    #[test]
    fn integer_x_values_render_without_decimals() {
        assert_eq!(trim_float(4.0), "4");
        assert_eq!(trim_float(2.5), "2.50");
    }
}
