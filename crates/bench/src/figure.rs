//! Figure rendering: aligned text tables on stdout plus JSON dumps under
//! `experiments/`, from which EXPERIMENTS.md's paper-vs-measured entries
//! are filled in. JSON is emitted by hand — the build is offline, so no
//! serde — with the same shape a serde derive would produce.

use std::fmt::Write as _;
use std::path::Path;

/// One plotted line.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. "Uni", "Quaid").
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// One figure of the paper.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Paper figure id, e.g. "fig10a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render the figure as an aligned table (rows = x values, one column
    /// per series), matching how the paper's plots read.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{:>12}", trim_float(*x));
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {:>16}", format!("{y:.4}"));
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The machine-readable JSON form: `{"id": …, "title": …, "x_label": …,
    /// "y_label": …, "series": [{"label": …, "points": [[x, y], …]}, …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"x_label\": {},", json_str(&self.x_label));
        let _ = writeln!(out, "  \"y_label\": {},", json_str(&self.y_label));
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"label\": {}, \"points\": [",
                json_str(&s.label)
            );
            for (j, (x, y)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", json_num(*x), json_num(*y));
            }
            out.push_str("] }");
            out.push_str(if i + 1 < self.series.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON dump under `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the control set requires.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats as-is, non-finite as null (JSON has no NaN).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "fig10a".into(),
            title: "Matching helps repairing (HOSP)".into(),
            x_label: "noise %".into(),
            y_label: "F-measure".into(),
            series: vec![
                Series {
                    label: "Uni".into(),
                    points: vec![(2.0, 0.9), (4.0, 0.85)],
                },
                Series {
                    label: "Quaid".into(),
                    points: vec![(2.0, 0.7), (4.0, 0.66)],
                },
            ],
        }
    }

    #[test]
    fn render_contains_all_series_and_points() {
        let text = fig().render();
        assert!(text.contains("fig10a"));
        assert!(text.contains("Uni"));
        assert!(text.contains("Quaid"));
        assert!(text.contains("0.9000"));
        assert!(text.contains("0.6600"));
    }

    #[test]
    fn json_has_all_fields_and_points() {
        let json = fig().to_json();
        assert!(json.contains("\"id\": \"fig10a\""), "{json}");
        assert!(json.contains("\"label\": \"Quaid\""), "{json}");
        assert!(json.contains("[4, 0.85]"), "{json}");
        assert!(json.contains("[2, 0.7]"), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(2.5), "2.5");
    }

    #[test]
    fn integer_x_values_render_without_decimals() {
        assert_eq!(trim_float(4.0), "4");
        assert_eq!(trim_float(2.5), "2.50");
    }
}
