//! A tiny CLI argument parser for the experiment binaries (no external
//! dependency; `--key value` pairs and bare `--flags`).

use std::collections::{HashMap, HashSet};

/// Parsed command-line arguments.
pub struct Args {
    values: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse an explicit iterator (testable).
    pub fn from_args(it: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut flags = HashSet::new();
        let args: Vec<String> = it.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    values.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1; // ignore stray positionals
            }
        }
        Args { values, flags }
    }

    /// `--key value` lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// `--key value` with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Numeric lookup with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| v.parse().expect("numeric argument"))
            .unwrap_or(default)
    }

    /// Bare `--flag` lookup.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn key_value_pairs() {
        let a = parse("--dataset hosp --tuples 500");
        assert_eq!(a.get("dataset"), Some("hosp"));
        assert_eq!(a.get_usize("tuples", 9), 500);
        assert_eq!(a.get_usize("missing", 9), 9);
    }

    #[test]
    fn flags_without_values() {
        let a = parse("--full --dataset dblp");
        assert!(a.flag("full"));
        assert!(!a.flag("absent"));
        assert_eq!(a.get("dataset"), Some("dblp"));
    }

    #[test]
    fn trailing_flag() {
        let a = parse("--dataset tpch --full");
        assert!(a.flag("full"));
        assert_eq!(a.get_or("dataset", "hosp"), "tpch");
    }
}
