//! Benchmark harness regenerating every figure of the paper's evaluation
//! (§8, Figures 10–14).
//!
//! One binary per experiment (`exp1` … `exp5`), each printing the exact
//! series the corresponding figure plots and writing machine-readable JSON
//! under `experiments/`. Default scales are reduced from the paper's (100K+
//! tuples) so the whole suite runs in minutes; pass `--full` for
//! paper-scale runs. Criterion micro-benches (in `benches/`) cover the
//! component-level ablations (blocking, entropy maintenance, phase
//! throughput).

pub mod args;
pub mod figure;
pub mod json_check;
pub mod runner;

pub use args::Args;
pub use figure::{Figure, Series};
pub use json_check::validate_json;
pub use runner::{
    dataset_workload, deterministic_share, experiment_config, matching_f1_sortn, matching_f1_uni,
    repair_f1, repair_pr, repair_pr_with, run_uni, run_uni_observed, scaled_params, session,
    DatasetKind,
};
