//! Minimal JSON well-formedness validation.
//!
//! The harness emits JSON by hand (the build is offline — no serde), so
//! nothing type-checks the output. This recursive-descent checker gives
//! the `--smoke` runs a way to assert the emitted files actually parse,
//! keeping the CI `bench-smoke` job self-contained.

/// Validate that `text` is one well-formed JSON value. Returns the byte
/// offset of the first error.
pub fn validate_json(text: &str) -> Result<(), usize> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(*pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    // Integer part: `0` stands alone — the grammar forbids leading zeros.
    match b.get(*pos) {
        Some(b'0') => {
            *pos += 1;
            if b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return Err(*pos);
            }
        }
        _ => {
            if !digits(b, pos) {
                return Err(start);
            }
        }
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(*pos);
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(*pos);
        }
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    if b.get(*pos) != Some(&b'"') {
        return Err(*pos);
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(*pos);
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(*pos),
                }
            }
            0x00..=0x1f => return Err(*pos),
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(*pos);
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-3.5e+7",
            r#""a \"quoted\" string""#,
            r#"{"a": [1, 2.5, true, null], "b": {"c": "d"}}"#,
            "  {\n  \"x\": [\"y\"]\n}\n",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{]",
            "[1,]",
            "{\"a\": }",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "01",
            "-012",
            "{} trailing",
            "{'single': 1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }
}
