//! End-to-end pipeline throughput on each dataset — the per-phase numbers
//! behind the Fig. 14 scalability curves, at bench scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_core::{CleanConfig, Cleaner, MasterSource, Phase};
use uniclean_datagen::{dblp_workload, hosp_workload, tpch_workload, GenParams, TpchScale};

fn bench_pipeline(c: &mut Criterion) {
    let params = GenParams {
        tuples: 1000,
        master_tuples: 300,
        ..GenParams::default()
    };
    let workloads = vec![
        hosp_workload(&params),
        dblp_workload(&params),
        tpch_workload(&params, TpchScale::default()),
    ];
    let cfg = CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    };
    let mut g = c.benchmark_group("pipeline_1000_tuples");
    g.sample_size(10);
    for w in &workloads {
        let uni = Cleaner::builder()
            .rules(w.rules.clone())
            .master(MasterSource::external(w.master.clone()))
            .config(cfg.clone())
            .build()
            .expect("bench session");
        g.bench_with_input(BenchmarkId::new("full", w.name), &w.name, |bench, _| {
            bench.iter(|| uni.clean(black_box(&w.dirty), Phase::Full))
        });
        g.bench_with_input(
            BenchmarkId::new("crepair_only", w.name),
            &w.name,
            |bench, _| bench.iter(|| uni.clean(black_box(&w.dirty), Phase::CRepair)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4));
    targets = bench_pipeline
}
criterion_main!(benches);
