//! `hRepair` throughput (the heuristic phase), and the Quaid baseline for
//! comparison (same machinery, CFDs only, nothing frozen).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_baselines::quaid_repair;
use uniclean_core::{h_repair, CleanConfig, MasterIndex};
use uniclean_datagen::{hosp_workload, GenParams};

fn bench_hrepair(c: &mut Criterion) {
    let mut g = c.benchmark_group("hrepair");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let w = hosp_workload(&GenParams {
            tuples: n,
            master_tuples: 200,
            ..GenParams::default()
        });
        let cfg = CleanConfig::default();
        let idx = MasterIndex::build(w.rules.mds(), &w.master);
        g.bench_with_input(BenchmarkId::new("full", n), &n, |bench, _| {
            bench.iter(|| {
                let mut d = w.dirty.clone();
                h_repair(
                    black_box(&mut d),
                    Some(&w.master),
                    &w.rules,
                    Some(&idx),
                    &cfg,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("quaid_baseline", n), &n, |bench, _| {
            bench.iter(|| quaid_repair(black_box(&w.dirty), &w.rules, &cfg))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_hrepair
}
criterion_main!(benches);
