//! `cRepair` throughput, with and without MDs — the cost of adding
//! matching to the deterministic phase.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_core::{c_repair, CleanConfig, MasterIndex};
use uniclean_datagen::{hosp_workload, GenParams};

fn bench_crepair(c: &mut Criterion) {
    let mut g = c.benchmark_group("crepair");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let w = hosp_workload(&GenParams {
            tuples: n,
            master_tuples: 200,
            ..GenParams::default()
        });
        let cfg = CleanConfig::default();
        let idx = MasterIndex::build(w.rules.mds(), &w.master);
        g.bench_with_input(BenchmarkId::new("with_mds", n), &n, |bench, _| {
            bench.iter(|| {
                let mut d = w.dirty.clone();
                c_repair(
                    black_box(&mut d),
                    Some(&w.master),
                    &w.rules,
                    Some(&idx),
                    &cfg,
                )
            })
        });
        let cfd_rules = w.rules.without_mds();
        g.bench_with_input(BenchmarkId::new("cfds_only", n), &n, |bench, _| {
            bench.iter(|| {
                let mut d = w.dirty.clone();
                c_repair(black_box(&mut d), None, &cfd_rules, None, &cfg)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_crepair
}
criterion_main!(benches);
