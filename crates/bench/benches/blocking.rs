//! The §5.2 headline ablation: the complete q-gram count filter vs the
//! naive O(|D|·|Dm|) scan for `~lev` MD candidate retrieval. The paper
//! reports the unindexed variant taking hours where the indexed one takes
//! minutes; here the factor shows up per query — and unlike the old top-l
//! LCS blocker, the count filter is exact (no candidate a verifier would
//! accept is ever pruned).

use std::borrow::Cow;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_similarity::{
    within_edit_distance_with, EditScratch, ProfileScratch, QGramIndex, QGramProfile, QGramScratch,
};

const Q: usize = 2;

fn master_column(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "{} {} Medical Center {}",
                ["Mercy", "Grace", "Summit", "Harbor", "Cedar"][i % 5],
                ["Oak St", "Elm Ave", "Pine Rd", "Maple Ln"][(i / 5) % 4],
                i
            )
        })
        .collect()
}

fn build_index(column: &[String]) -> QGramIndex {
    QGramIndex::build(
        column
            .iter()
            .enumerate()
            .map(|(row, v)| (row as u32, Cow::Borrowed(v.as_str()))),
        column.len(),
        Q,
    )
}

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_candidate_retrieval");
    g.sample_size(20);
    for n in [500usize, 2000] {
        let column = master_column(n);
        let query = column[n / 2].replace("Center", "Cente").to_string();
        let index = build_index(&column);
        let mut profiles = ProfileScratch::new();
        let probe = QGramProfile::new_with(&query, Q, &mut profiles);
        g.bench_with_input(BenchmarkId::new("lev_count_filter", n), &n, |bench, _| {
            let mut qgram = QGramScratch::new();
            let mut edit = EditScratch::new();
            let mut cands = Vec::new();
            bench.iter(|| {
                cands.clear();
                index.candidates_lev_into(black_box(&probe), 2, &mut qgram, &mut cands);
                cands
                    .iter()
                    .filter(|&&row| {
                        within_edit_distance_with(&query, &column[row as usize], 2, &mut edit)
                    })
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |bench, _| {
            let mut edit = EditScratch::new();
            bench.iter(|| {
                column
                    .iter()
                    .filter(|v| within_edit_distance_with(black_box(&query), v, 2, &mut edit))
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("qgram_index_build");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let column = master_column(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| build_index(black_box(&column)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2));
    targets = bench_blocking, bench_index_build
}
criterion_main!(benches);
