//! The §5.2 headline ablation: top-l LCS suffix-tree blocking vs the naive
//! O(|D|·|Dm|) scan for MD candidate retrieval. The paper reports the
//! unblocked variant taking hours where the blocked one takes minutes;
//! here the factor shows up per query.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_similarity::{within_edit_distance, LcsBlocker};

fn master_column(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "{} {} Medical Center {}",
                ["Mercy", "Grace", "Summit", "Harbor", "Cedar"][i % 5],
                ["Oak St", "Elm Ave", "Pine Rd", "Maple Ln"][(i / 5) % 4],
                i
            )
        })
        .collect()
}

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_candidate_retrieval");
    g.sample_size(20);
    for n in [500usize, 2000] {
        let column = master_column(n);
        let query = column[n / 2].replace("Center", "Cente").to_string();
        let blocker = LcsBlocker::build(&column, 20);
        g.bench_with_input(BenchmarkId::new("blocked_top_l", n), &n, |bench, _| {
            bench.iter(|| {
                let cands = blocker.candidates_within_edit(black_box(&query), 2);
                cands
                    .into_iter()
                    .filter(|&row| within_edit_distance(&query, &column[row], 2))
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |bench, _| {
            bench.iter(|| {
                column
                    .iter()
                    .filter(|v| within_edit_distance(black_box(&query), v, 2))
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_blocker_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocker_build");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let column = master_column(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| LcsBlocker::build(black_box(&column), 20))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2));
    targets = bench_blocking, bench_blocker_build
}
criterion_main!(benches);
