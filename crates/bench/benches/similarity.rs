//! Micro-benchmarks of the similarity substrate: banded vs full
//! Levenshtein, and generalized-suffix-tree construction/queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uniclean_similarity::{levenshtein, levenshtein_bounded, GeneralizedSuffixTree};

fn words(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "{} {} Hospital {}",
                ["Mercy", "Grace", "Summit", "Harbor"][i % 4],
                ["Oak", "Elm", "Pine", "Maple"][(i / 4) % 4],
                i
            )
        })
        .collect()
}

fn bench_levenshtein(c: &mut Criterion) {
    let a = "Interaction between Record Matching and Data Repairing";
    let b = "Interaction between Record Matching and Data Reapiring";
    let mut g = c.benchmark_group("levenshtein");
    g.bench_function("full_55_chars", |bench| {
        bench.iter(|| levenshtein(black_box(a), black_box(b)))
    });
    g.bench_function("banded_k2_55_chars", |bench| {
        bench.iter(|| levenshtein_bounded(black_box(a), black_box(b), 2))
    });
    // The banded version's early exit on dissimilar strings.
    let z = "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz";
    g.bench_function("banded_k2_reject_fast", |bench| {
        bench.iter(|| levenshtein_bounded(black_box(a), black_box(z), 2))
    });
    g.finish();
}

fn bench_suffix_tree(c: &mut Criterion) {
    let corpus = words(500);
    let mut g = c.benchmark_group("suffix_tree");
    g.sample_size(20);
    g.bench_function("build_500_strings", |bench| {
        bench.iter(|| GeneralizedSuffixTree::build(black_box(&corpus)))
    });
    let tree = GeneralizedSuffixTree::build(&corpus);
    g.bench_function("top_l_query", |bench| {
        bench.iter(|| tree.top_l_by_lcs(black_box("Mercy Oak Hospitel 42"), 20, 4))
    });
    g.bench_function("matching_statistics", |bench| {
        bench.iter(|| tree.matching_statistics(black_box("Mercy Oak Hospitel 42")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_levenshtein, bench_suffix_tree
}
criterion_main!(benches);
