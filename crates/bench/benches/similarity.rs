//! Micro-benchmarks of the similarity substrate: the Myers bit-vector
//! Levenshtein kernel vs the scalar DPs it replaced (full two-row and
//! banded), plus the reusable-pattern probe loop that the master index
//! runs per cached master value.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uniclean_similarity::edit_distance::reference;
use uniclean_similarity::{levenshtein_bounded_with, EditScratch, MyersPattern};

fn bench_levenshtein(c: &mut Criterion) {
    let a = "Interaction between Record Matching and Data Repairing";
    let b = "Interaction between Record Matching and Data Reapiring";
    let mut g = c.benchmark_group("levenshtein");
    let mut scratch = EditScratch::new();
    g.bench_function("myers_k2_55_chars", |bench| {
        bench.iter(|| levenshtein_bounded_with(black_box(a), black_box(b), 2, &mut scratch))
    });
    g.bench_function("banded_dp_k2_55_chars", |bench| {
        bench.iter(|| reference::levenshtein_bounded_dp(black_box(a), black_box(b), 2))
    });
    g.bench_function("full_dp_55_chars", |bench| {
        bench.iter(|| reference::levenshtein_dp(black_box(a), black_box(b)))
    });
    // Early exit on dissimilar strings: Ukkonen cutoff vs the band check.
    let z = "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz";
    g.bench_function("myers_k2_reject_fast", |bench| {
        bench.iter(|| levenshtein_bounded_with(black_box(a), black_box(z), 2, &mut scratch))
    });
    g.bench_function("banded_dp_k2_reject_fast", |bench| {
        bench.iter(|| reference::levenshtein_bounded_dp(black_box(a), black_box(z), 2))
    });
    g.finish();
}

fn bench_myers_pattern_reuse(c: &mut Criterion) {
    // The master-index probe loop: one pattern, many candidate texts. The
    // Peq bitmaps amortize across every probe of the same master value.
    let pattern = "Mercy Oak Medical Center 4217";
    let texts: Vec<String> = (0..64)
        .map(|i| format!("Mercy Oak Medical Cente {}", i * 67))
        .collect();
    let mut g = c.benchmark_group("myers_pattern_reuse");
    g.bench_function("prebuilt_64_probes", |bench| {
        let pat = MyersPattern::new(pattern);
        let mut scratch = EditScratch::new();
        bench.iter(|| {
            texts
                .iter()
                .filter(|t| {
                    pat.distance_bounded(black_box(t), 2, &mut scratch)
                        .is_some()
                })
                .count()
        })
    });
    g.bench_function("rebuilt_64_probes", |bench| {
        let mut scratch = EditScratch::new();
        bench.iter(|| {
            texts
                .iter()
                .filter(|t| {
                    let pat = MyersPattern::new(black_box(pattern));
                    pat.distance_bounded(t, 2, &mut scratch).is_some()
                })
                .count()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_levenshtein, bench_myers_pattern_reuse
}
criterion_main!(benches);
