//! Cost of the §6.2 dependency-graph rule ordering — SCC, topological
//! sort, degree-ratio — swept over the TPC-H rule-count multipliers, plus
//! the throughput of `eRepair` itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_core::{e_repair, CleanConfig, MasterIndex};
use uniclean_datagen::{hosp_workload, tpch_workload, GenParams, TpchScale};
use uniclean_reasoning::erepair_order;

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("erepair_order_computation");
    for mult in [1usize, 3, 5] {
        let w = tpch_workload(
            &GenParams {
                tuples: 50,
                master_tuples: 20,
                ..GenParams::default()
            },
            TpchScale {
                sigma_multiplier: mult,
                gamma_multiplier: 1,
            },
        );
        g.bench_with_input(BenchmarkId::from_parameter(55 * mult), &mult, |bench, _| {
            bench.iter(|| erepair_order(black_box(&w.rules)))
        });
    }
    g.finish();
}

fn bench_erepair(c: &mut Criterion) {
    let mut g = c.benchmark_group("erepair");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let w = hosp_workload(&GenParams {
            tuples: n,
            master_tuples: 200,
            ..GenParams::default()
        });
        let cfg = CleanConfig::default();
        let idx = MasterIndex::build(w.rules.mds(), &w.master);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut d = w.dirty.clone();
                e_repair(
                    black_box(&mut d),
                    Some(&w.master),
                    &w.rules,
                    Some(&idx),
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_ordering, bench_erepair
}
criterion_main!(benches);
