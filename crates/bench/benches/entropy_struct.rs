//! The §6.3 ablation: incremental maintenance of the 2-in-1 HTab+AVL
//! structure vs rebuilding it from scratch after every cell update.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use uniclean_core::two_in_one::TwoInOne;
use uniclean_datagen::{hosp_workload, GenParams};
use uniclean_model::{FixMark, TupleId, Value};

fn bench_structure(c: &mut Criterion) {
    let w = hosp_workload(&GenParams {
        tuples: 1000,
        master_tuples: 200,
        ..GenParams::default()
    });
    let city = w.dirty.schema().attr_id("City").unwrap();

    let mut g = c.benchmark_group("two_in_one");
    g.sample_size(10);
    g.bench_function("build_1000_tuples", |bench| {
        bench.iter(|| TwoInOne::build(black_box(&w.rules), black_box(&w.dirty)))
    });

    // 100 updates, maintained incrementally.
    g.bench_function("incremental_100_updates", |bench| {
        bench.iter(|| {
            let mut d = w.dirty.clone();
            let mut s = TwoInOne::build(&w.rules, &d);
            for i in 0..100u32 {
                let t = TupleId(i * 7 % d.len() as u32);
                let old = d.tuple(t).value(city).clone();
                d.tuple_mut(t)
                    .set(city, Value::str(format!("City{i}")), 0.0, FixMark::Reliable);
                s.on_update(&w.rules, &d, t, city, &old);
            }
            s
        })
    });

    // The same 100 updates, rebuilding after each — what §6.3 avoids.
    g.bench_function("rebuild_100_updates", |bench| {
        bench.iter(|| {
            let mut d = w.dirty.clone();
            let mut last = None;
            for i in 0..100u32 {
                let t = TupleId(i * 7 % d.len() as u32);
                d.tuple_mut(t)
                    .set(city, Value::str(format!("City{i}")), 0.0, FixMark::Reliable);
                last = Some(TwoInOne::build(&w.rules, &d));
            }
            last
        })
    });

    g.bench_with_input(
        BenchmarkId::new("groups_below_threshold", 0.8),
        &0.8,
        |bench, bound| {
            let s = TwoInOne::build(&w.rules, &w.dirty);
            bench.iter(|| {
                (0..s.len())
                    .map(|v| s.groups_below(v, *bound).len())
                    .sum::<usize>()
            })
        },
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_structure
}
criterion_main!(benches);
