//! Normalization to single-attribute right-hand sides (§2.2).
//!
//! "Every CFD (resp. positive MD) can be expressed as an equivalent set of
//! normalized CFDs (resp. positive MDs), such that the cardinality of the
//! set is bounded by the size of its RHS." The cleaning algorithms of §§5–7
//! assume normalized rules; these helpers perform the split.

use crate::cfd::Cfd;
use crate::md::Md;

/// Split a CFD into one normalized CFD per RHS attribute.
pub fn normalize_cfd(cfd: &Cfd) -> Vec<Cfd> {
    if cfd.is_normalized() {
        return vec![cfd.clone()];
    }
    cfd.rhs()
        .iter()
        .zip(cfd.rhs_pattern().iter())
        .enumerate()
        .map(|(i, (attr, pat))| {
            Cfd::new(
                format!("{}#{}", cfd.name(), i + 1),
                cfd.schema().clone(),
                cfd.lhs().to_vec(),
                cfd.lhs_pattern().to_vec(),
                vec![*attr],
                vec![pat.clone()],
            )
        })
        .collect()
}

/// Normalize a whole set of CFDs.
pub fn normalize_cfds(cfds: &[Cfd]) -> Vec<Cfd> {
    cfds.iter().flat_map(normalize_cfd).collect()
}

/// Split an MD into one normalized MD per identified pair.
pub fn normalize_md(md: &Md) -> Vec<Md> {
    if md.is_normalized() {
        return vec![md.clone()];
    }
    md.rhs()
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            Md::new(
                format!("{}#{}", md.name(), i + 1),
                md.schema().clone(),
                md.master_schema().clone(),
                md.premises().to_vec(),
                vec![*pair],
            )
        })
        .collect()
}

/// Normalize a whole set of MDs.
pub fn normalize_mds(mds: &[Md]) -> Vec<Md> {
    mds.iter().flat_map(normalize_md).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::MdPremise;
    use crate::pattern::PatternValue;
    use std::sync::Arc;
    use uniclean_model::Schema;
    use uniclean_similarity::SimilarityPredicate;

    #[test]
    fn cfd_splits_per_rhs_attribute() {
        let s = Schema::of_strings("tran", &["city", "phn", "St", "AC", "post"]);
        let phi3 = Cfd::new(
            "phi3",
            s.clone(),
            vec![s.attr_id_or_panic("city"), s.attr_id_or_panic("phn")],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
            vec![
                s.attr_id_or_panic("St"),
                s.attr_id_or_panic("AC"),
                s.attr_id_or_panic("post"),
            ],
            vec![PatternValue::Wildcard; 3],
        );
        let norm = normalize_cfd(&phi3);
        assert_eq!(norm.len(), 3);
        assert!(norm.iter().all(Cfd::is_normalized));
        assert!(norm.iter().all(|c| c.lhs() == phi3.lhs()));
        let rhs: Vec<_> = norm.iter().map(|c| c.rhs()[0]).collect();
        assert_eq!(rhs, phi3.rhs());
        assert_eq!(norm[0].name(), "phi3#1");
    }

    #[test]
    fn normalized_cfd_passes_through() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let phi1 = Cfd::new(
            "phi1",
            s.clone(),
            vec![s.attr_id_or_panic("AC")],
            vec![PatternValue::constant("131")],
            vec![s.attr_id_or_panic("city")],
            vec![PatternValue::constant("Edi")],
        );
        let norm = normalize_cfd(&phi1);
        assert_eq!(norm.len(), 1);
        assert_eq!(norm[0].name(), "phi1");
    }

    fn multi_rhs_md() -> (Arc<Schema>, Arc<Schema>, Md) {
        let tran = Schema::of_strings("tran", &["FN", "LN", "phn"]);
        let card = Schema::of_strings("card", &["FN", "LN", "tel"]);
        let md = Md::new(
            "psi",
            tran.clone(),
            card.clone(),
            vec![MdPremise {
                attr: tran.attr_id_or_panic("LN"),
                master_attr: card.attr_id_or_panic("LN"),
                pred: SimilarityPredicate::Equal,
            }],
            vec![
                (tran.attr_id_or_panic("FN"), card.attr_id_or_panic("FN")),
                (tran.attr_id_or_panic("phn"), card.attr_id_or_panic("tel")),
            ],
        );
        (tran, card, md)
    }

    #[test]
    fn md_splits_per_identified_pair() {
        let (_, _, md) = multi_rhs_md();
        let norm = normalize_md(&md);
        assert_eq!(norm.len(), 2);
        assert!(norm.iter().all(Md::is_normalized));
        assert_eq!(norm[0].premises(), md.premises());
        assert_eq!(norm[0].rhs()[0], md.rhs()[0]);
        assert_eq!(norm[1].rhs()[0], md.rhs()[1]);
    }

    #[test]
    fn set_normalization_cardinality_is_rhs_bounded() {
        let (_, _, md) = multi_rhs_md();
        let norm = normalize_mds(&[md.clone(), md.clone()]);
        assert_eq!(norm.len(), 4);
    }
}
