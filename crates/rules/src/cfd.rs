//! Conditional functional dependencies (§2.1).
//!
//! A CFD `ϕ` on schema `R` is a pair `R(X → Y, tp)` where `X → Y` is a
//! standard FD (the *embedded FD*) and `tp` is a pattern tuple over `X ∪ Y`
//! whose slots are constants or the wildcard `_`. `D ⊨ ϕ` iff for all
//! tuples `t1, t2 ∈ D`: if `t1[X] = t2[X] ≍ tp[X]` then
//! `t1[Y] = t2[Y] ≍ tp[Y]`. Taking `t1 = t2` shows a *single* tuple can
//! violate a CFD with a constant RHS (Example 2.2's `t1` violating `ϕ1`).

use std::fmt;
use std::sync::Arc;

use uniclean_model::{AttrId, Row, Schema, Value};

use crate::pattern::PatternValue;

/// A conditional functional dependency `R(X → Y, tp)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Cfd {
    name: String,
    schema: Arc<Schema>,
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
    lhs_pattern: Vec<PatternValue>,
    rhs_pattern: Vec<PatternValue>,
}

impl Cfd {
    /// Build a CFD. `name` is a diagnostic label (e.g. `"phi1"`).
    ///
    /// # Panics
    /// Panics if pattern lengths disagree with attribute lists or if `lhs`
    /// contains duplicates — rules are static configuration.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        lhs: Vec<AttrId>,
        lhs_pattern: Vec<PatternValue>,
        rhs: Vec<AttrId>,
        rhs_pattern: Vec<PatternValue>,
    ) -> Self {
        assert_eq!(lhs.len(), lhs_pattern.len(), "LHS pattern length mismatch");
        assert_eq!(rhs.len(), rhs_pattern.len(), "RHS pattern length mismatch");
        assert!(!rhs.is_empty(), "CFD must have a right-hand side");
        let mut seen = lhs.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), lhs.len(), "duplicate attribute in CFD LHS");
        Cfd {
            name: name.into(),
            schema,
            lhs,
            rhs,
            lhs_pattern,
            rhs_pattern,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema the rule is defined on.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// `LHS(ϕ)` — the `X` attributes.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// `RHS(ϕ)` — the `Y` attributes (singleton once normalized).
    pub fn rhs(&self) -> &[AttrId] {
        &self.rhs
    }

    /// Pattern over `X`.
    pub fn lhs_pattern(&self) -> &[PatternValue] {
        &self.lhs_pattern
    }

    /// Pattern over `Y`.
    pub fn rhs_pattern(&self) -> &[PatternValue] {
        &self.rhs_pattern
    }

    /// Is the CFD normalized (`|RHS| = 1`)?
    pub fn is_normalized(&self) -> bool {
        self.rhs.len() == 1
    }

    /// A *constant* CFD has a constant in (every slot of) its RHS pattern; a
    /// cleaning rule derived from it overwrites `t[A]` with that constant
    /// (§3.1 case 2). Meaningful after normalization.
    pub fn is_constant(&self) -> bool {
        self.rhs_pattern.iter().all(PatternValue::is_const)
    }

    /// A *variable* CFD has wildcards in its RHS pattern; its cleaning rule
    /// copies `t2[B]` into `t1[B]` (§3.1 case 3).
    pub fn is_variable(&self) -> bool {
        !self.is_constant()
    }

    /// Is this CFD a plain FD (all-wildcard patterns)?
    pub fn is_plain_fd(&self) -> bool {
        self.lhs_pattern.iter().all(|p| !p.is_const())
            && self.rhs_pattern.iter().all(|p| !p.is_const())
    }

    /// Does `t[X] ≍ tp[X]` hold? Generic over [`Row`]: works on stored
    /// rows ([`uniclean_model::TupleRef`]) and borrowed row literals alike.
    pub fn lhs_matches<'t>(&self, t: impl Row<'t>) -> bool {
        self.lhs
            .iter()
            .zip(self.lhs_pattern.iter())
            .all(|(a, p)| p.matches(t.value(*a)))
    }

    /// Does `t[Y] ≍ tp[Y]` hold?
    pub fn rhs_matches<'t>(&self, t: impl Row<'t>) -> bool {
        self.rhs
            .iter()
            .zip(self.rhs_pattern.iter())
            .all(|(a, p)| p.matches(t.value(*a)))
    }

    /// Single-tuple check: does `t` on its own satisfy the CFD?
    /// (`t[X] ≍ tp[X]` implies `t[Y] ≍ tp[Y]`.) Complete for constant CFDs;
    /// for variable CFDs pairs must also agree (see
    /// [`crate::satisfaction::satisfies_cfd`]).
    pub fn single_tuple_ok<'t>(&self, t: impl Row<'t>) -> bool {
        !self.lhs_matches(t) || self.rhs_matches(t)
    }
}

/// Render a pattern constant in the parser's grammar: bare when the token
/// survives the lexer as-is, double-quoted when it contains whitespace, a
/// separator (`,`, `]`, `)`), or a `#` (which would otherwise start a
/// comment). Constants containing `"` itself cannot round-trip — the
/// grammar has no escape sequence — and are emitted bare.
fn grammar_constant(v: &Value) -> String {
    let s = v.to_string();
    let needs_quotes = s.is_empty()
        || s.chars()
            .any(|c| c.is_whitespace() || matches!(c, ',' | ']' | ')' | '#'));
    if needs_quotes && !s.contains('"') {
        format!("\"{s}\"")
    } else {
        s
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}([", self.name, self.schema.name())?;
        for (i, (a, p)) in self.lhs.iter().zip(self.lhs_pattern.iter()).enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match p {
                PatternValue::Wildcard => write!(f, "{}", self.schema.attr_name(*a))?,
                PatternValue::Const(v) => {
                    write!(f, "{}={}", self.schema.attr_name(*a), grammar_constant(v))?
                }
            }
        }
        f.write_str("] -> [")?;
        for (i, (a, p)) in self.rhs.iter().zip(self.rhs_pattern.iter()).enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match p {
                PatternValue::Wildcard => write!(f, "{}", self.schema.attr_name(*a))?,
                PatternValue::Const(v) => {
                    write!(f, "{}={}", self.schema.attr_name(*a), grammar_constant(v))?
                }
            }
        }
        f.write_str("])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Tuple, Value};

    fn tran() -> Arc<Schema> {
        Schema::of_strings("tran", &["FN", "LN", "city", "AC", "phn", "St", "post"])
    }

    /// ϕ1 of Example 1.1: tran([AC = 131] → [city = Edi]).
    fn phi1(s: &Arc<Schema>) -> Cfd {
        Cfd::new(
            "phi1",
            s.clone(),
            vec![s.attr_id_or_panic("AC")],
            vec![PatternValue::constant("131")],
            vec![s.attr_id_or_panic("city")],
            vec![PatternValue::constant("Edi")],
        )
    }

    /// ϕ3: tran([city, phn] → [St, AC, post]) — a plain FD.
    fn phi3(s: &Arc<Schema>) -> Cfd {
        Cfd::new(
            "phi3",
            s.clone(),
            vec![s.attr_id_or_panic("city"), s.attr_id_or_panic("phn")],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
            vec![
                s.attr_id_or_panic("St"),
                s.attr_id_or_panic("AC"),
                s.attr_id_or_panic("post"),
            ],
            vec![PatternValue::Wildcard; 3],
        )
    }

    #[test]
    fn classification() {
        let s = tran();
        assert!(phi1(&s).is_constant());
        assert!(!phi1(&s).is_variable());
        assert!(!phi1(&s).is_plain_fd());
        assert!(phi3(&s).is_variable());
        assert!(phi3(&s).is_plain_fd());
        assert!(!phi3(&s).is_normalized());
        assert!(phi1(&s).is_normalized());
    }

    #[test]
    fn single_tuple_violation_of_constant_cfd() {
        // t1 of Fig. 1(b): AC = 131 but city = Ldn — violates ϕ1 alone.
        let s = tran();
        let rule = phi1(&s);
        let mut t = Tuple::of_strs(
            &[
                "M.",
                "Smith",
                "Ldn",
                "131",
                "9999999",
                "10 Oak St",
                "EH8 9LE",
            ],
            0.5,
        );
        assert!(rule.lhs_matches(&t));
        assert!(!rule.single_tuple_ok(&t));
        t.set(
            s.attr_id_or_panic("city"),
            Value::str("Edi"),
            0.8,
            Default::default(),
        );
        assert!(rule.single_tuple_ok(&t));
    }

    #[test]
    fn lhs_with_null_never_matches() {
        let s = tran();
        let rule = phi1(&s);
        let mut t = Tuple::of_strs(&["M.", "Smith", "Ldn", "131", "9", "x", "y"], 0.5);
        t.set(
            s.attr_id_or_panic("AC"),
            Value::Null,
            0.0,
            Default::default(),
        );
        assert!(!rule.lhs_matches(&t));
        assert!(rule.single_tuple_ok(&t));
    }

    #[test]
    fn display_mirrors_paper_syntax() {
        let s = tran();
        assert_eq!(phi1(&s).to_string(), "phi1: tran([AC=131] -> [city=Edi])");
        assert_eq!(
            phi3(&s).to_string(),
            "phi3: tran([city, phn] -> [St, AC, post])"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_lhs_rejected() {
        let s = tran();
        let ac = s.attr_id_or_panic("AC");
        Cfd::new(
            "bad",
            s.clone(),
            vec![ac, ac],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
            vec![s.attr_id_or_panic("city")],
            vec![PatternValue::Wildcard],
        );
    }

    #[test]
    #[should_panic(expected = "right-hand side")]
    fn empty_rhs_rejected() {
        let s = tran();
        Cfd::new(
            "bad",
            s.clone(),
            vec![s.attr_id_or_panic("AC")],
            vec![PatternValue::Wildcard],
            vec![],
            vec![],
        );
    }

    #[test]
    fn normalization_rule_fn_on_fn() {
        // ϕ4: tran([FN = Bob] → [FN = Robert]) — LHS and RHS may share the
        // attribute; the rule is a standardization rule.
        let s = tran();
        let fnid = s.attr_id_or_panic("FN");
        let phi4 = Cfd::new(
            "phi4",
            s.clone(),
            vec![fnid],
            vec![PatternValue::constant("Bob")],
            vec![fnid],
            vec![PatternValue::constant("Robert")],
        );
        let t = Tuple::of_strs(
            &[
                "Bob",
                "Brady",
                "Edi",
                "020",
                "3887834",
                "5 Wren St",
                "WC1H 9SE",
            ],
            0.5,
        );
        assert!(phi4.lhs_matches(&t));
        assert!(!phi4.single_tuple_ok(&t));
    }
}
