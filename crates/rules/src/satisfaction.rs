//! Satisfaction checks: `D ⊨ Σ` and `(D, Dm) ⊨ Γ`.
//!
//! These are the acceptance conditions of the data cleaning problem (§3.1):
//! a repair `Dr` must satisfy every CFD and leave no tuple updatable by any
//! MD. Nulls follow the SQL simple semantics of §7 (they satisfy), since a
//! finished repair may legitimately contain nulls introduced by `hRepair`.

use uniclean_model::Relation;

use crate::cfd::Cfd;
use crate::md::Md;
use crate::normalize::{normalize_cfds, normalize_mds};
use crate::violations::{cfd_violations, md_violations};

/// `D ⊨ ϕ` for a single (possibly unnormalized) CFD.
pub fn satisfies_cfd(cfd: &Cfd, d: &Relation) -> bool {
    cfd_violations(&normalize_cfds(std::slice::from_ref(cfd)), d, true).is_empty()
}

/// `(D, Dm) ⊨ ψ` for a single (possibly unnormalized) MD.
pub fn satisfies_md(md: &Md, d: &Relation, dm: &Relation) -> bool {
    md_violations(&normalize_mds(std::slice::from_ref(md)), d, dm, true).is_empty()
}

/// `D ⊨ Σ` and `(D, Dm) ⊨ Γ` together.
pub fn satisfies_all(cfds: &[Cfd], mds: &[Md], d: &Relation, dm: &Relation) -> bool {
    cfds.iter().all(|c| satisfies_cfd(c, d)) && mds.iter().all(|m| satisfies_md(m, d, dm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::MdPremise;
    use crate::pattern::PatternValue;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_similarity::SimilarityPredicate;

    fn schema() -> Arc<Schema> {
        Schema::of_strings("tran", &["AC", "city"])
    }

    fn phi1(s: &Arc<Schema>) -> Cfd {
        Cfd::new(
            "phi1",
            s.clone(),
            vec![s.attr_id_or_panic("AC")],
            vec![PatternValue::constant("131")],
            vec![s.attr_id_or_panic("city")],
            vec![PatternValue::constant("Edi")],
        )
    }

    #[test]
    fn example_2_2_d_violates_phi1() {
        let s = schema();
        let d = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
        assert!(!satisfies_cfd(&phi1(&s), &d));
        let fixed = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Edi"], 0.5)]);
        assert!(satisfies_cfd(&phi1(&s), &fixed));
    }

    #[test]
    fn unnormalized_cfd_accepted_here() {
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        let wide = Cfd::new(
            "wide",
            s.clone(),
            vec![s.attr_id_or_panic("A")],
            vec![PatternValue::Wildcard],
            vec![s.attr_id_or_panic("B"), s.attr_id_or_panic("C")],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
        );
        let d = Relation::new(
            s.clone(),
            vec![
                Tuple::of_strs(&["x", "1", "1"], 0.5),
                Tuple::of_strs(&["x", "1", "2"], 0.5),
            ],
        );
        assert!(!satisfies_cfd(&wide, &d));
    }

    #[test]
    fn empty_relation_satisfies_everything() {
        let s = schema();
        let d = Relation::empty(s.clone());
        assert!(satisfies_cfd(&phi1(&s), &d));
    }

    #[test]
    fn satisfies_all_combines_both_rule_kinds() {
        let tran = schema();
        let card = Schema::of_strings("card", &["AC", "city"]);
        let md = Md::new(
            "psi",
            tran.clone(),
            card.clone(),
            vec![MdPremise {
                attr: tran.attr_id_or_panic("AC"),
                master_attr: card.attr_id_or_panic("AC"),
                pred: SimilarityPredicate::Equal,
            }],
            vec![(tran.attr_id_or_panic("city"), card.attr_id_or_panic("city"))],
        );
        let d = Relation::new(tran.clone(), vec![Tuple::of_strs(&["131", "Edi"], 0.5)]);
        let dm_agree = Relation::new(card.clone(), vec![Tuple::of_strs(&["131", "Edi"], 1.0)]);
        let dm_conflict = Relation::new(card.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 1.0)]);
        assert!(satisfies_all(
            &[phi1(&tran)],
            std::slice::from_ref(&md),
            &d,
            &dm_agree
        ));
        assert!(!satisfies_all(&[phi1(&tran)], &[md], &d, &dm_conflict));
    }
}
