//! A textual rule language close to the paper's notation.
//!
//! One rule per line; `#` starts a comment; blank lines are skipped.
//!
//! ```text
//! cfd phi1: tran([AC=131] -> [city=Edi])
//! cfd phi3: tran([city, phn] -> [St, AC, post])
//! cfd phi4: tran([FN=Bob] -> [FN=Robert])
//! md  psi:  tran[LN] = card[LN] AND tran[FN] ~lev(2) card[FN]
//!           -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]
//! neg psi1: tran[gd] != card[gd] -> tran[FN] <!> card[FN]
//! ```
//!
//! (MDs may not span lines in the input — the example above is wrapped for
//! readability only.) Constants containing spaces, commas or brackets are
//! double-quoted: `[city="New York"]`. Similarity predicates: `=`,
//! `~lev(K)`, `~jaro(S)`, `~jw(S)`, `~qgram(Q,S)`.

use std::fmt;
use std::sync::Arc;

use uniclean_model::{Schema, Value};
use uniclean_similarity::SimilarityPredicate;

use crate::cfd::Cfd;
use crate::md::{Md, MdPremise};
use crate::negative::NegativeMd;
use crate::pattern::PatternValue;

/// Rules read from text, still unnormalized.
#[derive(Debug, Default)]
pub struct ParsedRules {
    /// CFDs in input order.
    pub cfds: Vec<Cfd>,
    /// Positive MDs in input order.
    pub positive_mds: Vec<Md>,
    /// Negative MDs in input order.
    pub negative_mds: Vec<NegativeMd>,
}

/// A parse failure, with a 1-based line number and an explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based input line.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a rule file against the data schema and (optionally) the master
/// schema. Lines mentioning MDs fail if `master` is `None`.
pub fn parse_rules(
    input: &str,
    schema: &Arc<Schema>,
    master: Option<&Arc<Schema>>,
) -> Result<ParsedRules, ParseError> {
    let mut out = ParsedRules::default();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut p = Parser {
            chars: line.chars().collect(),
            pos: 0,
            line: lineno,
        };
        let kind = p.ident().map_err(|m| p.err(m))?;
        match kind.as_str() {
            "cfd" => out.cfds.push(parse_cfd(&mut p, schema)?),
            "md" => {
                let m = master.ok_or_else(|| p.err("md rule requires a master schema".into()))?;
                out.positive_mds.push(parse_md(&mut p, schema, m)?);
            }
            "neg" => {
                let m = master.ok_or_else(|| p.err("neg rule requires a master schema".into()))?;
                out.negative_mds.push(parse_neg(&mut p, schema, m)?);
            }
            other => {
                return Err(p.err(format!("expected `cfd`, `md` or `neg`, found `{other}`")));
            }
        }
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // `#` outside quotes starts a comment.
    let mut in_quotes = false;
    for (idx, ch) in line.char_indices() {
        match ch {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..idx],
            _ => {}
        }
    }
    line
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn err(&self, msg: String) -> ParseError {
        ParseError {
            line: self.line,
            msg,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, ch: char) -> Result<(), String> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{ch}` at column {}, found {}",
                self.pos + 1,
                self.chars
                    .get(self.pos)
                    .map(|c| format!("`{c}`"))
                    .unwrap_or_else(|| "end of line".into())
            ))
        }
    }

    fn try_eat(&mut self, ch: char) -> bool {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> Result<(), String> {
        for ch in s.chars() {
            if self.chars.get(self.pos) == Some(&ch) {
                self.pos += 1;
            } else {
                return Err(format!("expected `{s}` at column {}", self.pos + 1));
            }
        }
        Ok(())
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_' || *c == '-' || *c == '.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected an identifier at column {}", self.pos + 1));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    /// A constant: bare token (no spaces/commas/brackets) or "quoted".
    fn constant(&mut self) -> Result<String, String> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&'"') {
            self.pos += 1;
            let start = self.pos;
            while self.chars.get(self.pos).is_some_and(|c| *c != '"') {
                self.pos += 1;
            }
            if self.chars.get(self.pos) != Some(&'"') {
                return Err("unterminated quoted constant".into());
            }
            let s: String = self.chars[start..self.pos].iter().collect();
            self.pos += 1;
            Ok(s)
        } else {
            let start = self.pos;
            while self
                .chars
                .get(self.pos)
                .is_some_and(|c| !matches!(c, ',' | ']' | ')' | '"') && !c.is_whitespace())
            {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(format!("expected a constant at column {}", self.pos + 1));
            }
            Ok(self.chars[start..self.pos].iter().collect())
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        {
            self.pos += 1;
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse::<f64>()
            .map_err(|_| format!("expected a number, found `{s}`"))
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.chars.len()
    }
}

/// `name: R([A=c, B] -> [C=d, E])` (the leading `cfd` is already consumed).
fn parse_cfd(p: &mut Parser, schema: &Arc<Schema>) -> Result<Cfd, ParseError> {
    let build = |p: &mut Parser| -> Result<Cfd, String> {
        let name = p.ident()?;
        p.eat(':')?;
        let rel = p.ident()?;
        if rel != schema.name() {
            return Err(format!(
                "unknown relation `{rel}` (expected `{}`)",
                schema.name()
            ));
        }
        p.eat('(')?;
        let (lhs, lhs_pattern) = parse_attr_pattern_list(p, schema)?;
        p.eat('-')?;
        p.eat_str(">")?;
        let (rhs, rhs_pattern) = parse_attr_pattern_list(p, schema)?;
        p.eat(')')?;
        if !p.at_end() {
            return Err(format!("unexpected trailing input at column {}", p.pos + 1));
        }
        Ok(Cfd::new(
            name,
            schema.clone(),
            lhs,
            lhs_pattern,
            rhs,
            rhs_pattern,
        ))
    };
    build(p).map_err(|m| p.err(m))
}

fn parse_attr_pattern_list(
    p: &mut Parser,
    schema: &Arc<Schema>,
) -> Result<(Vec<uniclean_model::AttrId>, Vec<PatternValue>), String> {
    p.eat('[')?;
    let mut attrs = Vec::new();
    let mut pats = Vec::new();
    loop {
        let attr = p.ident()?;
        let id = schema
            .attr_id(&attr)
            .ok_or_else(|| format!("schema `{}` has no attribute `{attr}`", schema.name()))?;
        attrs.push(id);
        if p.try_eat('=') {
            pats.push(PatternValue::Const(Value::str(p.constant()?)));
        } else {
            pats.push(PatternValue::Wildcard);
        }
        if !p.try_eat(',') {
            break;
        }
    }
    p.eat(']')?;
    Ok((attrs, pats))
}

/// One side of an MD conjunct: `R[attr]`.
fn parse_qualified_attr(
    p: &mut Parser,
    schema: &Arc<Schema>,
) -> Result<uniclean_model::AttrId, String> {
    let rel = p.ident()?;
    if rel != schema.name() {
        return Err(format!(
            "unknown relation `{rel}` (expected `{}`)",
            schema.name()
        ));
    }
    p.eat('[')?;
    let attr = p.ident()?;
    let id = schema
        .attr_id(&attr)
        .ok_or_else(|| format!("schema `{}` has no attribute `{attr}`", schema.name()))?;
    p.eat(']')?;
    Ok(id)
}

fn parse_similarity(p: &mut Parser) -> Result<SimilarityPredicate, String> {
    if p.try_eat('=') {
        return Ok(SimilarityPredicate::Equal);
    }
    p.eat('~')?;
    let kind = p.ident()?;
    p.eat('(')?;
    let pred = match kind.as_str() {
        "lev" => SimilarityPredicate::Levenshtein {
            max: p.number()? as usize,
        },
        "jaro" => SimilarityPredicate::Jaro { min: p.number()? },
        "jw" => SimilarityPredicate::JaroWinkler { min: p.number()? },
        "qgram" => {
            let q = p.number()? as usize;
            p.eat(',')?;
            SimilarityPredicate::QGramJaccard {
                q,
                min: p.number()?,
            }
        }
        other => return Err(format!("unknown similarity predicate `~{other}`")),
    };
    p.eat(')')?;
    Ok(pred)
}

/// `name: R[a] ≈ Rm[b] AND … -> R[e] <=> Rm[f], …`
fn parse_md(p: &mut Parser, schema: &Arc<Schema>, master: &Arc<Schema>) -> Result<Md, ParseError> {
    let build = |p: &mut Parser| -> Result<Md, String> {
        let name = p.ident()?;
        p.eat(':')?;
        let mut premises = Vec::new();
        loop {
            let attr = parse_qualified_attr(p, schema)?;
            let pred = parse_similarity(p)?;
            let mattr = parse_qualified_attr(p, master)?;
            premises.push(MdPremise {
                attr,
                master_attr: mattr,
                pred,
            });
            // `AND` continues the premise, `->` starts the conclusion.
            if p.peek() == Some('A') {
                p.eat_str("AND")?;
                continue;
            }
            break;
        }
        p.eat('-')?;
        p.eat_str(">")?;
        let mut rhs = Vec::new();
        loop {
            let e = parse_qualified_attr(p, schema)?;
            p.eat('<')?;
            p.eat_str("=>")?;
            let f = parse_qualified_attr(p, master)?;
            rhs.push((e, f));
            if !p.try_eat(',') {
                break;
            }
        }
        if !p.at_end() {
            return Err(format!("unexpected trailing input at column {}", p.pos + 1));
        }
        Ok(Md::new(name, schema.clone(), master.clone(), premises, rhs))
    };
    build(p).map_err(|m| p.err(m))
}

/// `name: R[a] != Rm[b] AND … -> R[e] <!> Rm[f], …`
fn parse_neg(
    p: &mut Parser,
    schema: &Arc<Schema>,
    master: &Arc<Schema>,
) -> Result<NegativeMd, ParseError> {
    let build = |p: &mut Parser| -> Result<NegativeMd, String> {
        let name = p.ident()?;
        p.eat(':')?;
        let mut premises = Vec::new();
        loop {
            let attr = parse_qualified_attr(p, schema)?;
            p.eat('!')?;
            p.eat_str("=")?;
            let mattr = parse_qualified_attr(p, master)?;
            premises.push((attr, mattr));
            if p.peek() == Some('A') {
                p.eat_str("AND")?;
                continue;
            }
            break;
        }
        p.eat('-')?;
        p.eat_str(">")?;
        let mut rhs = Vec::new();
        loop {
            let e = parse_qualified_attr(p, schema)?;
            p.eat('<')?;
            p.eat_str("!>")?;
            let f = parse_qualified_attr(p, master)?;
            rhs.push((e, f));
            if !p.try_eat(',') {
                break;
            }
        }
        if !p.at_end() {
            return Err(format!("unexpected trailing input at column {}", p.pos + 1));
        }
        Ok(NegativeMd::new(
            name,
            schema.clone(),
            master.clone(),
            premises,
            rhs,
        ))
    };
    build(p).map_err(|m| p.err(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        (
            Schema::of_strings(
                "tran",
                &["FN", "LN", "city", "AC", "post", "phn", "gd", "St"],
            ),
            Schema::of_strings(
                "card",
                &["FN", "LN", "city", "AC", "zip", "tel", "gd", "St"],
            ),
        )
    }

    #[test]
    fn parses_the_running_example() {
        let (tran, card) = schemas();
        let text = r#"
            # Example 1.1 rules
            cfd phi1: tran([AC=131] -> [city=Edi])
            cfd phi2: tran([AC=020] -> [city=Ldn])
            cfd phi3: tran([city, phn] -> [St, AC, post])
            cfd phi4: tran([FN=Bob] -> [FN=Robert])
            md psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(3) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]
            neg psi1: tran[gd] != card[gd] -> tran[FN] <!> card[FN]
        "#;
        let rules = parse_rules(text, &tran, Some(&card)).unwrap();
        assert_eq!(rules.cfds.len(), 4);
        assert_eq!(rules.positive_mds.len(), 1);
        assert_eq!(rules.negative_mds.len(), 1);
        assert_eq!(
            rules.cfds[0].to_string(),
            "phi1: tran([AC=131] -> [city=Edi])"
        );
        assert!(rules.cfds[2].is_plain_fd());
        assert_eq!(rules.positive_mds[0].premises().len(), 5);
        assert_eq!(rules.positive_mds[0].rhs().len(), 2);
    }

    #[test]
    fn quoted_constants_allow_spaces_and_commas() {
        let (tran, _) = schemas();
        let rules = parse_rules(
            r#"cfd c: tran([city="New York, NY"] -> [AC=212])"#,
            &tran,
            None,
        )
        .unwrap();
        assert_eq!(
            rules.cfds[0].lhs_pattern()[0],
            PatternValue::Const(Value::str("New York, NY"))
        );
    }

    #[test]
    fn display_round_trips_constants_needing_quotes() {
        let (tran, _) = schemas();
        // Spaces, commas and `#` in constants must re-quote on Display so
        // `cfd {cfd}` re-parses to the same rule.
        let text = r#"cfd c: tran([city="New York, NY", AC=212] -> [St="Main St #4"])"#;
        let rules = parse_rules(text, &tran, None).unwrap();
        let rendered = format!("cfd {}", rules.cfds[0]);
        let reparsed = parse_rules(&rendered, &tran, None)
            .unwrap_or_else(|e| panic!("`{rendered}` does not re-parse: {e}"));
        assert_eq!(reparsed.cfds[0], rules.cfds[0]);
    }

    #[test]
    fn similarity_predicate_variants_parse() {
        let (tran, card) = schemas();
        let text = "md m: tran[FN] ~jw(0.9) card[FN] AND tran[LN] ~qgram(2,0.5) card[LN] AND tran[city] ~jaro(0.8) card[city] -> tran[phn] <=> card[tel]";
        let rules = parse_rules(text, &tran, Some(&card)).unwrap();
        let prem = rules.positive_mds[0].premises();
        assert_eq!(prem[0].pred, SimilarityPredicate::JaroWinkler { min: 0.9 });
        assert_eq!(
            prem[1].pred,
            SimilarityPredicate::QGramJaccard { q: 2, min: 0.5 }
        );
        assert_eq!(prem[2].pred, SimilarityPredicate::Jaro { min: 0.8 });
    }

    #[test]
    fn unknown_attribute_reports_line() {
        let (tran, _) = schemas();
        let err = parse_rules("\ncfd c: tran([bogus] -> [city])", &tran, None).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("bogus"), "{}", err.msg);
    }

    #[test]
    fn unknown_relation_rejected() {
        let (tran, _) = schemas();
        let err = parse_rules("cfd c: wrong([AC] -> [city])", &tran, None).unwrap_err();
        assert!(err.msg.contains("unknown relation"), "{}", err.msg);
    }

    #[test]
    fn md_without_master_schema_rejected() {
        let (tran, _) = schemas();
        let err = parse_rules(
            "md m: tran[FN] = tran[FN] -> tran[FN] <=> tran[FN]",
            &tran,
            None,
        )
        .unwrap_err();
        assert!(err.msg.contains("master schema"), "{}", err.msg);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (tran, _) = schemas();
        let err = parse_rules("cfd c: tran([AC] -> [city]) extra", &tran, None).unwrap_err();
        assert!(err.msg.contains("trailing"), "{}", err.msg);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let (tran, _) = schemas();
        let rules = parse_rules("\n# only a comment\n\n", &tran, None).unwrap();
        assert!(rules.cfds.is_empty());
    }

    #[test]
    fn hash_inside_quotes_is_content() {
        let (tran, _) = schemas();
        let rules =
            parse_rules(r##"cfd c: tran([city="#1 Place"] -> [AC=1])"##, &tran, None).unwrap();
        assert_eq!(
            rules.cfds[0].lhs_pattern()[0],
            PatternValue::Const(Value::str("#1 Place"))
        );
    }

    #[test]
    fn unknown_predicate_rejected() {
        let (tran, card) = schemas();
        let err = parse_rules(
            "md m: tran[FN] ~cosine(0.9) card[FN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap_err();
        assert!(err.msg.contains("cosine"), "{}", err.msg);
    }
}
