//! Violation enumeration — the raw material every repair phase works from.
//!
//! Two null conventions coexist in the paper and both are needed:
//!
//! * **Enrich** (`null_satisfies = false`): a null on a rule's RHS counts as
//!   a violation, so cleaning can *fill it in* — Example 1.1 step (d)
//!   enriches `t4[St]` (a null) through the FD `ϕ3`.
//! * **Satisfy** (`null_satisfies = true`): the SQL simple semantics of §7 —
//!   `t1[X] = t2[X]` evaluates true if either side is null. This is the
//!   convention under which the final repair `Dr ⊨ Σ` is checked, since
//!   `hRepair` may resolve an irreconcilable conflict with null.
//!
//! Pattern/premise matching never involves nulls under either convention: a
//! rule "only applies to those tuples that precisely match a pattern tuple,
//! which does not contain null".

use std::collections::HashMap;

use uniclean_model::{Relation, TupleId, Value};

use crate::cfd::Cfd;
use crate::md::Md;

/// A single detected violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Tuple `tuple` matches the LHS pattern of constant CFD `rule` but
    /// disagrees with its RHS constant.
    ConstantCfd {
        /// Index of the rule in the set passed to the enumerator.
        rule: usize,
        /// The offending tuple.
        tuple: TupleId,
    },
    /// A group of tuples agreeing (strictly) on the LHS of variable CFD
    /// `rule` whose RHS values conflict or can be enriched.
    VariableCfd {
        /// Index of the rule in the set passed to the enumerator.
        rule: usize,
        /// The shared LHS key.
        key: Vec<Value>,
        /// Tuples in the group (two or more, or one with an enrichable
        /// null alongside... always ≥ 2 since a key needs two tuples to
        /// conflict).
        tuples: Vec<TupleId>,
        /// The distinct non-null RHS values observed in the group.
        values: Vec<Value>,
    },
    /// Data tuple `tuple` matches master tuple `master` on MD `rule`'s
    /// premise but their identified attributes differ.
    Md {
        /// Index of the rule in the set passed to the enumerator.
        rule: usize,
        /// The data-side tuple.
        tuple: TupleId,
        /// The master-side tuple.
        master: TupleId,
    },
}

/// Enumerate violations of a set of *normalized* CFDs.
///
/// `null_satisfies` selects the null convention (see module docs).
pub fn cfd_violations(cfds: &[Cfd], d: &Relation, null_satisfies: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, cfd) in cfds.iter().enumerate() {
        assert!(
            cfd.is_normalized(),
            "cfd_violations requires normalized CFDs; `{}` is not",
            cfd.name()
        );
        if cfd.is_constant() {
            constant_cfd_violations(idx, cfd, d, null_satisfies, &mut out);
        } else {
            variable_cfd_violations(idx, cfd, d, null_satisfies, &mut out);
        }
    }
    out
}

fn constant_cfd_violations(
    idx: usize,
    cfd: &Cfd,
    d: &Relation,
    null_satisfies: bool,
    out: &mut Vec<Violation>,
) {
    let rhs = cfd.rhs()[0];
    let want = cfd.rhs_pattern()[0].as_const().expect("constant CFD");
    for (tid, t) in d.iter() {
        if !cfd.lhs_matches(t) {
            continue;
        }
        let have = t.value(rhs);
        let ok = if null_satisfies {
            have.eq_nullable(want)
        } else {
            have == want
        };
        if !ok {
            out.push(Violation::ConstantCfd {
                rule: idx,
                tuple: tid,
            });
        }
    }
}

fn variable_cfd_violations(
    idx: usize,
    cfd: &Cfd,
    d: &Relation,
    null_satisfies: bool,
    out: &mut Vec<Violation>,
) {
    let rhs = cfd.rhs()[0];
    // Δ(ȳ): group tuples that match the LHS pattern by their LHS values.
    let mut groups: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
    for (tid, t) in d.iter() {
        if cfd.lhs_matches(t) {
            groups.entry(t.project(cfd.lhs())).or_default().push(tid);
        }
    }
    let mut keyed: Vec<(Vec<Value>, Vec<TupleId>)> = groups.into_iter().collect();
    keyed.sort(); // deterministic output order
    for (key, tuples) in keyed {
        if tuples.len() < 2 {
            continue;
        }
        let mut distinct: Vec<Value> = Vec::new();
        let mut nulls = false;
        for &tid in &tuples {
            let v = d.tuple(tid).value(rhs);
            if v.is_null() {
                nulls = true;
            } else if !distinct.contains(v) {
                distinct.push(v.clone());
            }
        }
        distinct.sort();
        let conflict = distinct.len() >= 2;
        let enrichable = !null_satisfies && nulls && !distinct.is_empty();
        if conflict || enrichable {
            out.push(Violation::VariableCfd {
                rule: idx,
                key,
                tuples,
                values: distinct,
            });
        }
    }
}

/// Enumerate violations of a set of *normalized* MDs against master data.
///
/// This is the reference O(|D|·|Dm|) scan; the cleaning algorithms use the
/// LCS blocking index instead (see `uniclean-core`).
pub fn md_violations(
    mds: &[Md],
    d: &Relation,
    dm: &Relation,
    null_satisfies: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, md) in mds.iter().enumerate() {
        assert!(
            md.is_normalized(),
            "md_violations requires normalized MDs; `{}` is not",
            md.name()
        );
        let (e, f) = md.rhs()[0];
        for (tid, t) in d.iter() {
            for (sid, s) in dm.iter() {
                if !md.premise_matches(t, s) {
                    continue;
                }
                let tv = t.value(e);
                let sv = s.value(f);
                let ok = if null_satisfies {
                    tv.eq_nullable(sv)
                } else {
                    tv == sv
                };
                if !ok {
                    out.push(Violation::Md {
                        rule: idx,
                        tuple: tid,
                        master: sid,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::MdPremise;
    use crate::pattern::PatternValue;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_similarity::SimilarityPredicate;

    fn schema() -> Arc<Schema> {
        Schema::of_strings("tran", &["AC", "city", "phn", "St"])
    }

    fn phi1(s: &Arc<Schema>) -> Cfd {
        Cfd::new(
            "phi1",
            s.clone(),
            vec![s.attr_id_or_panic("AC")],
            vec![PatternValue::constant("131")],
            vec![s.attr_id_or_panic("city")],
            vec![PatternValue::constant("Edi")],
        )
    }

    fn fd_city_phn_st(s: &Arc<Schema>) -> Cfd {
        Cfd::new(
            "phi3",
            s.clone(),
            vec![s.attr_id_or_panic("city"), s.attr_id_or_panic("phn")],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
            vec![s.attr_id_or_panic("St")],
            vec![PatternValue::Wildcard],
        )
    }

    #[test]
    fn constant_cfd_single_tuple_violation() {
        let s = schema();
        let d = Relation::new(
            s.clone(),
            vec![
                Tuple::of_strs(&["131", "Ldn", "1", "a"], 0.5), // violates
                Tuple::of_strs(&["131", "Edi", "2", "b"], 0.5), // fine
                Tuple::of_strs(&["020", "Ldn", "3", "c"], 0.5), // pattern misses
            ],
        );
        let v = cfd_violations(&[phi1(&s)], &d, false);
        assert_eq!(
            v,
            vec![Violation::ConstantCfd {
                rule: 0,
                tuple: TupleId(0)
            }]
        );
    }

    #[test]
    fn variable_cfd_conflicting_group() {
        let s = schema();
        let d = Relation::new(
            s.clone(),
            vec![
                Tuple::of_strs(&["131", "Edi", "555", "10 Oak St"], 0.5),
                Tuple::of_strs(&["131", "Edi", "555", "Po Box 25"], 0.5),
                Tuple::of_strs(&["131", "Edi", "777", "5 Wren St"], 0.5),
            ],
        );
        let v = cfd_violations(&[fd_city_phn_st(&s)], &d, false);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::VariableCfd { tuples, values, .. } => {
                assert_eq!(tuples, &vec![TupleId(0), TupleId(1)]);
                assert_eq!(values.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn null_rhs_is_enrichable_but_satisfies_sql_semantics() {
        let s = schema();
        let mut t2 = Tuple::of_strs(&["131", "Edi", "555", "x"], 0.5);
        t2.set(
            s.attr_id_or_panic("St"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let d = Relation::new(
            s.clone(),
            vec![Tuple::of_strs(&["131", "Edi", "555", "10 Oak St"], 0.5), t2],
        );
        // Cleaning view: the null is enrichable.
        let v = cfd_violations(&[fd_city_phn_st(&s)], &d, false);
        assert_eq!(v.len(), 1);
        // Final-check view: nulls satisfy.
        let v = cfd_violations(&[fd_city_phn_st(&s)], &d, true);
        assert!(v.is_empty());
    }

    #[test]
    fn null_in_lhs_excludes_tuple_from_groups() {
        let s = schema();
        let mut t = Tuple::of_strs(&["131", "Edi", "555", "Elsewhere"], 0.5);
        t.set(
            s.attr_id_or_panic("phn"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let d = Relation::new(
            s.clone(),
            vec![Tuple::of_strs(&["131", "Edi", "555", "10 Oak St"], 0.5), t],
        );
        assert!(cfd_violations(&[fd_city_phn_st(&s)], &d, false).is_empty());
    }

    fn md_setup() -> (Arc<Schema>, Arc<Schema>, Md) {
        let tran = schema();
        let card = Schema::of_strings("card", &["AC", "city", "tel", "St"]);
        let md = Md::new(
            "psi",
            tran.clone(),
            card.clone(),
            vec![MdPremise {
                attr: tran.attr_id_or_panic("St"),
                master_attr: card.attr_id_or_panic("St"),
                pred: SimilarityPredicate::Equal,
            }],
            vec![(tran.attr_id_or_panic("phn"), card.attr_id_or_panic("tel"))],
        );
        (tran, card, md)
    }

    #[test]
    fn md_violation_found_and_fixed_value_not_reported() {
        let (tran, card, md) = md_setup();
        let d = Relation::new(
            tran,
            vec![
                Tuple::of_strs(&["131", "Edi", "999", "10 Oak St"], 0.5),
                Tuple::of_strs(&["131", "Edi", "777", "5 Wren St"], 0.5),
            ],
        );
        let dm = Relation::new(
            card,
            vec![Tuple::of_strs(&["131", "Edi", "777", "10 Oak St"], 1.0)],
        );
        let v = md_violations(&[md], &d, &dm, false);
        assert_eq!(
            v,
            vec![Violation::Md {
                rule: 0,
                tuple: TupleId(0),
                master: TupleId(0)
            }]
        );
    }

    #[test]
    fn md_null_rhs_enrichable_under_cleaning_semantics() {
        let (tran, card, md) = md_setup();
        let mut t = Tuple::of_strs(&["131", "Edi", "999", "10 Oak St"], 0.5);
        t.set(
            tran.attr_id_or_panic("phn"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let d = Relation::new(tran, vec![t]);
        let dm = Relation::new(
            card,
            vec![Tuple::of_strs(&["131", "Edi", "777", "10 Oak St"], 1.0)],
        );
        assert_eq!(
            md_violations(std::slice::from_ref(&md), &d, &dm, false).len(),
            1
        );
        assert!(md_violations(&[md], &d, &dm, true).is_empty());
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn unnormalized_cfd_rejected() {
        let s = schema();
        let wide = Cfd::new(
            "wide",
            s.clone(),
            vec![s.attr_id_or_panic("AC")],
            vec![PatternValue::Wildcard],
            vec![s.attr_id_or_panic("city"), s.attr_id_or_panic("St")],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
        );
        cfd_violations(&[wide], &Relation::empty(s), false);
    }
}
