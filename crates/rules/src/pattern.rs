//! Pattern values and the match operator `≍` (§2.1).
//!
//! A CFD's pattern tuple `tp` assigns each attribute either a constant from
//! its domain or the unnamed variable `_` (wildcard). The operator `≍` is
//! defined on constants and `_`: `v1 ≍ v2` iff `v1 = v2` or one of them is
//! `_`; e.g. `(131, Edi) ≍ (_, Edi)` but `(020, Ldn) ≭ (_, Edi)`.

use std::fmt;

use uniclean_model::Value;

/// One slot of a pattern tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternValue {
    /// A constant from the attribute's domain.
    Const(Value),
    /// The unnamed variable `_`, matching any non-null domain value.
    Wildcard,
}

impl PatternValue {
    /// Convenience constructor for a string constant.
    pub fn constant(s: impl AsRef<str>) -> Self {
        PatternValue::Const(Value::str(s))
    }

    /// The match operator `≍` against a data value.
    ///
    /// Nulls never match: "CFDs only apply to those tuples that precisely
    /// match a pattern tuple, which does not contain null" (§7). A wildcard
    /// therefore matches every value *except* null.
    pub fn matches(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            PatternValue::Wildcard => true,
            PatternValue::Const(c) => c == v,
        }
    }

    /// Is this slot a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, PatternValue::Const(_))
    }

    /// The constant, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            PatternValue::Const(v) => Some(v),
            PatternValue::Wildcard => None,
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Const(v) => write!(f, "{v}"),
            PatternValue::Wildcard => f.write_str("_"),
        }
    }
}

/// `t[X] ≍ tp[X]` extended to whole projections: every slot must match.
pub fn pattern_matches(pattern: &[PatternValue], values: &[&Value]) -> bool {
    debug_assert_eq!(pattern.len(), values.len());
    pattern.iter().zip(values.iter()).all(|(p, v)| p.matches(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_exactly() {
        let p = PatternValue::constant("131");
        assert!(p.matches(&Value::str("131")));
        assert!(!p.matches(&Value::str("020")));
    }

    #[test]
    fn wildcard_matches_any_non_null() {
        let p = PatternValue::Wildcard;
        assert!(p.matches(&Value::str("anything")));
        assert!(p.matches(&Value::int(7)));
        assert!(!p.matches(&Value::Null));
    }

    #[test]
    fn constants_never_match_null() {
        let p = PatternValue::constant("x");
        assert!(!p.matches(&Value::Null));
    }

    #[test]
    fn paper_example_tuples() {
        // (131, Edi) ≍ (_, Edi) but (020, Ldn) ≭ (_, Edi)
        let pattern = vec![PatternValue::Wildcard, PatternValue::constant("Edi")];
        let v131 = Value::str("131");
        let edi = Value::str("Edi");
        let v020 = Value::str("020");
        let ldn = Value::str("Ldn");
        assert!(pattern_matches(&pattern, &[&v131, &edi]));
        assert!(!pattern_matches(&pattern, &[&v020, &ldn]));
    }

    #[test]
    fn display_uses_underscore_for_wildcard() {
        assert_eq!(PatternValue::Wildcard.to_string(), "_");
        assert_eq!(PatternValue::constant("Edi").to_string(), "Edi");
    }
}
