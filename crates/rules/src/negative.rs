//! Negative MDs and their embedding into positive MDs (Prop. 2.6).
//!
//! A negative MD `ψ⁻` states
//!
//! ```text
//! ⋀ j (R[Aj] ≠ Rm[Bj])  →  ⋁ i (R[Ei] ⇎ Rm[Fi])
//! ```
//!
//! — e.g. "a male and a female may not refer to the same person"
//! (Example 2.4). Proposition 2.6 shows negative MDs never need separate
//! treatment: given positive MDs `Γ⁺` and negative MDs `Γ⁻`, an equivalent
//! all-positive set is obtained in O(|Γ⁺|·|Γ⁻|) time by conjoining, to each
//! positive MD's premise, an equality premise `R[Aj] = Rm[Bj]` for every
//! premise attribute of every negative MD (Example 2.5 adds `gd = gd` to
//! `ψ`).

use std::sync::Arc;

use uniclean_model::{AttrId, Schema};
use uniclean_similarity::SimilarityPredicate;

use crate::md::{Md, MdPremise};

/// A negative matching dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct NegativeMd {
    name: String,
    schema: Arc<Schema>,
    master_schema: Arc<Schema>,
    /// The inequality premises `(Aj, Bj)`.
    premises: Vec<(AttrId, AttrId)>,
    /// The disputed pairs `(Ei, Fi)`.
    rhs: Vec<(AttrId, AttrId)>,
}

impl NegativeMd {
    /// Build a negative MD.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        master_schema: Arc<Schema>,
        premises: Vec<(AttrId, AttrId)>,
        rhs: Vec<(AttrId, AttrId)>,
    ) -> Self {
        assert!(
            !premises.is_empty(),
            "negative MD needs at least one premise"
        );
        NegativeMd {
            name: name.into(),
            schema,
            master_schema,
            premises,
            rhs,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The inequality premises.
    pub fn premises(&self) -> &[(AttrId, AttrId)] {
        &self.premises
    }

    /// The disputed pairs.
    pub fn rhs(&self) -> &[(AttrId, AttrId)] {
        &self.rhs
    }
}

/// Prop. 2.6: embed `negatives` into `positives`, producing an equivalent
/// all-positive set.
///
/// For each positive MD `ψ` and each negative MD `ψ⁻`, every premise pair
/// `(Aj, Bj)` of `ψ⁻` is added to `ψ`'s premise as an equality conjunct
/// (deduplicated — if `ψ` already requires equality on the pair, nothing is
/// added). Runs in O(|Γ⁺|·|Γ⁻|) premise insertions.
pub fn embed_negative_mds(positives: &[Md], negatives: &[NegativeMd]) -> Vec<Md> {
    positives
        .iter()
        .map(|md| {
            let mut premises = md.premises().to_vec();
            for neg in negatives {
                for &(a, b) in neg.premises() {
                    let already = premises
                        .iter()
                        .any(|p| p.attr == a && p.master_attr == b && p.pred.is_equality());
                    if !already {
                        premises.push(MdPremise {
                            attr: a,
                            master_attr: b,
                            pred: SimilarityPredicate::Equal,
                        });
                    }
                }
            }
            Md::new(
                format!("{}+", md.name()),
                md.schema().clone(),
                md.master_schema().clone(),
                premises,
                md.rhs().to_vec(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::Tuple;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        (
            Schema::of_strings("tran", &["FN", "LN", "gd", "phn"]),
            Schema::of_strings("card", &["FN", "LN", "gd", "tel"]),
        )
    }

    fn positive(tran: &Arc<Schema>, card: &Arc<Schema>) -> Md {
        Md::new(
            "psi",
            tran.clone(),
            card.clone(),
            vec![MdPremise {
                attr: tran.attr_id_or_panic("LN"),
                master_attr: card.attr_id_or_panic("LN"),
                pred: SimilarityPredicate::Equal,
            }],
            vec![(tran.attr_id_or_panic("phn"), card.attr_id_or_panic("tel"))],
        )
    }

    fn negative(tran: &Arc<Schema>, card: &Arc<Schema>) -> NegativeMd {
        NegativeMd::new(
            "psi-",
            tran.clone(),
            card.clone(),
            vec![(tran.attr_id_or_panic("gd"), card.attr_id_or_panic("gd"))],
            vec![(tran.attr_id_or_panic("phn"), card.attr_id_or_panic("tel"))],
        )
    }

    #[test]
    fn embedding_adds_equality_premise() {
        let (tran, card) = schemas();
        let out = embed_negative_mds(&[positive(&tran, &card)], &[negative(&tran, &card)]);
        assert_eq!(out.len(), 1);
        let md = &out[0];
        assert_eq!(md.premises().len(), 2);
        let gd = md
            .premises()
            .iter()
            .find(|p| p.attr == tran.attr_id_or_panic("gd"))
            .expect("gd premise embedded");
        assert!(gd.pred.is_equality());
    }

    #[test]
    fn example_2_5_semantics() {
        // After embedding, tuples with different genders no longer match.
        let (tran, card) = schemas();
        let out = embed_negative_mds(&[positive(&tran, &card)], &[negative(&tran, &card)]);
        let md = &out[0];
        let t_male = Tuple::of_strs(&["Bob", "Brady", "Male", "111"], 0.5);
        let s_male = Tuple::of_strs(&["Robert", "Brady", "Male", "222"], 1.0);
        let s_female = Tuple::of_strs(&["Roberta", "Brady", "Female", "333"], 1.0);
        assert!(md.premise_matches(&t_male, &s_male));
        assert!(!md.premise_matches(&t_male, &s_female));
        // The original positive MD matched both.
        let orig = positive(&tran, &card);
        assert!(orig.premise_matches(&t_male, &s_female));
    }

    #[test]
    fn embedding_deduplicates_existing_premises() {
        let (tran, card) = schemas();
        // Positive MD that already requires gd = gd.
        let mut md = positive(&tran, &card);
        md = Md::new(
            "psi2",
            md.schema().clone(),
            md.master_schema().clone(),
            {
                let mut p = md.premises().to_vec();
                p.push(MdPremise {
                    attr: tran.attr_id_or_panic("gd"),
                    master_attr: card.attr_id_or_panic("gd"),
                    pred: SimilarityPredicate::Equal,
                });
                p
            },
            md.rhs().to_vec(),
        );
        let out = embed_negative_mds(&[md], &[negative(&tran, &card)]);
        assert_eq!(out[0].premises().len(), 2, "no duplicate gd premise");
    }

    #[test]
    fn empty_negative_set_is_identity_modulo_name() {
        let (tran, card) = schemas();
        let orig = positive(&tran, &card);
        let out = embed_negative_mds(std::slice::from_ref(&orig), &[]);
        assert_eq!(out[0].premises(), orig.premises());
        assert_eq!(out[0].rhs(), orig.rhs());
    }

    #[test]
    fn cost_is_product_of_sizes() {
        // Structural check on the O(|Γ+||Γ−|) construction: every positive
        // MD gains at most Σ|premises(ψ−)| new conjuncts.
        let (tran, card) = schemas();
        let negs = vec![negative(&tran, &card), negative(&tran, &card)];
        let out = embed_negative_mds(&[positive(&tran, &card)], &negs);
        // Second copy deduplicates against the first.
        assert_eq!(out[0].premises().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one premise")]
    fn empty_negative_premise_rejected() {
        let (tran, card) = schemas();
        NegativeMd::new("bad", tran, card, vec![], vec![]);
    }
}
