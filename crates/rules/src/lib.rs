//! Data quality rules for UniClean: CFDs and MDs (§2 of the paper).
//!
//! * [`pattern`] — pattern values and the match operator `≍` of CFDs;
//! * [`cfd`] — conditional functional dependencies `R(X → Y, tp)`;
//! * [`md`] — positive matching dependencies across a data schema and a
//!   master schema;
//! * [`negative`] — negative MDs and their embedding into positive MDs
//!   (Proposition 2.6);
//! * [`normalize`] — normalization to single-attribute right-hand sides;
//! * [`satisfaction`] — `D ⊨ Σ` and `(D, Dm) ⊨ Γ` checks;
//! * [`violations`] — violation enumeration (the raw material of repairs);
//! * [`parser`] — a textual rule language close to the paper's notation;
//! * [`ruleset`] — the combined `Θ = Σ ∪ Γ` container.

pub mod cfd;
pub mod md;
pub mod negative;
pub mod normalize;
pub mod parser;
pub mod pattern;
pub mod ruleset;
pub mod satisfaction;
pub mod violations;

pub use cfd::Cfd;
pub use md::{MatchScratch, Md, MdPremise};
pub use negative::{embed_negative_mds, NegativeMd};
pub use normalize::{normalize_cfds, normalize_mds};
pub use parser::{parse_rules, ParseError, ParsedRules};
pub use pattern::PatternValue;
pub use ruleset::{RuleSet, RuleSetError};
pub use satisfaction::{satisfies_all, satisfies_cfd, satisfies_md};
pub use violations::{cfd_violations, md_violations, Violation};
