//! The combined rule set `Θ = Σ ∪ Γ` handed to the cleaning pipeline.

use std::fmt;
use std::sync::Arc;

use uniclean_model::Schema;

use crate::cfd::Cfd;
use crate::md::Md;
use crate::negative::{embed_negative_mds, NegativeMd};
use crate::normalize::{normalize_cfds, normalize_mds};

/// Why a [`RuleSet`] could not be assembled from parsed rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleSetError {
    /// A CFD was authored against a different relation than the data
    /// schema handed to the rule set.
    ForeignSchema {
        /// Name of the offending rule.
        rule: String,
        /// Relation name the rule set expects.
        expected: String,
        /// Relation name the rule references.
        found: String,
    },
    /// Positive or negative MDs were supplied without a master schema.
    MdsWithoutMasterSchema,
}

impl fmt::Display for RuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleSetError::ForeignSchema {
                rule,
                expected,
                found,
            } => write!(
                f,
                "CFD `{rule}` is on a different schema (`{found}`, expected `{expected}`)"
            ),
            RuleSetError::MdsWithoutMasterSchema => write!(f, "MDs require a master schema"),
        }
    }
}

impl std::error::Error for RuleSetError {}

/// A prepared rule set: CFDs and MDs, normalized, with negative MDs already
/// embedded (per Prop. 2.6 only positive, normalized rules need to be
/// considered downstream).
#[derive(Clone, Debug)]
pub struct RuleSet {
    schema: Arc<Schema>,
    master_schema: Option<Arc<Schema>>,
    cfds: Vec<Cfd>,
    mds: Vec<Md>,
}

impl RuleSet {
    /// Prepare a rule set: normalize every rule and embed negative MDs.
    ///
    /// # Panics
    /// Panics if rules reference a different schema than the one given, or
    /// if MDs are present without a master schema. [`RuleSet::try_new`] is
    /// the non-panicking equivalent for rules built from user input.
    pub fn new(
        schema: Arc<Schema>,
        master_schema: Option<Arc<Schema>>,
        cfds: Vec<Cfd>,
        positive_mds: Vec<Md>,
        negative_mds: Vec<NegativeMd>,
    ) -> Self {
        Self::try_new(schema, master_schema, cfds, positive_mds, negative_mds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Prepare a rule set, reporting structural problems as a
    /// [`RuleSetError`] instead of panicking.
    pub fn try_new(
        schema: Arc<Schema>,
        master_schema: Option<Arc<Schema>>,
        cfds: Vec<Cfd>,
        positive_mds: Vec<Md>,
        negative_mds: Vec<NegativeMd>,
    ) -> Result<Self, RuleSetError> {
        for c in &cfds {
            if c.schema().name() != schema.name() {
                return Err(RuleSetError::ForeignSchema {
                    rule: c.name().to_string(),
                    expected: schema.name().to_string(),
                    found: c.schema().name().to_string(),
                });
            }
        }
        if (!positive_mds.is_empty() || !negative_mds.is_empty()) && master_schema.is_none() {
            return Err(RuleSetError::MdsWithoutMasterSchema);
        }
        let embedded = if negative_mds.is_empty() {
            positive_mds
        } else {
            embed_negative_mds(&positive_mds, &negative_mds)
        };
        Ok(RuleSet {
            schema,
            master_schema,
            cfds: normalize_cfds(&cfds),
            mds: normalize_mds(&embedded),
        })
    }

    /// A rule set with CFDs only (repairing without matching —
    /// the paper's `Uni(CFD)` configuration).
    pub fn cfds_only(schema: Arc<Schema>, cfds: Vec<Cfd>) -> Self {
        RuleSet::new(schema, None, cfds, Vec::new(), Vec::new())
    }

    /// The data schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The master schema, if MDs are present.
    pub fn master_schema(&self) -> Option<&Arc<Schema>> {
        self.master_schema.as_ref()
    }

    /// Normalized CFDs (`Σ`).
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Normalized positive MDs (`Γ`), negatives embedded.
    pub fn mds(&self) -> &[Md] {
        &self.mds
    }

    /// Total number of normalized rules `|Θ|`.
    pub fn len(&self) -> usize {
        self.cfds.len() + self.mds.len()
    }

    /// Is the rule set empty?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty() && self.mds.is_empty()
    }

    /// Drop all MDs — the `Uni(CFD)` ablation of the experiments.
    pub fn without_mds(&self) -> RuleSet {
        RuleSet {
            schema: self.schema.clone(),
            master_schema: None,
            cfds: self.cfds.clone(),
            mds: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::MdPremise;
    use crate::pattern::PatternValue;
    use uniclean_similarity::SimilarityPredicate;

    #[test]
    fn ruleset_normalizes_and_embeds() {
        let tran = Schema::of_strings("tran", &["A", "B", "C", "gd"]);
        let card = Schema::of_strings("card", &["A", "B", "C", "gd"]);
        let wide_cfd = Cfd::new(
            "c",
            tran.clone(),
            vec![tran.attr_id_or_panic("A")],
            vec![PatternValue::Wildcard],
            vec![tran.attr_id_or_panic("B"), tran.attr_id_or_panic("C")],
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
        );
        let md = Md::new(
            "m",
            tran.clone(),
            card.clone(),
            vec![MdPremise {
                attr: tran.attr_id_or_panic("A"),
                master_attr: card.attr_id_or_panic("A"),
                pred: SimilarityPredicate::Equal,
            }],
            vec![
                (tran.attr_id_or_panic("B"), card.attr_id_or_panic("B")),
                (tran.attr_id_or_panic("C"), card.attr_id_or_panic("C")),
            ],
        );
        let neg = crate::negative::NegativeMd::new(
            "n",
            tran.clone(),
            card.clone(),
            vec![(tran.attr_id_or_panic("gd"), card.attr_id_or_panic("gd"))],
            vec![],
        );
        let rs = RuleSet::new(
            tran.clone(),
            Some(card),
            vec![wide_cfd],
            vec![md],
            vec![neg],
        );
        assert_eq!(rs.cfds().len(), 2, "wide CFD split in two");
        assert_eq!(rs.mds().len(), 2, "wide MD split in two");
        assert!(
            rs.mds().iter().all(|m| m.premises().len() == 2),
            "gd premise embedded"
        );
        assert_eq!(rs.len(), 4);
        let no_md = rs.without_mds();
        assert_eq!(no_md.len(), 2);
        assert!(no_md.master_schema().is_none());
    }

    #[test]
    fn try_new_reports_structural_errors() {
        let tran = Schema::of_strings("tran", &["A", "B"]);
        let other = Schema::of_strings("other", &["A", "B"]);
        let foreign_cfd = Cfd::new(
            "c",
            other.clone(),
            vec![other.attr_id_or_panic("A")],
            vec![PatternValue::Wildcard],
            vec![other.attr_id_or_panic("B")],
            vec![PatternValue::Wildcard],
        );
        let err =
            RuleSet::try_new(tran.clone(), None, vec![foreign_cfd], vec![], vec![]).unwrap_err();
        assert_eq!(
            err,
            RuleSetError::ForeignSchema {
                rule: "c".into(),
                expected: "tran".into(),
                found: "other".into()
            }
        );
        assert!(RuleSet::try_new(tran, None, vec![], vec![], vec![]).is_ok());
    }

    #[test]
    #[should_panic(expected = "require a master schema")]
    fn mds_without_master_schema_rejected() {
        let tran = Schema::of_strings("tran", &["A", "B"]);
        let card = Schema::of_strings("card", &["A", "B"]);
        let md = Md::new(
            "m",
            tran.clone(),
            card.clone(),
            vec![MdPremise {
                attr: tran.attr_id_or_panic("A"),
                master_attr: card.attr_id_or_panic("A"),
                pred: SimilarityPredicate::Equal,
            }],
            vec![(tran.attr_id_or_panic("B"), card.attr_id_or_panic("B"))],
        );
        RuleSet::new(tran, None, vec![], vec![md], vec![]);
    }
}
