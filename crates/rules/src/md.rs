//! Positive matching dependencies (§2.2).
//!
//! A positive MD `ψ` on `(R, Rm)` has the form
//!
//! ```text
//! ⋀ j∈[1,k] (R[Aj] ≈j Rm[Bj])  →  ⋀ i∈[1,h] (R[Ei] ⇋ Rm[Fi])
//! ```
//!
//! Its dynamic semantics against a dirty relation `D` and master data `Dm`:
//! whenever `t ∈ D` and `s ∈ Dm` satisfy every premise similarity, `t[Ei]`
//! is *changed to* `s[Fi]` — values are drawn from the clean master data.
//! `(D, Dm) ⊨ ψ` iff no tuple of `D` can still be updated this way.

use std::fmt;
use std::sync::Arc;

use uniclean_model::{AttrId, Row, Schema};
use uniclean_similarity::SimilarityPredicate;

/// One conjunct `R[Aj] ≈j Rm[Bj]` of an MD premise.
#[derive(Clone, Debug, PartialEq)]
pub struct MdPremise {
    /// The data-side attribute `Aj`.
    pub attr: AttrId,
    /// The master-side attribute `Bj`.
    pub master_attr: AttrId,
    /// The similarity predicate `≈j`.
    pub pred: SimilarityPredicate,
}

/// A positive matching dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct Md {
    name: String,
    schema: Arc<Schema>,
    master_schema: Arc<Schema>,
    premises: Vec<MdPremise>,
    /// The identified pairs `(Ei, Fi)`.
    rhs: Vec<(AttrId, AttrId)>,
}

impl Md {
    /// Build an MD. `name` is a diagnostic label (e.g. `"psi"`).
    ///
    /// # Panics
    /// Panics on an empty RHS or duplicate data-side premise attributes.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        master_schema: Arc<Schema>,
        premises: Vec<MdPremise>,
        rhs: Vec<(AttrId, AttrId)>,
    ) -> Self {
        assert!(
            !rhs.is_empty(),
            "MD must identify at least one attribute pair"
        );
        Md {
            name: name.into(),
            schema,
            master_schema,
            premises,
            rhs,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data-side schema `R`.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The master-side schema `Rm`.
    pub fn master_schema(&self) -> &Arc<Schema> {
        &self.master_schema
    }

    /// The premise conjuncts.
    pub fn premises(&self) -> &[MdPremise] {
        &self.premises
    }

    /// The identified pairs `(Ei, Fi)`.
    pub fn rhs(&self) -> &[(AttrId, AttrId)] {
        &self.rhs
    }

    /// Is the MD normalized (`|RHS| = 1`)?
    pub fn is_normalized(&self) -> bool {
        self.rhs.len() == 1
    }

    /// Data-side premise attributes `A1..Ak` (the cleaning rule's premise
    /// attributes for confidence checks).
    pub fn lhs_attrs(&self) -> Vec<AttrId> {
        self.premises.iter().map(|p| p.attr).collect()
    }

    /// Indices of the strict-equality conjuncts, in premise order — the
    /// access-path planner keys its composite hash index on exactly these
    /// (and the §3.1 confidence rule singles them out too).
    pub fn equality_premise_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.premises
            .iter()
            .enumerate()
            .filter(|(_, p)| p.pred.is_equality())
            .map(|(i, _)| i)
    }

    /// Does the premise hold between data tuple `t` and master tuple `s`?
    /// Generic over [`Row`]: the data side is usually a stored
    /// [`uniclean_model::TupleRef`], the master side a row of another
    /// relation — no tuple materialization either way.
    ///
    /// Nulls never satisfy a similarity premise — matching a data tuple with
    /// a master tuple adopts the same convention as CFD pattern matching
    /// (§7).
    pub fn premise_matches<'t, 's>(&self, t: impl Row<'t>, s: impl Row<'s>) -> bool {
        self.premises.iter().all(|p| {
            let tv = t.value(p.attr);
            let sv = s.value(p.master_attr);
            if tv.is_null() || sv.is_null() {
                return false;
            }
            p.pred.matches(&tv.render(), &sv.render())
        })
    }

    /// Does the conclusion already hold (`t[Ei] = s[Fi]` for all `i`)?
    pub fn rhs_identified<'t, 's>(&self, t: impl Row<'t>, s: impl Row<'s>) -> bool {
        self.rhs.iter().all(|(e, f)| t.value(*e) == s.value(*f))
    }

    /// Would applying this MD with master tuple `s` change `t`?
    pub fn applies<'t, 's>(&self, t: impl Row<'t>, s: impl Row<'s>) -> bool {
        self.premise_matches(t, s) && !self.rhs_identified(t, s)
    }
}

impl fmt::Display for Md {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, p) in self.premises.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(
                f,
                "{}[{}] {} {}[{}]",
                self.schema.name(),
                self.schema.attr_name(p.attr),
                p.pred,
                self.master_schema.name(),
                self.master_schema.attr_name(p.master_attr),
            )?;
        }
        f.write_str(" -> ")?;
        for (i, (e, fa)) in self.rhs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(
                f,
                "{}[{}] <=> {}[{}]",
                self.schema.name(),
                self.schema.attr_name(*e),
                self.master_schema.name(),
                self.master_schema.attr_name(*fa),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Tuple, Value};

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        (
            Schema::of_strings("tran", &["FN", "LN", "city", "St", "post", "phn"]),
            Schema::of_strings("card", &["FN", "LN", "city", "St", "zip", "tel"]),
        )
    }

    /// ψ of Example 1.1: tran[LN, city, St, post] = card[LN, city, St, zip]
    /// ∧ tran[FN] ≈ card[FN] → tran[FN, phn] ⇋ card[FN, tel].
    fn psi(tran: &Arc<Schema>, card: &Arc<Schema>) -> Md {
        let eqs = [
            ("LN", "LN"),
            ("city", "city"),
            ("St", "St"),
            ("post", "zip"),
        ];
        let mut premises: Vec<MdPremise> = eqs
            .iter()
            .map(|(a, b)| MdPremise {
                attr: tran.attr_id_or_panic(a),
                master_attr: card.attr_id_or_panic(b),
                pred: SimilarityPredicate::Equal,
            })
            .collect();
        premises.push(MdPremise {
            attr: tran.attr_id_or_panic("FN"),
            master_attr: card.attr_id_or_panic("FN"),
            // "M." ≈ "Mark" needs three edits (sub + two inserts).
            pred: SimilarityPredicate::Levenshtein { max: 3 },
        });
        Md::new(
            "psi",
            tran.clone(),
            card.clone(),
            premises,
            vec![
                (tran.attr_id_or_panic("FN"), card.attr_id_or_panic("FN")),
                (tran.attr_id_or_panic("phn"), card.attr_id_or_panic("tel")),
            ],
        )
    }

    #[test]
    fn example_2_3_premise_and_application() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        // t1' (t1 with city already repaired to Ldn)… using the Edinburgh
        // variant for s1: the premise holds, the conclusion does not.
        let t1p = Tuple::of_strs(
            &["M.", "Smith", "Edi", "10 Oak St", "EH8 9LE", "9999999"],
            0.5,
        );
        let s1 = Tuple::of_strs(
            &["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3256778"],
            1.0,
        );
        assert!(md.premise_matches(&t1p, &s1));
        assert!(!md.rhs_identified(&t1p, &s1));
        assert!(md.applies(&t1p, &s1));
    }

    #[test]
    fn dissimilar_first_names_block_the_premise() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let t = Tuple::of_strs(
            &["Zebulon", "Smith", "Edi", "10 Oak St", "EH8 9LE", "1"],
            0.5,
        );
        let s = Tuple::of_strs(&["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "2"], 1.0);
        assert!(!md.premise_matches(&t, &s));
    }

    #[test]
    fn identified_rhs_means_no_application() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let t = Tuple::of_strs(
            &["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3256778"],
            0.5,
        );
        let s = Tuple::of_strs(
            &["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3256778"],
            1.0,
        );
        assert!(md.premise_matches(&t, &s));
        assert!(md.rhs_identified(&t, &s));
        assert!(!md.applies(&t, &s));
    }

    #[test]
    fn null_premise_values_never_match() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let mut t = Tuple::of_strs(&["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "1"], 0.5);
        t.set(
            tran.attr_id_or_panic("St"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let s = Tuple::of_strs(&["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "2"], 1.0);
        assert!(!md.premise_matches(&t, &s));
    }

    #[test]
    fn display_is_readable() {
        let (tran, card) = schemas();
        let text = psi(&tran, &card).to_string();
        assert!(text.contains("tran[LN] = card[LN]"));
        assert!(text.contains("tran[FN] ~lev(3) card[FN]"));
        assert!(text.contains("tran[phn] <=> card[tel]"));
    }

    #[test]
    #[should_panic(expected = "at least one attribute pair")]
    fn empty_rhs_rejected() {
        let (tran, card) = schemas();
        Md::new("bad", tran, card, vec![], vec![]);
    }
}
