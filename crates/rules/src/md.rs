//! Positive matching dependencies (§2.2).
//!
//! A positive MD `ψ` on `(R, Rm)` has the form
//!
//! ```text
//! ⋀ j∈[1,k] (R[Aj] ≈j Rm[Bj])  →  ⋀ i∈[1,h] (R[Ei] ⇋ Rm[Fi])
//! ```
//!
//! Its dynamic semantics against a dirty relation `D` and master data `Dm`:
//! whenever `t ∈ D` and `s ∈ Dm` satisfy every premise similarity, `t[Ei]`
//! is *changed to* `s[Fi]` — values are drawn from the clean master data.
//! `(D, Dm) ⊨ ψ` iff no tuple of `D` can still be updated this way.

use std::fmt;
use std::sync::Arc;

use uniclean_model::{AttrId, FxHashMap, FxHasher, Row, Schema};
use uniclean_similarity::{
    ColumnVerdicts, MyersPattern, QGramProfile, SimScratch, SimilarityPredicate,
};

/// Caller-owned buffers and symbol-keyed kernel caches for MD premise
/// evaluation. One per probing thread, embedded in the engine's
/// `ProbeScratch`; [`Md::premise_matches_with`] uses it to evaluate
/// premises with zero steady-state allocation *and* to reuse expensive
/// per-value precomputations across probes:
///
/// * Myers `Peq` pattern bitmaps keyed by the master-side [`Symbol`] — a
///   master value probed a thousand times builds its bitmaps once;
/// * padded q-gram profiles keyed by `(Symbol, q)` for both sides.
///
/// Symbols are only meaningful relative to one interner, so the caches are
/// epoch-guarded: the master index stamps every scratch it probes with its
/// build epoch via [`MatchScratch::sync_epoch`], and a stale scratch drops
/// all symbol-keyed state before reuse. Detached rows (no symbols) simply
/// bypass the caches.
///
/// [`Symbol`]: uniclean_model::Symbol
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Per-call similarity buffers (Myers blocks, Jaro match arrays,
    /// profile padding/hash buffers).
    sim: SimScratch,
    /// Myers pattern bitmaps keyed by master-side symbol.
    myers: FxHashMap<u32, MyersPattern>,
    /// Myers pattern bitmaps keyed by *probe*-side symbol — the
    /// column-at-a-time driver compiles the probe value once and sweeps
    /// whole master columns through it.
    probe_patterns: FxHashMap<u32, MyersPattern>,
    /// Un-cached pattern slot for symbol-less probe values.
    probe_pat: MyersPattern,
    /// Verdict bitmap of the last columnar sweep.
    column: ColumnVerdicts,
    /// Master-side symbols of the last columnar sweep, for memo seeding.
    seed_syms: Vec<Option<u32>>,
    /// Padded q-gram profiles keyed by `(probe-side symbol, q)`.
    probe_profiles: FxHashMap<(u32, u32), QGramProfile>,
    /// Padded q-gram profiles keyed by `(master-side symbol, q)`.
    master_profiles: FxHashMap<(u32, u32), QGramProfile>,
    /// Un-cached profile slots for symbol-less rows.
    pa: QGramProfile,
    pb: QGramProfile,
    /// Memoized similarity-conjunct verdicts keyed by `(probe symbol,
    /// master symbol, conjunct identity)`: every predicate is a pure
    /// function of its two values, so distinct tuple pairs sharing them
    /// (ubiquitous in dirty data) answer without re-running a kernel.
    pairs: FxHashMap<(u32, u32, u64), bool>,
    /// The symbol-space generation the caches were filled under.
    epoch: u64,
}

impl MatchScratch {
    /// Fresh scratch with empty buffers and caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-key the symbol caches to `epoch`: a no-op when unchanged, a full
    /// cache drop when the caller's symbol space (master index build)
    /// differs from the one the caches were filled under.
    pub fn sync_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.reset();
        }
    }

    /// Drop every symbol-keyed cache unconditionally (buffer capacity is
    /// kept). The epoch guard only tracks the *master* symbol space; call
    /// this when the probe-side relation changes identity, which the epoch
    /// cannot see.
    pub fn reset(&mut self) {
        self.myers.clear();
        self.probe_patterns.clear();
        self.probe_profiles.clear();
        self.master_profiles.clear();
        self.pairs.clear();
    }

    /// Column-at-a-time `~lev` verification: compile (or reuse, keyed by
    /// `probe_sym`) the probe value's Myers pattern and sweep every
    /// `(master symbol, rendered master value)` item through it in one
    /// pass — [`MyersPattern::distance_column`] — instead of dispatching a
    /// per-master-value pattern per pair. Returns the verdict bitmap (bit
    /// `i` ⟺ `lev(probe, items[i]) ≤ max`).
    ///
    /// Every swept pair additionally seeds the pair-verdict memo under
    /// `conjunct` (see [`MdPremise::pair_key`]), so the subsequent
    /// [`Md::premise_matches_with`] verification replays the columnar
    /// verdict instead of re-running a kernel. Levenshtein is symmetric,
    /// so the flipped pattern direction (probe-compiled here vs.
    /// master-compiled in the per-value path) cannot change any verdict —
    /// the differential tests pin this.
    pub fn lev_sweep_column<I, T>(
        &mut self,
        probe_sym: Option<u32>,
        probe_value: &str,
        max: usize,
        conjunct: u64,
        items: I,
    ) -> &ColumnVerdicts
    where
        I: IntoIterator<Item = (Option<u32>, T)>,
        T: AsRef<str>,
    {
        let MatchScratch {
            sim,
            probe_patterns,
            probe_pat,
            pairs,
            column,
            seed_syms,
            ..
        } = self;
        let pat: &MyersPattern = match probe_sym {
            Some(sym) => probe_patterns
                .entry(sym)
                .or_insert_with(|| MyersPattern::new(probe_value)),
            None => {
                probe_pat.build(probe_value);
                probe_pat
            }
        };
        seed_syms.clear();
        let texts = items.into_iter().map(|(sym, text)| {
            seed_syms.push(sym);
            text
        });
        pat.distance_column(texts, max, &mut sim.edit, column);
        if let Some(ps) = probe_sym {
            for (i, ms) in seed_syms.iter().enumerate() {
                if let Some(ms) = ms {
                    pairs.insert((ps, *ms, conjunct), column.get(i));
                }
            }
        }
        column
    }

    /// The cached padded q-gram profile of the probe-side value `value`
    /// under window size `q`, keyed by the probe row's symbol. Candidate
    /// generation in the master index shares this cache with premise
    /// verification.
    pub fn probe_profile_cached(&mut self, sym: u32, q: usize, value: &str) -> &QGramProfile {
        let MatchScratch {
            sim,
            probe_profiles,
            ..
        } = self;
        probe_profiles
            .entry((sym, q as u32))
            .or_insert_with(|| QGramProfile::new_with(value, q, &mut sim.profile))
    }

    /// An un-cached profile for a symbol-less probe value, built into a
    /// reusable slot.
    pub fn probe_profile_owned(&mut self, q: usize, value: &str) -> &QGramProfile {
        self.pa.rebuild(value, q, &mut self.sim.profile);
        &self.pa
    }
}

/// Stable hash identifying a premise conjunct (attributes + predicate
/// parameters) — the third component of the pair-memo key, so one scratch
/// can serve every MD of a rule set without cross-talk.
fn premise_identity(p: &MdPremise) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write_u16(p.attr.0);
    h.write_u16(p.master_attr.0);
    match &p.pred {
        SimilarityPredicate::Equal => h.write_u8(0),
        SimilarityPredicate::Levenshtein { max } => {
            h.write_u8(1);
            h.write_usize(*max);
        }
        SimilarityPredicate::Jaro { min } => {
            h.write_u8(2);
            h.write_u64(min.to_bits());
        }
        SimilarityPredicate::JaroWinkler { min } => {
            h.write_u8(3);
            h.write_u64(min.to_bits());
        }
        SimilarityPredicate::QGramJaccard { q, min } => {
            h.write_u8(4);
            h.write_usize(*q);
            h.write_u64(min.to_bits());
        }
    }
    h.finish()
}

/// One conjunct `R[Aj] ≈j Rm[Bj]` of an MD premise.
#[derive(Clone, Debug, PartialEq)]
pub struct MdPremise {
    /// The data-side attribute `Aj`.
    pub attr: AttrId,
    /// The master-side attribute `Bj`.
    pub master_attr: AttrId,
    /// The similarity predicate `≈j`.
    pub pred: SimilarityPredicate,
}

impl MdPremise {
    /// Stable identity of this conjunct — the third component of the
    /// pair-verdict memo key. Access paths that pre-verify pairs in bulk
    /// ([`MatchScratch::lev_sweep_column`]) pass this so the seeded
    /// verdicts are found again during full premise verification.
    pub fn pair_key(&self) -> u64 {
        premise_identity(self)
    }
}

/// A positive matching dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct Md {
    name: String,
    schema: Arc<Schema>,
    master_schema: Arc<Schema>,
    premises: Vec<MdPremise>,
    /// The identified pairs `(Ei, Fi)`.
    rhs: Vec<(AttrId, AttrId)>,
}

impl Md {
    /// Build an MD. `name` is a diagnostic label (e.g. `"psi"`).
    ///
    /// # Panics
    /// Panics on an empty RHS or duplicate data-side premise attributes.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        master_schema: Arc<Schema>,
        premises: Vec<MdPremise>,
        rhs: Vec<(AttrId, AttrId)>,
    ) -> Self {
        assert!(
            !rhs.is_empty(),
            "MD must identify at least one attribute pair"
        );
        Md {
            name: name.into(),
            schema,
            master_schema,
            premises,
            rhs,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data-side schema `R`.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The master-side schema `Rm`.
    pub fn master_schema(&self) -> &Arc<Schema> {
        &self.master_schema
    }

    /// The premise conjuncts.
    pub fn premises(&self) -> &[MdPremise] {
        &self.premises
    }

    /// The identified pairs `(Ei, Fi)`.
    pub fn rhs(&self) -> &[(AttrId, AttrId)] {
        &self.rhs
    }

    /// Is the MD normalized (`|RHS| = 1`)?
    pub fn is_normalized(&self) -> bool {
        self.rhs.len() == 1
    }

    /// Data-side premise attributes `A1..Ak` (the cleaning rule's premise
    /// attributes for confidence checks).
    pub fn lhs_attrs(&self) -> Vec<AttrId> {
        self.premises.iter().map(|p| p.attr).collect()
    }

    /// Indices of the strict-equality conjuncts, in premise order — the
    /// access-path planner keys its composite hash index on exactly these
    /// (and the §3.1 confidence rule singles them out too).
    pub fn equality_premise_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.premises
            .iter()
            .enumerate()
            .filter(|(_, p)| p.pred.is_equality())
            .map(|(i, _)| i)
    }

    /// Does the premise hold between data tuple `t` and master tuple `s`?
    /// Generic over [`Row`]: the data side is usually a stored
    /// [`uniclean_model::TupleRef`], the master side a row of another
    /// relation — no tuple materialization either way.
    ///
    /// Nulls never satisfy a similarity premise — matching a data tuple with
    /// a master tuple adopts the same convention as CFD pattern matching
    /// (§7).
    pub fn premise_matches<'t, 's>(&self, t: impl Row<'t>, s: impl Row<'s>) -> bool {
        self.premises.iter().all(|p| {
            let tv = t.value(p.attr);
            let sv = s.value(p.master_attr);
            if tv.is_null() || sv.is_null() {
                return false;
            }
            p.pred.matches(&tv.render(), &sv.render())
        })
    }

    /// [`Md::premise_matches`] with caller-owned scratch: identical answers
    /// (bit for bit — the tests pin this), zero steady-state allocation,
    /// and symbol-keyed reuse of Myers pattern bitmaps and q-gram profiles
    /// across probes. This is the probe hot path of the master index.
    pub fn premise_matches_with<'t, 's>(
        &self,
        t: impl Row<'t>,
        s: impl Row<'s>,
        scratch: &mut MatchScratch,
    ) -> bool {
        // A premise is a pure conjunction, so evaluation order cannot
        // change the answer — only how fast a non-match is rejected.
        // Equality, the cached q-gram merge, and the cached Myers kernel
        // all answer in well under a microsecond; Jaro/Jaro-Winkler run an
        // O(|a|·|b|) matching pass per pair. Check the cheap conjuncts
        // first so most candidates never reach a Jaro computation.
        let is_jaro = |p: &&MdPremise| {
            matches!(
                p.pred,
                SimilarityPredicate::Jaro { .. } | SimilarityPredicate::JaroWinkler { .. }
            )
        };
        self.premises
            .iter()
            .filter(|p| !is_jaro(p))
            .all(|p| self.premise_holds_with(p, t, s, scratch))
            && self
                .premises
                .iter()
                .filter(is_jaro)
                .all(|p| self.premise_holds_with(p, t, s, scratch))
    }

    /// One conjunct of [`Md::premise_matches_with`], on the scratch's
    /// kernel caches: pair-memoized for store-backed rows, then kernel
    /// dispatch on a miss.
    fn premise_holds_with<'t, 's>(
        &self,
        p: &MdPremise,
        t: impl Row<'t>,
        s: impl Row<'s>,
        scratch: &mut MatchScratch,
    ) -> bool {
        if matches!(p.pred, SimilarityPredicate::Equal) {
            // Equality is cheaper than a memo lookup.
            return self.premise_eval(p, t, s, scratch);
        }
        match (t.sym(p.attr), s.sym(p.master_attr)) {
            (Some(ts), Some(ss)) => {
                let key = (ts.0, ss.0, premise_identity(p));
                if let Some(&verdict) = scratch.pairs.get(&key) {
                    return verdict;
                }
                let verdict = self.premise_eval(p, t, s, scratch);
                scratch.pairs.insert(key, verdict);
                verdict
            }
            _ => self.premise_eval(p, t, s, scratch),
        }
    }

    /// Kernel dispatch for one similarity conjunct (the memo-miss path of
    /// [`Md::premise_holds_with`]).
    fn premise_eval<'t, 's>(
        &self,
        p: &MdPremise,
        t: impl Row<'t>,
        s: impl Row<'s>,
        scratch: &mut MatchScratch,
    ) -> bool {
        let tv = t.value(p.attr);
        let sv = s.value(p.master_attr);
        if tv.is_null() || sv.is_null() {
            return false;
        }
        let a = tv.render();
        let b = sv.render();
        match &p.pred {
            SimilarityPredicate::Levenshtein { max } => {
                let MatchScratch { sim, myers, .. } = scratch;
                match s.sym(p.master_attr) {
                    Some(sym) => {
                        // Master values repeat across probes: build the
                        // pattern bitmaps once per distinct symbol.
                        let pat = myers.entry(sym.0).or_insert_with(|| MyersPattern::new(&b));
                        pat.distance_bounded(&a, *max, &mut sim.edit).is_some()
                    }
                    None => p.pred.matches_with(&a, &b, sim),
                }
            }
            SimilarityPredicate::QGramJaccard { q, min } => {
                let MatchScratch {
                    sim,
                    probe_profiles,
                    master_profiles,
                    pa,
                    pb,
                    ..
                } = scratch;
                let qq = *q as u32;
                let mp: &QGramProfile = match s.sym(p.master_attr) {
                    Some(sym) => master_profiles
                        .entry((sym.0, qq))
                        .or_insert_with(|| QGramProfile::new_with(&b, *q, &mut sim.profile)),
                    None => {
                        pb.rebuild(&b, *q, &mut sim.profile);
                        pb
                    }
                };
                let pp: &QGramProfile = match t.sym(p.attr) {
                    Some(sym) => probe_profiles
                        .entry((sym.0, qq))
                        .or_insert_with(|| QGramProfile::new_with(&a, *q, &mut sim.profile)),
                    None => {
                        pa.rebuild(&a, *q, &mut sim.profile);
                        pa
                    }
                };
                pp.jaccard(mp) >= *min
            }
            _ => p.pred.matches_with(&a, &b, &mut scratch.sim),
        }
    }

    /// Does the conclusion already hold (`t[Ei] = s[Fi]` for all `i`)?
    pub fn rhs_identified<'t, 's>(&self, t: impl Row<'t>, s: impl Row<'s>) -> bool {
        self.rhs.iter().all(|(e, f)| t.value(*e) == s.value(*f))
    }

    /// Would applying this MD with master tuple `s` change `t`?
    pub fn applies<'t, 's>(&self, t: impl Row<'t>, s: impl Row<'s>) -> bool {
        self.premise_matches(t, s) && !self.rhs_identified(t, s)
    }
}

impl fmt::Display for Md {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, p) in self.premises.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(
                f,
                "{}[{}] {} {}[{}]",
                self.schema.name(),
                self.schema.attr_name(p.attr),
                p.pred,
                self.master_schema.name(),
                self.master_schema.attr_name(p.master_attr),
            )?;
        }
        f.write_str(" -> ")?;
        for (i, (e, fa)) in self.rhs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(
                f,
                "{}[{}] <=> {}[{}]",
                self.schema.name(),
                self.schema.attr_name(*e),
                self.master_schema.name(),
                self.master_schema.attr_name(*fa),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Tuple, Value};

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        (
            Schema::of_strings("tran", &["FN", "LN", "city", "St", "post", "phn"]),
            Schema::of_strings("card", &["FN", "LN", "city", "St", "zip", "tel"]),
        )
    }

    /// ψ of Example 1.1: tran[LN, city, St, post] = card[LN, city, St, zip]
    /// ∧ tran[FN] ≈ card[FN] → tran[FN, phn] ⇋ card[FN, tel].
    fn psi(tran: &Arc<Schema>, card: &Arc<Schema>) -> Md {
        let eqs = [
            ("LN", "LN"),
            ("city", "city"),
            ("St", "St"),
            ("post", "zip"),
        ];
        let mut premises: Vec<MdPremise> = eqs
            .iter()
            .map(|(a, b)| MdPremise {
                attr: tran.attr_id_or_panic(a),
                master_attr: card.attr_id_or_panic(b),
                pred: SimilarityPredicate::Equal,
            })
            .collect();
        premises.push(MdPremise {
            attr: tran.attr_id_or_panic("FN"),
            master_attr: card.attr_id_or_panic("FN"),
            // "M." ≈ "Mark" needs three edits (sub + two inserts).
            pred: SimilarityPredicate::Levenshtein { max: 3 },
        });
        Md::new(
            "psi",
            tran.clone(),
            card.clone(),
            premises,
            vec![
                (tran.attr_id_or_panic("FN"), card.attr_id_or_panic("FN")),
                (tran.attr_id_or_panic("phn"), card.attr_id_or_panic("tel")),
            ],
        )
    }

    #[test]
    fn example_2_3_premise_and_application() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        // t1' (t1 with city already repaired to Ldn)… using the Edinburgh
        // variant for s1: the premise holds, the conclusion does not.
        let t1p = Tuple::of_strs(
            &["M.", "Smith", "Edi", "10 Oak St", "EH8 9LE", "9999999"],
            0.5,
        );
        let s1 = Tuple::of_strs(
            &["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3256778"],
            1.0,
        );
        assert!(md.premise_matches(&t1p, &s1));
        assert!(!md.rhs_identified(&t1p, &s1));
        assert!(md.applies(&t1p, &s1));
    }

    #[test]
    fn dissimilar_first_names_block_the_premise() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let t = Tuple::of_strs(
            &["Zebulon", "Smith", "Edi", "10 Oak St", "EH8 9LE", "1"],
            0.5,
        );
        let s = Tuple::of_strs(&["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "2"], 1.0);
        assert!(!md.premise_matches(&t, &s));
    }

    #[test]
    fn identified_rhs_means_no_application() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let t = Tuple::of_strs(
            &["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3256778"],
            0.5,
        );
        let s = Tuple::of_strs(
            &["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3256778"],
            1.0,
        );
        assert!(md.premise_matches(&t, &s));
        assert!(md.rhs_identified(&t, &s));
        assert!(!md.applies(&t, &s));
    }

    #[test]
    fn null_premise_values_never_match() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let mut t = Tuple::of_strs(&["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "1"], 0.5);
        t.set(
            tran.attr_id_or_panic("St"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let s = Tuple::of_strs(&["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "2"], 1.0);
        assert!(!md.premise_matches(&t, &s));
    }

    #[test]
    fn display_is_readable() {
        let (tran, card) = schemas();
        let text = psi(&tran, &card).to_string();
        assert!(text.contains("tran[LN] = card[LN]"));
        assert!(text.contains("tran[FN] ~lev(3) card[FN]"));
        assert!(text.contains("tran[phn] <=> card[tel]"));
    }

    #[test]
    #[should_panic(expected = "at least one attribute pair")]
    fn empty_rhs_rejected() {
        let (tran, card) = schemas();
        Md::new("bad", tran, card, vec![], vec![]);
    }

    #[test]
    fn scratch_evaluation_agrees_with_plain() {
        let (tran, card) = schemas();
        let md = psi(&tran, &card);
        let mut scratch = MatchScratch::new();
        let rows = [
            ["M.", "Smith", "Edi", "10 Oak St", "EH8 9LE", "1"],
            ["Mark", "Smith", "Edi", "10 Oak St", "EH8 9LE", "2"],
            ["Zebulon", "Smith", "Edi", "10 Oak St", "EH8 9LE", "3"],
            ["Mark", "Smyth", "Edi", "10 Oak St", "EH8 9LE", "4"],
        ];
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::of_strs(r, 1.0)).collect();
        for t in &tuples {
            for s in &tuples {
                assert_eq!(
                    md.premise_matches_with(t, s, &mut scratch),
                    md.premise_matches(t, s),
                );
            }
        }
    }
}
