//! Columnar, symbol-native cell storage — the backing of [`crate::Relation`].
//!
//! The cleaning engine reads every cell of `D` many times per fixpoint
//! round: master-index probes, MD premise checks, CFD pattern matches and
//! 2-in-1 group projections all walk cells. A row-major `Vec<Tuple>` of
//! `Cell { Value, cf, mark }` makes each of those reads chase a tuple
//! pointer and hash/compare string content. [`ColumnStore`] flips the
//! layout:
//!
//! * one dense `Vec<Symbol>` **value column per attribute**, backed by a
//!   store-owned [`ValueInterner`] — equal cell values share one symbol, so
//!   equality inside one relation is a `u32` compare and group keys hash
//!   without touching string content;
//! * parallel `Vec<f64>` confidence and `Vec<FixMark>` mark columns, so
//!   confidence sweeps (the `cRepair` seeding scan) and mark filters read
//!   contiguous memory;
//! * the interner is **append-only**: a symbol, once issued, always
//!   resolves to the same value. Derived relations (clones, schema
//!   re-labelings, delta-extended states) therefore keep their symbols
//!   meaningful — the engine pins structures keyed by symbols across
//!   incremental calls.
//!
//! Access goes through lightweight views instead of materialized tuples:
//! [`TupleRef`] (a `Copy` read view), [`TupleMut`] (a write view whose
//! `set` interns the new value), and [`CellRef`] (one attribute slot). The
//! [`Row`] trait abstracts over [`TupleRef`] and borrowed [`Tuple`]s so
//! rule evaluation works uniformly on stored rows and free-standing row
//! literals.

use crate::error::ModelError;
use crate::intern::{Symbol, ValueInterner};
use crate::pos::AttrId;
use crate::tuple::{Cell, FixMark, Tuple};
use crate::value::Value;

/// Columnar cell storage: per-attribute symbol/confidence/mark columns
/// plus the owning [`ValueInterner`].
#[derive(Clone, Debug)]
pub struct ColumnStore {
    interner: ValueInterner,
    /// Symbol of [`Value::Null`], interned at construction so null checks
    /// are symbol compares.
    null: Symbol,
    /// `syms[attr][row]` — the value column of each attribute.
    syms: Vec<Vec<Symbol>>,
    /// `cf[attr][row]` — confidence column.
    cf: Vec<Vec<f64>>,
    /// `mark[attr][row]` — fix-mark column.
    mark: Vec<Vec<FixMark>>,
    rows: usize,
}

impl ColumnStore {
    /// An empty store with `arity` columns.
    pub fn new(arity: usize) -> Self {
        let mut interner = ValueInterner::new();
        let null = interner.intern(&Value::Null);
        ColumnStore {
            interner,
            null,
            syms: vec![Vec::new(); arity],
            cf: vec![Vec::new(); arity],
            mark: vec![Vec::new(); arity],
            rows: 0,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.syms.len()
    }

    /// The store's interner (append-only: symbols never re-resolve).
    #[inline]
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// The symbol of [`Value::Null`] in this store.
    #[inline]
    pub fn null_sym(&self) -> Symbol {
        self.null
    }

    /// Intern `v` into this store's interner without storing it in any
    /// column — used to give rule constants stable symbols so pattern
    /// matching compares symbols instead of values.
    #[inline]
    pub fn ensure_interned(&mut self, v: &Value) -> Symbol {
        self.interner.intern(v)
    }

    /// The symbol at `(row, attr)`.
    #[inline]
    pub fn sym_at(&self, row: usize, a: AttrId) -> Symbol {
        self.syms[a.index()][row]
    }

    /// The value at `(row, attr)`.
    #[inline]
    pub fn value_at(&self, row: usize, a: AttrId) -> &Value {
        self.interner.resolve(self.syms[a.index()][row])
    }

    /// The confidence at `(row, attr)`.
    #[inline]
    pub fn cf_at(&self, row: usize, a: AttrId) -> f64 {
        self.cf[a.index()][row]
    }

    /// The fix mark at `(row, attr)`.
    #[inline]
    pub fn mark_at(&self, row: usize, a: AttrId) -> FixMark {
        self.mark[a.index()][row]
    }

    /// The symbol column of attribute `a`.
    #[inline]
    pub fn col_syms(&self, a: AttrId) -> &[Symbol] {
        &self.syms[a.index()]
    }

    /// The confidence column of attribute `a`.
    #[inline]
    pub fn col_cf(&self, a: AttrId) -> &[f64] {
        &self.cf[a.index()]
    }

    /// The mark column of attribute `a`.
    #[inline]
    pub fn col_marks(&self, a: AttrId) -> &[FixMark] {
        &self.mark[a.index()]
    }

    /// Overwrite the cell `(row, a)`, interning the new value.
    pub fn set(&mut self, row: usize, a: AttrId, value: Value, cf: f64, mark: FixMark) {
        let s = self.interner.intern(&value);
        self.syms[a.index()][row] = s;
        self.cf[a.index()][row] = cf;
        self.mark[a.index()][row] = mark;
    }

    /// Append one row from per-attribute `(value, cf)` pairs with
    /// [`FixMark::Untouched`] marks. The caller has verified arity.
    fn push_cells(&mut self, cells: impl Iterator<Item = (Value, f64)>) {
        let mut n = 0usize;
        for (i, (v, cf)) in cells.enumerate() {
            let s = self.interner.intern(&v);
            self.syms[i].push(s);
            self.cf[i].push(cf);
            self.mark[i].push(FixMark::Untouched);
            n += 1;
        }
        debug_assert_eq!(n, self.arity());
        self.rows += 1;
    }

    /// Append a row literal; marks are taken from the tuple's cells.
    ///
    /// # Panics
    /// Panics on arity mismatch (checked *before* touching any column, so
    /// the store can never go ragged) — [`crate::Relation::try_push`] is
    /// the typed front door.
    pub fn push_tuple(&mut self, t: Tuple) {
        assert_eq!(
            t.arity(),
            self.arity(),
            "push_tuple arity mismatch: tuple has {} cells, store has {} columns",
            t.arity(),
            self.arity()
        );
        let row = self.rows;
        for (i, c) in t.into_cells().into_iter().enumerate() {
            let s = self.interner.intern(&c.value);
            self.syms[i].push(s);
            self.cf[i].push(c.cf);
            self.mark[i].push(c.mark);
        }
        self.rows = row + 1;
    }

    /// Append a row of values with uniform confidence, without building a
    /// [`Tuple`]. Errors on arity mismatch or out-of-range confidence —
    /// the typed ingest path.
    pub fn try_push_row(
        &mut self,
        values: impl IntoIterator<Item = Value>,
        cf: f64,
    ) -> Result<(), ModelError> {
        if !(0.0..=1.0).contains(&cf) {
            return Err(ModelError::ConfidenceOutOfRange { cf });
        }
        let vals: Vec<Value> = values.into_iter().collect();
        if vals.len() != self.arity() {
            return Err(ModelError::ArityMismatch {
                row: self.rows,
                expected: self.arity(),
                found: vals.len(),
            });
        }
        self.push_cells(vals.into_iter().map(|v| (v, cf)));
        Ok(())
    }

    /// Materialize row `row` as an owned [`Tuple`].
    pub fn row_tuple(&self, row: usize) -> Tuple {
        Tuple::new(
            (0..self.arity())
                .map(|i| {
                    let a = AttrId::from(i);
                    Cell {
                        value: self.value_at(row, a).clone(),
                        cf: self.cf_at(row, a),
                        mark: self.mark_at(row, a),
                    }
                })
                .collect(),
        )
    }

    /// Approximate heap footprint in bytes: columns plus interner payload
    /// (map overhead estimated at two words per distinct value). Used by
    /// the perf bench's memory report.
    pub fn heap_bytes(&self) -> usize {
        let cols: usize = self
            .syms
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<Symbol>())
            .sum::<usize>()
            + self
                .cf
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
            + self
                .mark
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<FixMark>())
                .sum::<usize>();
        cols + self.interner.heap_bytes()
    }
}

/// Read-only view of one attribute slot: the resolved value plus its
/// symbol, confidence and mark.
#[derive(Clone, Copy, Debug)]
pub struct CellRef<'a> {
    /// The cell's current value.
    pub value: &'a Value,
    /// The value's dense symbol (meaningful relative to the owning store).
    pub sym: Symbol,
    /// Confidence in `[0, 1]`.
    pub cf: f64,
    /// Which phase last wrote the cell.
    pub mark: FixMark,
}

/// A `Copy` read view of one stored row — the columnar replacement for
/// `&Tuple`. All accessors return data borrowed from the owning
/// [`crate::Relation`], so a `TupleRef` can be passed around freely while
/// the borrow of the relation lives.
#[derive(Clone, Copy)]
pub struct TupleRef<'a> {
    pub(crate) store: &'a ColumnStore,
    pub(crate) row: usize,
}

impl<'a> TupleRef<'a> {
    /// Number of cells.
    #[inline]
    pub fn arity(self) -> usize {
        self.store.arity()
    }

    /// The value at `a` — the paper's `t[A]`.
    #[inline]
    pub fn value(self, a: AttrId) -> &'a Value {
        self.store.value_at(self.row, a)
    }

    /// The interned symbol at `a` (store-relative).
    #[inline]
    pub fn sym(self, a: AttrId) -> Symbol {
        self.store.sym_at(self.row, a)
    }

    /// The confidence at `a` — the paper's `t[A].cf`.
    #[inline]
    pub fn cf(self, a: AttrId) -> f64 {
        self.store.cf_at(self.row, a)
    }

    /// The fix mark at `a`.
    #[inline]
    pub fn mark(self, a: AttrId) -> FixMark {
        self.store.mark_at(self.row, a)
    }

    /// Is the value at `a` null? (A symbol compare — no resolution.)
    #[inline]
    pub fn is_null(self, a: AttrId) -> bool {
        self.sym(a) == self.store.null_sym()
    }

    /// One attribute slot as a [`CellRef`].
    #[inline]
    pub fn cell(self, a: AttrId) -> CellRef<'a> {
        CellRef {
            value: self.value(a),
            sym: self.sym(a),
            cf: self.cf(a),
            mark: self.mark(a),
        }
    }

    /// All cells in schema order.
    pub fn cells(self) -> impl Iterator<Item = CellRef<'a>> {
        (0..self.arity()).map(move |i| self.cell(AttrId::from(i)))
    }

    /// Project the row onto a list of attributes — the paper's `t[X]`.
    pub fn project(self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|a| self.value(*a).clone()).collect()
    }

    /// [`Self::project`] in symbol form — the hot-path group key.
    pub fn project_syms(self, attrs: &[AttrId]) -> Vec<Symbol> {
        attrs.iter().map(|a| self.sym(*a)).collect()
    }

    /// Do two rows agree (strict equality) on every attribute of `attrs`?
    pub fn agrees_with<'b>(self, other: impl Row<'b>, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.value(*a) == other.value(*a))
    }

    /// Agreement under SQL simple-null semantics ([`Value::eq_nullable`]).
    pub fn agrees_with_nullable<'b>(self, other: impl Row<'b>, attrs: &[AttrId]) -> bool {
        attrs
            .iter()
            .all(|a| self.value(*a).eq_nullable(other.value(*a)))
    }

    /// Materialize this row as an owned [`Tuple`].
    pub fn to_tuple(self) -> Tuple {
        self.store.row_tuple(self.row)
    }
}

impl std::fmt::Debug for TupleRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries((0..self.arity()).map(|i| self.value(AttrId::from(i))))
            .finish()
    }
}

/// A write view of one stored row — the columnar replacement for
/// `&mut Tuple`. Reads borrow the view; [`TupleMut::set`] interns the new
/// value into the owning store.
pub struct TupleMut<'a> {
    pub(crate) store: &'a mut ColumnStore,
    pub(crate) row: usize,
}

impl TupleMut<'_> {
    /// Number of cells.
    #[inline]
    pub fn arity(&self) -> usize {
        self.store.arity()
    }

    /// The value at `a`.
    #[inline]
    pub fn value(&self, a: AttrId) -> &Value {
        self.store.value_at(self.row, a)
    }

    /// The confidence at `a`.
    #[inline]
    pub fn cf(&self, a: AttrId) -> f64 {
        self.store.cf_at(self.row, a)
    }

    /// The fix mark at `a`.
    #[inline]
    pub fn mark(&self, a: AttrId) -> FixMark {
        self.store.mark_at(self.row, a)
    }

    /// Overwrite the value at `a`, recording confidence and fix mark.
    pub fn set(&mut self, a: AttrId, value: Value, cf: f64, mark: FixMark) {
        self.store.set(self.row, a, value, cf, mark);
    }

    /// Overwrite only the fix mark at `a` (value and confidence keep).
    pub fn set_mark(&mut self, a: AttrId, mark: FixMark) {
        self.store.mark[a.index()][self.row] = mark;
    }

    /// Overwrite only the confidence at `a`.
    pub fn set_cf(&mut self, a: AttrId, cf: f64) {
        self.store.cf[a.index()][self.row] = cf;
    }

    /// Reborrow as a read view.
    #[inline]
    pub fn as_ref(&self) -> TupleRef<'_> {
        TupleRef {
            store: self.store,
            row: self.row,
        }
    }
}

/// Read abstraction over one row of cell values: a stored row
/// ([`TupleRef`]) or a free-standing row literal (`&`[`Tuple`]). Rule
/// evaluation (CFD pattern matching, MD premises, agreement checks) is
/// generic over this trait, so it runs identically on columnar storage
/// and on plain tuples.
pub trait Row<'a>: Copy {
    /// Number of cells.
    fn arity(self) -> usize;
    /// The value at `a`.
    fn value(self, a: AttrId) -> &'a Value;

    /// The interned symbol at `a` for store-backed rows, `None` for
    /// detached rows. Symbols are relative to the *owning relation's*
    /// interner; probe-side caches key on them because equal symbols
    /// guarantee equal values within one relation.
    #[inline]
    fn sym(self, a: AttrId) -> Option<Symbol> {
        let _ = a;
        None
    }

    /// Project onto `attrs` (the paper's `t[X]`).
    fn project(self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|a| self.value(*a).clone()).collect()
    }

    /// Strict agreement on `attrs`.
    fn agrees_with<'b>(self, other: impl Row<'b>, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.value(*a) == other.value(*a))
    }

    /// Agreement under SQL simple-null semantics.
    fn agrees_with_nullable<'b>(self, other: impl Row<'b>, attrs: &[AttrId]) -> bool {
        attrs
            .iter()
            .all(|a| self.value(*a).eq_nullable(other.value(*a)))
    }
}

impl<'a> Row<'a> for TupleRef<'a> {
    #[inline]
    fn arity(self) -> usize {
        TupleRef::arity(self)
    }

    #[inline]
    fn value(self, a: AttrId) -> &'a Value {
        TupleRef::value(self, a)
    }

    #[inline]
    fn sym(self, a: AttrId) -> Option<Symbol> {
        Some(TupleRef::sym(self, a))
    }
}

impl<'a> Row<'a> for &'a Tuple {
    #[inline]
    fn arity(self) -> usize {
        Tuple::arity(self)
    }

    #[inline]
    fn value(self, a: AttrId) -> &'a Value {
        Tuple::value(self, a)
    }
}

impl<'a, R: Row<'a>> Row<'a> for &R {
    #[inline]
    fn arity(self) -> usize {
        (*self).arity()
    }

    #[inline]
    fn value(self, a: AttrId) -> &'a Value {
        (*self).value(a)
    }

    #[inline]
    fn sym(self, a: AttrId) -> Option<Symbol> {
        (*self).sym(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ColumnStore {
        let mut s = ColumnStore::new(2);
        s.try_push_row([Value::str("x"), Value::int(1)], 0.5)
            .unwrap();
        s.try_push_row([Value::str("y"), Value::int(2)], 0.25)
            .unwrap();
        s
    }

    #[test]
    fn columns_hold_pushed_rows() {
        let s = store();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.value_at(0, AttrId(0)), &Value::str("x"));
        assert_eq!(s.value_at(1, AttrId(1)), &Value::int(2));
        assert_eq!(s.cf_at(1, AttrId(0)), 0.25);
        assert_eq!(s.mark_at(0, AttrId(1)), FixMark::Untouched);
    }

    #[test]
    fn equal_values_share_a_symbol() {
        let mut s = store();
        s.try_push_row([Value::str("x"), Value::int(9)], 0.0)
            .unwrap();
        assert_eq!(s.sym_at(0, AttrId(0)), s.sym_at(2, AttrId(0)));
        assert_ne!(s.sym_at(0, AttrId(0)), s.sym_at(1, AttrId(0)));
    }

    #[test]
    fn set_interns_and_overwrites() {
        let mut s = store();
        s.set(0, AttrId(0), Value::str("y"), 0.9, FixMark::Reliable);
        assert_eq!(s.value_at(0, AttrId(0)), &Value::str("y"));
        assert_eq!(s.sym_at(0, AttrId(0)), s.sym_at(1, AttrId(0)));
        assert_eq!(s.cf_at(0, AttrId(0)), 0.9);
        assert_eq!(s.mark_at(0, AttrId(0)), FixMark::Reliable);
    }

    #[test]
    fn null_symbol_is_stable() {
        let mut s = store();
        s.set(0, AttrId(0), Value::Null, 0.0, FixMark::Possible);
        assert_eq!(s.sym_at(0, AttrId(0)), s.null_sym());
    }

    #[test]
    fn bad_rows_are_typed_errors() {
        let mut s = store();
        assert!(matches!(
            s.try_push_row([Value::str("only-one")], 0.5),
            Err(ModelError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
        assert!(matches!(
            s.try_push_row([Value::str("a"), Value::str("b")], 1.5),
            Err(ModelError::ConfidenceOutOfRange { .. })
        ));
        assert_eq!(s.rows(), 2, "failed pushes must not grow the store");
    }

    #[test]
    fn row_round_trips_through_tuple() {
        let s = store();
        let t = s.row_tuple(1);
        assert_eq!(t.value(AttrId(0)), &Value::str("y"));
        assert_eq!(t.cf(AttrId(1)), 0.25);
    }
}
