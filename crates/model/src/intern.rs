//! Value interning: dense `u32` symbols for [`Value`]s.
//!
//! The cleaning hot paths key hash tables by values and by *tuples of*
//! values — `TwoInOne` group keys are `π_Y(t)` projections, the master
//! index's exact access path maps a master column to row lists. Hashing a
//! `Value` walks string content and equality compares it again; a key of
//! several values multiplies that cost per probe. A [`ValueInterner`] maps
//! every distinct value to a dense [`Symbol`] once, after which keys are
//! small integers with trivial hashing and `==`.
//!
//! Interning never changes results: two values receive the same symbol iff
//! they are `==`, and a probe value absent from the interner cannot equal
//! any interned key (`get` returning `None` is exactly a hash-map miss).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::relation::Relation;
use crate::value::Value;

/// A fast multiply-rotate hasher (fxhash-style) for hash tables keyed by
/// [`Symbol`]s or other dense internal ids. Symbols are interner-issued —
/// never attacker-controlled — so HashDoS resistance buys nothing and
/// SipHash's per-byte cost is pure overhead on the hot paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`] — for symbol-keyed hot-path tables.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A dense identifier for an interned [`Value`]. Symbols are only
/// meaningful relative to the [`ValueInterner`] that issued them; they
/// carry no value ordering (compare resolved values for that).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index backing this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only map `Value` ↔ [`Symbol`].
///
/// ```
/// use uniclean_model::{Value, ValueInterner};
/// let mut interner = ValueInterner::new();
/// let a = interner.intern(&Value::str("Edi"));
/// let b = interner.intern(&Value::str("Edi"));
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), &Value::str("Edi"));
/// assert_eq!(interner.get(&Value::str("Ldn")), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    map: HashMap<Value, Symbol>,
    values: Vec<Value>,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        ValueInterner::default()
    }

    /// An interner pre-populated with every cell value of `r`, in row-major
    /// first-encounter order — the "at relation load" entry point. (The
    /// relation already owns an interner; this builds an independent one,
    /// e.g. to seed another store.)
    pub fn from_relation(r: &Relation) -> Self {
        let mut me = ValueInterner::new();
        for t in r.rows() {
            for a in 0..t.arity() {
                me.intern(t.value(crate::AttrId::from(a)));
            }
        }
        me
    }

    /// The symbol for `v`, interning it if unseen.
    pub fn intern(&mut self, v: &Value) -> Symbol {
        if let Some(&s) = self.map.get(v) {
            return s;
        }
        let s =
            Symbol(u32::try_from(self.values.len()).expect("more than u32::MAX distinct values"));
        self.values.push(v.clone());
        self.map.insert(v.clone(), s);
        s
    }

    /// The symbol for `v` if it has been interned.
    #[inline]
    pub fn get(&self, v: &Value) -> Option<Symbol> {
        self.map.get(v).copied()
    }

    /// The value behind `s`.
    ///
    /// # Panics
    /// Panics if `s` was issued by a different interner (index out of
    /// range).
    #[inline]
    pub fn resolve(&self, s: Symbol) -> &Value {
        &self.values[s.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in symbol order (`values()[s.index()]` is the
    /// value behind symbol `s`).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Approximate heap footprint in bytes: the value table plus the map
    /// (estimated at key + symbol + two words of bucket overhead per
    /// entry) plus owned string payloads.
    pub fn heap_bytes(&self) -> usize {
        let value_size = std::mem::size_of::<Value>();
        let string_payload: usize = self
            .values
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.len(),
                _ => 0,
            })
            .sum();
        self.values.capacity() * value_size
            + self.map.capacity() * (value_size + std::mem::size_of::<Symbol>() + 16)
            + string_payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = ValueInterner::new();
        let a = i.intern(&Value::str("x"));
        let b = i.intern(&Value::str("y"));
        let a2 = i.intern(&Value::str("x"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.index(), b.index()), (0, 1));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = ValueInterner::new();
        for v in [
            Value::str("Edi"),
            Value::int(42),
            Value::Null,
            Value::str(""),
        ] {
            let s = i.intern(&v);
            assert_eq!(i.resolve(s), &v);
        }
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn get_misses_unseen_values() {
        let mut i = ValueInterner::new();
        i.intern(&Value::str("present"));
        assert_eq!(i.get(&Value::str("absent")), None);
        assert!(i.get(&Value::str("present")).is_some());
    }

    #[test]
    fn variants_do_not_collide() {
        // `Int(1)` and `Str("1")` are distinct values and must stay so.
        let mut i = ValueInterner::new();
        let a = i.intern(&Value::int(1));
        let b = i.intern(&Value::str("1"));
        assert_ne!(a, b);
    }

    #[test]
    fn fx_hasher_distinguishes_symbol_sequences() {
        use std::hash::{Hash, Hasher};
        let h = |syms: &[Symbol]| {
            let mut hasher = FxHasher::default();
            syms.hash(&mut hasher);
            hasher.finish()
        };
        let a = h(&[Symbol(1), Symbol(2)]);
        let b = h(&[Symbol(2), Symbol(1)]);
        let c = h(&[Symbol(1), Symbol(2)]);
        assert_eq!(a, c);
        assert_ne!(a, b, "order must matter");
    }

    #[test]
    fn from_relation_covers_every_cell() {
        let s = Schema::of_strings("r", &["A", "B"]);
        let r = crate::relation::Relation::new(
            s,
            vec![
                Tuple::of_strs(&["x", "y"], 0.5),
                Tuple::of_strs(&["y", "z"], 0.5),
            ],
        );
        let i = ValueInterner::from_relation(&r);
        assert_eq!(i.len(), 3, "x, y, z");
        for v in ["x", "y", "z"] {
            assert!(i.get(&Value::str(v)).is_some());
        }
    }
}
