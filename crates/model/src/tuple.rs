//! Tuples and confidence-annotated cells.
//!
//! Every cell carries, besides its [`Value`]:
//!
//! * `cf` — the confidence placed in the accuracy of the cell (the `cf` rows
//!   of Fig. 1(b) in the paper). Confidence drives *deterministic* fixes
//!   (§5) and the repair cost model (§3.1).
//! * a [`FixMark`] — which cleaning phase last wrote the cell. "At the end
//!   of the process, fixes are marked with three distinct signs, indicating
//!   deterministic, reliable and possible" (§3.2).

use std::fmt;

use crate::error::ModelError;
use crate::pos::AttrId;
use crate::value::Value;

/// Which cleaning phase produced the current value of a cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixMark {
    /// Original value, never repaired.
    #[default]
    Untouched,
    /// Deterministic fix (confidence-based, `cRepair`, §5).
    Deterministic,
    /// Reliable fix (entropy-based, `eRepair`, §6).
    Reliable,
    /// Possible fix (heuristic, `hRepair`, §7).
    Possible,
}

impl fmt::Display for FixMark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FixMark::Untouched => "-",
            FixMark::Deterministic => "D",
            FixMark::Reliable => "R",
            FixMark::Possible => "P",
        })
    }
}

/// One attribute slot of a tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Current value.
    pub value: Value,
    /// Confidence in `[0, 1]` placed in the accuracy of the value.
    pub cf: f64,
    /// Which phase last wrote the value.
    pub mark: FixMark,
}

impl Cell {
    /// A cell with the given value and confidence, untouched by cleaning.
    pub fn new(value: Value, cf: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&cf), "confidence {cf} out of [0,1]");
        Cell {
            value,
            cf,
            mark: FixMark::Untouched,
        }
    }

    /// [`Cell::new`] with the confidence range enforced in release builds
    /// too: out-of-range (or NaN) confidence is a typed [`ModelError`],
    /// not a debug-only assertion — for producers building cells from
    /// untrusted input. The relation-side ingest paths validate
    /// equivalently: CSV via `Relation::try_push_row`, session batches via
    /// [`Tuple::validate_cf`].
    pub fn try_new(value: Value, cf: f64) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&cf) {
            return Err(ModelError::ConfidenceOutOfRange { cf });
        }
        Ok(Cell {
            value,
            cf,
            mark: FixMark::Untouched,
        })
    }

    /// A cell with default (zero) confidence.
    pub fn of(value: Value) -> Self {
        Cell::new(value, 0.0)
    }
}

/// A tuple: one cell per schema attribute, in schema order.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    cells: Vec<Cell>,
}

impl Tuple {
    /// Build a tuple from cells (must match the schema arity; the owning
    /// [`crate::Relation`] checks this on insert).
    pub fn new(cells: Vec<Cell>) -> Self {
        Tuple { cells }
    }

    /// Build a tuple of values, all with the given uniform confidence.
    pub fn from_values(values: impl IntoIterator<Item = Value>, cf: f64) -> Self {
        Tuple {
            cells: values.into_iter().map(|v| Cell::new(v, cf)).collect(),
        }
    }

    /// Build a tuple of string values with uniform confidence — the
    /// dominant shape in tests and examples.
    pub fn of_strs(values: &[&str], cf: f64) -> Self {
        Tuple::from_values(values.iter().map(Value::str), cf)
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// Immutable access to a cell.
    #[inline]
    pub fn cell(&self, a: AttrId) -> &Cell {
        &self.cells[a.index()]
    }

    /// Mutable access to a cell.
    #[inline]
    pub fn cell_mut(&mut self, a: AttrId) -> &mut Cell {
        &mut self.cells[a.index()]
    }

    /// The value at `a` — the paper's `t[A]`.
    #[inline]
    pub fn value(&self, a: AttrId) -> &Value {
        &self.cells[a.index()].value
    }

    /// The confidence at `a` — the paper's `t[A].cf`.
    #[inline]
    pub fn cf(&self, a: AttrId) -> f64 {
        self.cells[a.index()].cf
    }

    /// The fix mark at `a`.
    #[inline]
    pub fn mark(&self, a: AttrId) -> FixMark {
        self.cells[a.index()].mark
    }

    /// All cells in schema order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Consume the tuple, yielding its cells (the columnar store's intake).
    pub fn into_cells(self) -> Vec<Cell> {
        self.cells
    }

    /// Check every cell's confidence against `[0, 1]` — the release-build
    /// ingest validation for row literals that bypassed [`Cell::try_new`]
    /// (e.g. built with [`Cell::new`], whose check is debug-only).
    pub fn validate_cf(&self) -> Result<(), ModelError> {
        for c in &self.cells {
            if !(0.0..=1.0).contains(&c.cf) {
                return Err(ModelError::ConfidenceOutOfRange { cf: c.cf });
            }
        }
        Ok(())
    }

    /// Project the tuple onto a list of attributes — the paper's `t[X]`.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|a| self.value(*a).clone()).collect()
    }

    /// Do two tuples agree (strict equality) on every attribute of `attrs`?
    pub fn agrees_with(&self, other: &Tuple, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.value(*a) == other.value(*a))
    }

    /// Do two tuples agree on `attrs` under SQL simple-null semantics
    /// ([`Value::eq_nullable`])? Used once `hRepair` may have introduced
    /// nulls (§7).
    pub fn agrees_with_nullable(&self, other: &Tuple, attrs: &[AttrId]) -> bool {
        attrs
            .iter()
            .all(|a| self.value(*a).eq_nullable(other.value(*a)))
    }

    /// Overwrite the value at `a`, recording confidence and fix mark.
    pub fn set(&mut self, a: AttrId, value: Value, cf: f64, mark: FixMark) {
        let cell = &mut self.cells[a.index()];
        cell.value = value;
        cell.cf = cf;
        cell.mark = mark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AttrId {
        AttrId::from(i)
    }

    #[test]
    fn projection_matches_paper_notation() {
        let t = Tuple::of_strs(&["Mark", "Smith", "Edi"], 0.9);
        assert_eq!(
            t.project(&[a(0), a(2)]),
            vec![Value::str("Mark"), Value::str("Edi")]
        );
    }

    #[test]
    fn agreement_is_per_attribute() {
        let t1 = Tuple::of_strs(&["Bob", "Brady", "Edi"], 0.5);
        let t2 = Tuple::of_strs(&["Robert", "Brady", "Edi"], 0.5);
        assert!(t1.agrees_with(&t2, &[a(1), a(2)]));
        assert!(!t1.agrees_with(&t2, &[a(0)]));
    }

    #[test]
    fn nullable_agreement_lets_null_match() {
        let mut t1 = Tuple::of_strs(&["Bob", "Brady"], 0.5);
        let t2 = Tuple::of_strs(&["Robert", "Brady"], 0.5);
        t1.set(a(0), Value::Null, 0.0, FixMark::Possible);
        assert!(t1.agrees_with_nullable(&t2, &[a(0), a(1)]));
        assert!(!t1.agrees_with(&t2, &[a(0)]));
    }

    #[test]
    fn set_updates_value_cf_and_mark() {
        let mut t = Tuple::of_strs(&["Ldn"], 0.5);
        t.set(a(0), Value::str("Edi"), 0.8, FixMark::Deterministic);
        assert_eq!(t.value(a(0)), &Value::str("Edi"));
        assert_eq!(t.cf(a(0)), 0.8);
        assert_eq!(t.mark(a(0)), FixMark::Deterministic);
    }

    #[test]
    fn fix_marks_display_as_single_letters() {
        assert_eq!(FixMark::Untouched.to_string(), "-");
        assert_eq!(FixMark::Deterministic.to_string(), "D");
        assert_eq!(FixMark::Reliable.to_string(), "R");
        assert_eq!(FixMark::Possible.to_string(), "P");
    }

    #[test]
    fn default_mark_is_untouched() {
        let c = Cell::new(Value::str("x"), 1.0);
        assert_eq!(c.mark, FixMark::Untouched);
    }
}
