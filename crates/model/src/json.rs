//! Hand-rolled JSON values and the tuple/batch wire codecs.
//!
//! The serving layer (`uniclean-server`) speaks line-delimited JSON over
//! TCP, and this workspace deliberately carries **no external
//! dependencies** — so the model crate owns one small, strict JSON
//! implementation shared by the daemon, the CLI and the bench harness:
//!
//! * [`Json`] — an ordered JSON value tree with a recursive-descent
//!   [`Json::parse`] and a deterministic [`Json::render`] (object keys
//!   keep insertion order; `f64`s render via Rust's shortest
//!   round-trip `Display`, so a confidence travels the wire
//!   bit-exactly),
//! * codecs between JSON rows and the relational model: a wire **cell**
//!   is either a scalar value (confidence defaulted by the endpoint) or
//!   a `[value, cf]` pair on ingest, and a `[value, cf, "mark"]` triple
//!   when a repaired relation is dumped ([`tuple_from_json`],
//!   [`batch_from_json`], [`tuple_to_json`]).
//!
//! Scalars map onto [`Value`] as: JSON string → [`Value::Str`], integral
//! JSON number → [`Value::Int`], JSON `null` → [`Value::Null`].
//! Booleans and fractional numbers have no relational counterpart and are
//! rejected with a typed [`JsonError`].

use std::fmt;

use crate::error::ModelError;
use crate::pos::AttrId;
use crate::relation::Relation;
use crate::store::TupleRef;
use crate::tuple::{Cell, Tuple};
use crate::value::Value;

/// A parsed JSON value. Objects preserve insertion order (parse order /
/// push order), which keeps rendered responses and reports byte-stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (one `f64`, like the reference JS data model).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

/// Why a JSON text or a wire row was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// Malformed JSON text: byte offset and what the parser expected.
    Syntax {
        /// Byte offset of the offending input.
        pos: usize,
        /// What was wrong.
        msg: &'static str,
    },
    /// Well-formed JSON that does not fit the expected shape (wrong type,
    /// wrong arity, out-of-range confidence, …).
    Shape(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { pos, msg } => write!(f, "malformed JSON at byte {pos}: {msg}"),
            JsonError::Shape(msg) => write!(f, "unexpected JSON shape: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<ModelError> for JsonError {
    fn from(e: ModelError) -> Self {
        JsonError::Shape(e.to_string())
    }
}

impl Json {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parse one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Render as compact JSON (no whitespace). Deterministic: object keys
    /// keep their stored order, numbers use Rust's shortest round-trip
    /// `f64` display (whole numbers print without a fraction part).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The number as a non-negative 64-bit integer, if integral and
    /// exactly representable (JSON numbers are doubles, so anything past
    /// 2^53 is out regardless).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Number rendering: whole numbers in integer form, everything else via
/// Rust's shortest round-trip `f64` display (never scientific notation,
/// so the output is always valid JSON).
fn render_num(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "JSON cannot carry {n}");
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError::Syntax { pos: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate escape")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::Syntax {
                pos: start,
                msg: "number out of range",
            })
    }
}

// ---------------------------------------------------------------------------
// Tuple / batch wire codecs.
// ---------------------------------------------------------------------------

/// A [`Value`] as a wire scalar: strings as JSON strings, integers as
/// JSON numbers, null as `null`.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Int(i) => Json::Num(*i as f64),
    }
}

/// A wire scalar as a [`Value`]. Booleans and fractional numbers have no
/// relational counterpart and are rejected; integral numbers beyond the
/// exact-`f64` range (±2⁵³) are rejected rather than silently rounded.
pub fn value_from_json(j: &Json) -> Result<Value, JsonError> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Str(s) => Ok(Value::str(s)),
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 => {
            Ok(Value::int(*n as i64))
        }
        Json::Num(_) => Err(JsonError::Shape(
            "numeric cell values must be exact integers".into(),
        )),
        other => Err(JsonError::Shape(format!(
            "expected a string, integer or null cell value, got {other}"
        ))),
    }
}

/// One wire row as a [`Tuple`]. A row is an array of `arity` cells; each
/// cell is either a scalar value (confidence `default_cf`) or a
/// `[value, cf]` pair. Confidence is validated into `[0, 1]` here, so a
/// bad row is a typed error before it ever reaches the engine.
pub fn tuple_from_json(row: &Json, arity: usize, default_cf: f64) -> Result<Tuple, JsonError> {
    let cells = row
        .as_arr()
        .ok_or_else(|| JsonError::Shape(format!("expected a row array, got {row}")))?;
    if cells.len() != arity {
        return Err(JsonError::Shape(format!(
            "row has {} cells, schema has {arity}",
            cells.len()
        )));
    }
    let mut out = Vec::with_capacity(arity);
    for cell in cells {
        match cell {
            Json::Arr(pair) => {
                if pair.len() != 2 {
                    return Err(JsonError::Shape(format!(
                        "a cell pair is [value, cf]; got {} elements",
                        pair.len()
                    )));
                }
                let value = value_from_json(&pair[0])?;
                let cf = pair[1].as_f64().ok_or_else(|| {
                    JsonError::Shape(format!("cell confidence must be a number, got {}", pair[1]))
                })?;
                out.push(Cell::try_new(value, cf)?);
            }
            scalar => out.push(Cell::try_new(value_from_json(scalar)?, default_cf)?),
        }
    }
    Ok(Tuple::new(out))
}

/// A wire batch (array of rows) as tuples — the `ingest` payload codec.
pub fn batch_from_json(
    rows: &Json,
    arity: usize,
    default_cf: f64,
) -> Result<Vec<Tuple>, JsonError> {
    let rows = rows
        .as_arr()
        .ok_or_else(|| JsonError::Shape(format!("expected an array of rows, got {rows}")))?;
    rows.iter()
        .map(|row| tuple_from_json(row, arity, default_cf))
        .collect()
}

/// A decoded [`Tuple`] back to the ingest wire shape, every cell as an
/// explicit `[value, cf]` pair — the exact inverse of [`tuple_from_json`]
/// regardless of the `default_cf` in force when the batch re-decodes.
/// This is what the serving WAL records: replaying a logged batch through
/// [`batch_from_json`] reconstructs the original tuples bit-identically
/// (confidences survive via the shortest round-trip `f64` rendering).
pub fn tuple_to_ingest_json(t: &Tuple) -> Json {
    Json::Arr(
        t.cells()
            .iter()
            .map(|c| Json::Arr(vec![value_to_json(&c.value), Json::Num(c.cf)]))
            .collect(),
    )
}

/// A decoded batch back to the ingest wire shape (see
/// [`tuple_to_ingest_json`]).
pub fn batch_to_ingest_json(rows: &[Tuple]) -> Json {
    Json::Arr(rows.iter().map(tuple_to_ingest_json).collect())
}

/// One stored row as a wire row of `[value, cf, "mark"]` triples — the
/// dump codec, carrying everything the bit-identity contract pins
/// (values, exact confidences via shortest round-trip `f64` rendering,
/// and fix marks as their display letters `-`/`D`/`R`/`P`).
pub fn tuple_to_json(t: TupleRef<'_>) -> Json {
    Json::Arr(
        (0..t.arity())
            .map(|i| {
                let a = AttrId::from(i);
                Json::Arr(vec![
                    value_to_json(t.value(a)),
                    Json::Num(t.cf(a)),
                    Json::Str(t.mark(a).to_string()),
                ])
            })
            .collect(),
    )
}

/// A whole relation as wire rows (see [`tuple_to_json`]).
pub fn relation_to_json(r: &Relation) -> Json {
    Json::Arr(r.rows().map(tuple_to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::FixMark;

    #[test]
    fn parses_the_usual_shapes() {
        let j = Json::parse(r#"{"op":"ingest","rows":[["131",["Edi",0.75],null]],"n":3}"#).unwrap();
        assert_eq!(j.get("op").and_then(Json::as_str), Some("ingest"));
        assert_eq!(j.get("n").and_then(Json::as_usize), Some(3));
        let rows = j.get("rows").and_then(Json::as_arr).unwrap();
        let row = rows[0].as_arr().unwrap();
        assert_eq!(row[0], Json::str("131"));
        assert_eq!(row[1], Json::Arr(vec![Json::str("Edi"), Json::Num(0.75)]));
        assert_eq!(row[2], Json::Null);
    }

    #[test]
    fn render_parse_round_trips() {
        let j = Json::Obj(vec![
            ("s".into(), Json::str("a\"b\\c\nd\u{1F600}")),
            ("n".into(), Json::Num(0.30000000000000004)),
            ("i".into(), Json::Num(42.0)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            ("a".into(), Json::Arr(vec![Json::Num(-1.5)])),
        ]);
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
        // Whole numbers render without a fraction part.
        assert!(text.contains("\"i\":42"), "{text}");
    }

    #[test]
    fn confidences_travel_bit_exactly() {
        for cf in [0.0, 0.1, 1.0 / 3.0, 0.7, 0.9999999999999999, 1.0] {
            let text = Json::Num(cf).render();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(cf), "{text}");
        }
    }

    #[test]
    fn surrogate_pairs_and_escapes_decode() {
        let j = Json::parse(r#""😀 é \t\/""#).unwrap();
        assert_eq!(j.as_str(), Some("\u{1F600} é \t/"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn malformed_documents_report_the_offset() {
        for bad in ["{", "[1,]", "{\"a\":}", "nul", "\"x", "1 2", "01", "1.e3"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(
                matches!(err, JsonError::Syntax { .. }),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn tuple_codec_reads_scalars_and_pairs() {
        let row = Json::parse(r#"["131",["Edi",0.75],null,7]"#).unwrap();
        let t = tuple_from_json(&row, 4, 0.5).unwrap();
        assert_eq!(t.value(AttrId::from(0)), &Value::str("131"));
        assert_eq!(t.cf(AttrId::from(0)), 0.5);
        assert_eq!(t.value(AttrId::from(1)), &Value::str("Edi"));
        assert_eq!(t.cf(AttrId::from(1)), 0.75);
        assert_eq!(t.value(AttrId::from(2)), &Value::Null);
        assert_eq!(t.value(AttrId::from(3)), &Value::int(7));
    }

    #[test]
    fn tuple_codec_rejects_bad_rows() {
        let wrong_arity = Json::parse(r#"["a","b"]"#).unwrap();
        assert!(tuple_from_json(&wrong_arity, 3, 0.5).is_err());
        let bad_cf = Json::parse(r#"[["a",1.5]]"#).unwrap();
        assert!(tuple_from_json(&bad_cf, 1, 0.5).is_err());
        let bool_cell = Json::parse("[true]").unwrap();
        assert!(tuple_from_json(&bool_cell, 1, 0.5).is_err());
        let fractional = Json::parse("[1.25]").unwrap();
        assert!(tuple_from_json(&fractional, 1, 0.5).is_err());
        let not_array = Json::parse(r#""row""#).unwrap();
        assert!(tuple_from_json(&not_array, 1, 0.5).is_err());
    }

    #[test]
    fn dump_codec_round_trips_cells_exactly() {
        let s = Schema::of_strings("t", &["a", "b"]);
        let mut rel = Relation::empty(s);
        let mut t = Tuple::of_strs(&["x", "y"], 0.7);
        t.set(
            AttrId::from(1),
            Value::str("z"),
            1.0 / 3.0,
            FixMark::Reliable,
        );
        rel.push(t);
        let wire = relation_to_json(&rel).render();
        let back = Json::parse(&wire).unwrap();
        let row = back.as_arr().unwrap()[0].as_arr().unwrap();
        let cell = row[1].as_arr().unwrap();
        assert_eq!(cell[0].as_str(), Some("z"));
        assert_eq!(cell[1].as_f64(), Some(1.0 / 3.0));
        assert_eq!(cell[2].as_str(), Some("R"));
    }
}
