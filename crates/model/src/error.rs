//! Typed errors for relation and cell construction.
//!
//! Everything a data producer can get wrong — a row whose arity does not
//! match the schema, a confidence outside `[0, 1]` — surfaces as a
//! [`ModelError`] from the `try_*` constructors instead of a panic. The
//! panicking constructors (`Relation::new`, `Relation::push`) are thin
//! wrappers that `panic!` with these errors' `Display` text; ingest paths
//! (CSV, session batches) use the typed variants.

use std::fmt;

/// Why a relation or cell could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A row's arity does not match the schema's.
    ArityMismatch {
        /// 0-based index of the offending row within the input.
        row: usize,
        /// The schema arity.
        expected: usize,
        /// The row's cell count.
        found: usize,
    },
    /// A confidence value lies outside `[0, 1]` (or is NaN).
    ConfidenceOutOfRange {
        /// The offending confidence.
        cf: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ArityMismatch {
                row,
                expected,
                found,
            } => write!(
                f,
                "row {row} has arity {found} but the schema has arity {expected}"
            ),
            ModelError::ConfidenceOutOfRange { cf } => {
                write!(f, "confidence {cf} out of [0,1]")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = ModelError::ArityMismatch {
            row: 3,
            expected: 2,
            found: 5,
        };
        assert!(e.to_string().contains("arity"));
        assert!(e.to_string().contains('3'));
        let e = ModelError::ConfidenceOutOfRange { cf: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }
}
