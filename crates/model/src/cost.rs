//! The repair cost model of §3.1.
//!
//! ```text
//! cost(Dr, D) = Σ_{t ∈ D} Σ_{A ∈ attr(R)}  t[A].cf · dis_A(t[A], t'[A]) / max(|t[A]|, |t'[A]|)
//! ```
//!
//! where `t'` is the repair of `t`. "The higher the confidence of attribute
//! `t[A]` is and the more distant `v'` is from `v`, the more costly the
//! change is." The division by `max(|v|,|v'|)` makes longer strings with a
//! one-character difference closer than shorter strings with a one-character
//! difference.
//!
//! The distance `dis_A` is pluggable ([`repair_cost_with`]); the default
//! ([`value_distance`]) is character-level Levenshtein on the rendered
//! values, with `null` treated as the empty string. This module keeps a
//! small reference DP implementation; the `uniclean-similarity` crate offers
//! banded/thresholded variants for hot paths (cross-checked for agreement in
//! the workspace integration tests).

use crate::relation::Relation;
use crate::value::Value;

/// Reference Levenshtein distance between two rendered values.
///
/// `null` renders as the empty string, so replacing a value by `null` costs
/// the full length of the value — which is why `hRepair` only reaches for
/// nulls as a last resort.
pub fn value_distance(a: &Value, b: &Value) -> f64 {
    if a == b {
        return 0.0;
    }
    let sa = a.render();
    let sb = b.render();
    levenshtein_ref(&sa, &sb) as f64
}

/// Plain two-row DP Levenshtein, the reference implementation for the cost
/// model (O(|a|·|b|) time, O(min) space).
fn levenshtein_ref(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() {
        return bv.len();
    }
    if bv.is_empty() {
        return av.len();
    }
    // Keep the shorter string in the inner dimension.
    let (short, long) = if av.len() <= bv.len() {
        (&av, &bv)
    } else {
        (&bv, &av)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// The per-cell contribution to the cost: `cf · dis(v, v') / max(|v|, |v'|)`.
///
/// When both sizes are zero the values are both empty/null; any difference
/// between them is then impossible, so the contribution is 0.
pub fn cell_cost(
    cf: f64,
    original: &Value,
    repaired: &Value,
    dist: impl Fn(&Value, &Value) -> f64,
) -> f64 {
    if original == repaired {
        return 0.0;
    }
    let denom = original.size().max(repaired.size());
    if denom == 0 {
        return 0.0;
    }
    cf * dist(original, repaired) / denom as f64
}

/// `cost(Dr, D)` with a custom distance function.
///
/// # Panics
/// Panics if the two relations have different schemas or lengths — a repair
/// never adds or removes tuples.
pub fn repair_cost_with(
    original: &Relation,
    repaired: &Relation,
    dist: impl Fn(&Value, &Value) -> f64 + Copy,
) -> f64 {
    assert_eq!(
        original.schema(),
        repaired.schema(),
        "repair must preserve the schema"
    );
    assert_eq!(
        original.len(),
        repaired.len(),
        "repair must preserve the tuple count"
    );
    // Row-major accumulation, matching the §3.1 double sum exactly —
    // float addition is order-sensitive and the engine pins costs by bits.
    let mut total = 0.0;
    for (t, tr) in original.rows().zip(repaired.rows()) {
        for a in original.schema().attr_ids() {
            total += cell_cost(t.cf(a), t.value(a), tr.value(a), dist);
        }
    }
    total
}

/// `cost(Dr, D)` with the default Levenshtein distance.
pub fn repair_cost(original: &Relation, repaired: &Relation) -> f64 {
    repair_cost_with(original, repaired, value_distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::TupleId;

    #[test]
    fn levenshtein_reference_cases() {
        assert_eq!(levenshtein_ref("", ""), 0);
        assert_eq!(levenshtein_ref("abc", ""), 3);
        assert_eq!(levenshtein_ref("", "abc"), 3);
        assert_eq!(levenshtein_ref("kitten", "sitting"), 3);
        assert_eq!(levenshtein_ref("Edi", "Ldn"), 2); // E→L, d matches, i→n
        assert_eq!(levenshtein_ref("Bob", "Robert"), 4);
        assert_eq!(levenshtein_ref("flaw", "lawn"), 2);
    }

    #[test]
    fn identical_relations_cost_zero() {
        let schema = Schema::of_strings("r", &["A"]);
        let d = Relation::new(schema, vec![Tuple::of_strs(&["abc"], 1.0)]);
        assert_eq!(repair_cost(&d, &d), 0.0);
    }

    #[test]
    fn cost_scales_with_confidence() {
        let schema = Schema::of_strings("r", &["A"]);
        let lo = Relation::new(schema.clone(), vec![Tuple::of_strs(&["abcd"], 0.25)]);
        let hi = Relation::new(schema.clone(), vec![Tuple::of_strs(&["abcd"], 1.0)]);
        let mut rep = Relation::new(schema.clone(), vec![Tuple::of_strs(&["abcx"], 0.25)]);
        let a = schema.attr_id("A").unwrap();
        rep.tuple_mut(TupleId(0))
            .set(a, Value::str("abcx"), 1.0, Default::default());
        // One substitution in a 4-char string: dis/max = 1/4.
        assert!((repair_cost(&lo, &rep) - 0.25 * 0.25).abs() < 1e-12);
        assert!((repair_cost(&hi, &rep) - 1.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn longer_strings_with_one_edit_are_cheaper() {
        let schema = Schema::of_strings("r", &["A"]);
        let short = Relation::new(schema.clone(), vec![Tuple::of_strs(&["ab"], 1.0)]);
        let short_rep = Relation::new(schema.clone(), vec![Tuple::of_strs(&["ax"], 1.0)]);
        let long = Relation::new(schema.clone(), vec![Tuple::of_strs(&["abcdefgh"], 1.0)]);
        let long_rep = Relation::new(schema, vec![Tuple::of_strs(&["abcdefgx"], 1.0)]);
        assert!(repair_cost(&long, &long_rep) < repair_cost(&short, &short_rep));
    }

    #[test]
    fn null_repair_costs_full_length() {
        let schema = Schema::of_strings("r", &["A"]);
        let d = Relation::new(schema.clone(), vec![Tuple::of_strs(&["abcd"], 1.0)]);
        let mut rep = d.clone();
        let a = schema.attr_id("A").unwrap();
        rep.tuple_mut(TupleId(0))
            .set(a, Value::Null, 0.0, Default::default());
        // dis("abcd", "") = 4, max size = 4 → normalized 1.0.
        assert!((repair_cost(&d, &rep) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_confidence_changes_are_free() {
        let schema = Schema::of_strings("r", &["A"]);
        let d = Relation::new(schema.clone(), vec![Tuple::of_strs(&["abcd"], 0.0)]);
        let rep = Relation::new(schema, vec![Tuple::of_strs(&["zzzz"], 0.0)]);
        assert_eq!(repair_cost(&d, &rep), 0.0);
    }

    #[test]
    #[should_panic(expected = "tuple count")]
    fn length_mismatch_panics() {
        let schema = Schema::of_strings("r", &["A"]);
        let d = Relation::new(schema.clone(), vec![Tuple::of_strs(&["a"], 1.0)]);
        let rep = Relation::new(schema, vec![]);
        repair_cost(&d, &rep);
    }

    #[test]
    fn custom_distance_is_used() {
        let schema = Schema::of_strings("r", &["A"]);
        let d = Relation::new(schema.clone(), vec![Tuple::of_strs(&["ab"], 1.0)]);
        let rep = Relation::new(schema, vec![Tuple::of_strs(&["cd"], 1.0)]);
        // Constant distance 10 over max-size 2 → 5.
        let c = repair_cost_with(&d, &rep, |_, _| 10.0);
        assert!((c - 5.0).abs() < 1e-12);
    }
}
