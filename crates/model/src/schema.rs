//! Relation schemas.
//!
//! A [`Schema`] names a relation and its attributes, mirroring the paper's
//! `R(A1, …, An)` notation — e.g. the running example's
//! `tran(FN, LN, St, city, AC, post, phn, gd, item, when, where)`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::pos::AttrId;

/// Declared type of an attribute domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Free text.
    Str,
    /// 64-bit integers.
    Int,
}

/// A single attribute declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name, unique within the schema (case-sensitive).
    pub name: String,
    /// Domain type.
    pub ty: ValueType,
}

/// A relation schema: a relation name plus an ordered list of attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<AttrDef>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema from `(attribute name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name — schemas are static
    /// configuration, so a duplicate is a programming error, not a runtime
    /// condition.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = (impl Into<String>, ValueType)>,
    ) -> Self {
        let name = name.into();
        let attrs: Vec<AttrDef> = attrs
            .into_iter()
            .map(|(n, ty)| AttrDef { name: n.into(), ty })
            .collect();
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            let prev = by_name.insert(a.name.clone(), AttrId::from(i));
            assert!(
                prev.is_none(),
                "duplicate attribute `{}` in schema `{}`",
                a.name,
                name
            );
        }
        Schema {
            name,
            attrs,
            by_name,
        }
    }

    /// Convenience constructor: every attribute is a string.
    pub fn of_strings(name: impl Into<String>, attrs: &[&str]) -> Arc<Self> {
        Arc::new(Self::new(name, attrs.iter().map(|a| (*a, ValueType::Str))))
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (`|attr(R)|`).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute declaration by position.
    pub fn attr(&self, id: AttrId) -> &AttrDef {
        &self.attrs[id.index()]
    }

    /// All attribute declarations, in schema order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// All attribute ids, in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len()).map(AttrId::from)
    }

    /// Look an attribute up by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Look an attribute up by name, panicking with a diagnostic when absent.
    ///
    /// Rule construction in tests and generators uses this heavily; the
    /// panic message lists the valid names so a typo is immediately obvious.
    pub fn attr_id_or_panic(&self, name: &str) -> AttrId {
        self.attr_id(name).unwrap_or_else(|| {
            panic!(
                "schema `{}` has no attribute `{}` (attributes: {})",
                self.name,
                name,
                self.attrs
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }

    /// Name of an attribute by id.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Resolve a list of attribute names to ids, failing on the first
    /// unknown name.
    pub fn resolve(&self, names: &[&str]) -> Result<Vec<AttrId>, String> {
        names
            .iter()
            .map(|n| {
                self.attr_id(n)
                    .ok_or_else(|| format!("schema `{}` has no attribute `{}`", self.name, n))
            })
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&a.name)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tran() -> Schema {
        Schema::new(
            "tran",
            [
                ("FN", ValueType::Str),
                ("LN", ValueType::Str),
                ("city", ValueType::Str),
                ("AC", ValueType::Str),
            ],
        )
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let s = tran();
        let city = s.attr_id("city").unwrap();
        assert_eq!(s.attr_name(city), "city");
        assert_eq!(s.attr(city).ty, ValueType::Str);
    }

    #[test]
    fn unknown_attribute_is_none() {
        assert!(tran().attr_id("zip").is_none());
    }

    #[test]
    #[should_panic(expected = "no attribute `zip`")]
    fn or_panic_lists_context() {
        tran().attr_id_or_panic("zip");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attributes_rejected() {
        Schema::new("r", [("A", ValueType::Str), ("A", ValueType::Str)]);
    }

    #[test]
    fn resolve_reports_first_unknown() {
        let s = tran();
        let ok = s.resolve(&["FN", "city"]).unwrap();
        assert_eq!(ok.len(), 2);
        let err = s.resolve(&["FN", "bogus"]).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn display_is_paper_notation() {
        assert_eq!(tran().to_string(), "tran(FN, LN, city, AC)");
    }

    #[test]
    fn attr_ids_iterate_in_order() {
        let s = tran();
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(s.attr_name(ids[0]), "FN");
        assert_eq!(s.attr_name(ids[3]), "AC");
    }
}
