//! Length-prefixed, checksummed log frames — the on-disk codec under the
//! serving layer's write-ahead log and snapshot files.
//!
//! A frame is `[len: u32 LE][checksum: u64 LE][payload: len bytes]` where
//! `checksum = fnv1a64(payload)`. The format is deliberately dumb: no
//! compression, no escape sequences, no alignment — so a reader can
//! always decide, byte-exactly, where the valid prefix of a log ends.
//! Everything after the first frame that is truncated (fewer bytes than
//! the header promises) or corrupt (checksum mismatch) is a **torn
//! tail**: the writer died mid-append, or the storage scribbled on the
//! file. Recovery keeps the valid prefix and discards the tail.
//!
//! The checksum is the same 64-bit FNV-1a the workspace already uses for
//! deterministic hashing ([`crate::FxHasher`] is a sibling); it is an
//! integrity check against torn writes and bit rot, not an
//! authentication code.

/// Bytes of frame header: `u32` payload length + `u64` payload checksum.
pub const FRAME_HEADER_LEN: usize = 12;

/// Frames longer than this are rejected as corrupt rather than believed:
/// a flipped bit in the length field must not convince a reader that a
/// gigabyte of garbage is one frame. 256 MiB comfortably exceeds any
/// batch or snapshot this system writes.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// 64-bit FNV-1a over a byte slice (offset basis / prime per the spec).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append one encoded frame for `payload` onto `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a scan stopped before the end of the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornKind {
    /// Fewer bytes than one header needs.
    TruncatedHeader,
    /// The header promises more payload bytes than remain.
    TruncatedPayload,
    /// The payload is all there but its checksum does not match.
    BadChecksum,
    /// The length field exceeds [`MAX_FRAME_LEN`].
    ImplausibleLength,
}

/// A torn tail: everything from `offset` on is invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first invalid frame (= length of the valid
    /// prefix).
    pub offset: usize,
    /// What was wrong at `offset`.
    pub kind: TornKind,
}

/// Iterator over the valid frame prefix of a byte buffer.
///
/// `next_frame` yields payload slices until the buffer ends cleanly or a
/// torn tail is hit; afterwards [`FrameScan::valid_len`] is the byte
/// length of the valid prefix and [`FrameScan::torn`] reports the tail,
/// if any.
pub struct FrameScan<'a> {
    bytes: &'a [u8],
    pos: usize,
    torn: Option<TornTail>,
}

impl<'a> FrameScan<'a> {
    /// Scan `bytes` from the start.
    pub fn new(bytes: &'a [u8]) -> FrameScan<'a> {
        FrameScan {
            bytes,
            pos: 0,
            torn: None,
        }
    }

    /// The next valid frame payload, or `None` at clean EOF / torn tail.
    #[allow(clippy::should_implement_trait)] // borrows from self's buffer
    pub fn next_frame(&mut self) -> Option<&'a [u8]> {
        if self.torn.is_some() || self.pos == self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        if rest.len() < FRAME_HEADER_LEN {
            self.torn = Some(TornTail {
                offset: self.pos,
                kind: TornKind::TruncatedHeader,
            });
            return None;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            self.torn = Some(TornTail {
                offset: self.pos,
                kind: TornKind::ImplausibleLength,
            });
            return None;
        }
        let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        if rest.len() < FRAME_HEADER_LEN + len {
            self.torn = Some(TornTail {
                offset: self.pos,
                kind: TornKind::TruncatedPayload,
            });
            return None;
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        if fnv1a64(payload) != sum {
            self.torn = Some(TornTail {
                offset: self.pos,
                kind: TornKind::BadChecksum,
            });
            return None;
        }
        self.pos += FRAME_HEADER_LEN + len;
        Some(payload)
    }

    /// Bytes consumed by valid frames so far (after a full scan: the
    /// length recovery should truncate the file to).
    pub fn valid_len(&self) -> usize {
        self.pos
    }

    /// The torn tail, if the scan hit one.
    pub fn torn(&self) -> Option<TornTail> {
        self.torn
    }
}

/// Scan a whole buffer: `(payloads, torn)` where `payloads` are the valid
/// prefix frames in order and `torn` reports the tail, if any.
pub fn scan_frames(bytes: &[u8]) -> (Vec<&[u8]>, Option<TornTail>) {
    let mut scan = FrameScan::new(bytes);
    let mut out = Vec::new();
    while let Some(p) = scan.next_frame() {
        out.push(p);
    }
    (out, scan.torn())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            encode_frame(p, &mut buf);
        }
        buf
    }

    #[test]
    fn round_trips_multiple_frames() {
        let buf = log_of(&[b"alpha", b"", b"a longer frame payload \xf0\x9f\x8e\x89"]);
        let (frames, torn) = scan_frames(&buf);
        assert_eq!(torn, None);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"alpha");
        assert_eq!(frames[1], b"");
        assert!(frames[2].starts_with(b"a longer"));
    }

    #[test]
    fn truncation_yields_the_valid_prefix() {
        let buf = log_of(&[b"one", b"two", b"three"]);
        let boundaries = [
            0,
            FRAME_HEADER_LEN + 3,
            2 * (FRAME_HEADER_LEN + 3),
            2 * (FRAME_HEADER_LEN + 3) + FRAME_HEADER_LEN + 5,
        ];
        // Cut at every possible byte length; the valid prefix must be a
        // whole number of leading frames, never a partial or later one.
        for cut in 0..=buf.len() {
            let (frames, torn) = scan_frames(&buf[..cut]);
            let whole = [b"one".as_slice(), b"two".as_slice(), b"three".as_slice()];
            assert!(frames.len() <= 3);
            assert_eq!(&whole[..frames.len()], frames.as_slice(), "cut={cut}");
            if boundaries.contains(&cut) {
                // A cut exactly between frames is clean EOF, not a tear.
                assert!(torn.is_none(), "cut={cut}");
            } else {
                assert!(torn.is_some(), "cut={cut}");
            }
            let mut scan = FrameScan::new(&buf[..cut]);
            while scan.next_frame().is_some() {}
            let valid = scan.valid_len();
            // Re-scanning the reported valid prefix is clean.
            let (again, torn2) = scan_frames(&buf[..valid]);
            assert_eq!(again.len(), frames.len());
            assert!(torn2.is_none());
        }
    }

    #[test]
    fn corruption_anywhere_stops_the_scan_at_that_frame() {
        let buf = log_of(&[b"one", b"two", b"three"]);
        let bounds = [
            0,
            FRAME_HEADER_LEN + 3,
            2 * (FRAME_HEADER_LEN + 3),
            2 * (FRAME_HEADER_LEN + 3) + FRAME_HEADER_LEN + 5,
        ];
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            let (frames, torn) = scan_frames(&bad);
            // The frame containing the flipped byte is the first invalid
            // one (a length-field flip may also report Implausible or
            // Truncated — either way the scan stops there).
            let hit = bounds[1..].iter().position(|&b| pos < b).unwrap();
            assert_eq!(frames.len(), hit, "pos={pos}");
            let t = torn.expect("corruption must report a torn tail");
            assert_eq!(t.offset, bounds[hit], "pos={pos}");
        }
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let (frames, torn) = scan_frames(&buf);
        assert!(frames.is_empty());
        assert_eq!(torn.unwrap().kind, TornKind::ImplausibleLength);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Spec vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
