//! Index newtypes identifying tuples within a relation and attributes within
//! a schema.
//!
//! Using newtypes instead of bare `usize` prevents the classic bug of mixing
//! a tuple index into an attribute table (and vice versa), which matters in
//! the cleaning algorithms where both kinds of index flow through the same
//! queues and hash tables.

use std::fmt;

/// Position of a tuple inside a [`crate::Relation`].
///
/// Tuple ids are dense: the `i`-th tuple of a relation has id `TupleId(i)`.
/// They stay stable across cell updates (UniClean never inserts or deletes
/// tuples, it only modifies attribute values — §3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u32);

/// Position of an attribute inside a [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl TupleId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for TupleId {
    #[inline]
    fn from(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "tuple index overflows u32");
        TupleId(i as u32)
    }
}

impl From<usize> for AttrId {
    #[inline]
    fn from(i: usize) -> Self {
        debug_assert!(i <= u16::MAX as usize, "attribute index overflows u16");
        AttrId(i as u16)
    }
}

impl fmt::Debug for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_id_roundtrip() {
        let t = TupleId::from(42usize);
        assert_eq!(t.index(), 42);
        assert_eq!(format!("{t}"), "t42");
        assert_eq!(format!("{t:?}"), "t42");
    }

    #[test]
    fn attr_id_roundtrip() {
        let a = AttrId::from(7usize);
        assert_eq!(a.index(), 7);
        assert_eq!(format!("{a}"), "A7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(TupleId(1) < TupleId(2));
        assert!(AttrId(0) < AttrId(3));
    }
}
