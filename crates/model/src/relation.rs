//! Relations: instances of a schema.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::pos::{AttrId, TupleId};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// An instance `D` of a schema `R`: an ordered bag of tuples.
///
/// Order is meaningful only as identity — `TupleId(i)` names the `i`-th
/// tuple — and is stable under cleaning, which never inserts or removes
/// tuples.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty instance of `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Build an instance from tuples.
    ///
    /// # Panics
    /// Panics if any tuple's arity does not match the schema.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(
                t.arity(),
                schema.arity(),
                "tuple {i} has arity {} but schema `{}` has arity {}",
                t.arity(),
                schema.name(),
                schema.arity()
            );
        }
        Relation { schema, tuples }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples, `|D|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple, returning its id.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, t: Tuple) -> TupleId {
        assert_eq!(t.arity(), self.schema.arity(), "tuple arity mismatch");
        let id = TupleId::from(self.tuples.len());
        self.tuples.push(t);
        id
    }

    /// Immutable access by id.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// Mutable access by id.
    #[inline]
    pub fn tuple_mut(&mut self, id: TupleId) -> &mut Tuple {
        &mut self.tuples[id.index()]
    }

    /// All tuples in id order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access to all tuples.
    pub fn tuples_mut(&mut self) -> &mut [Tuple] {
        &mut self.tuples
    }

    /// Iterate `(id, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId::from(i), t))
    }

    /// All tuple ids.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.tuples.len()).map(TupleId::from)
    }

    /// The active domain `adom(A)` of attribute `A`: the set of distinct
    /// values appearing in column `A`, sorted. Nulls are excluded — they
    /// denote absence, not a domain element.
    pub fn active_domain(&self, a: AttrId) -> Vec<Value> {
        let set: BTreeSet<Value> = self
            .tuples
            .iter()
            .map(|t| t.value(a).clone())
            .filter(|v| !v.is_null())
            .collect();
        set.into_iter().collect()
    }

    /// Project the whole relation onto `attrs` (the paper's `π_attrs(D)`),
    /// preserving duplicates and order.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Vec<Value>> {
        self.tuples.iter().map(|t| t.project(attrs)).collect()
    }

    /// Count cells (tuples × attributes); the `k` of §7's termination bound.
    pub fn cell_count(&self) -> usize {
        self.tuples.len() * self.schema.arity()
    }

    /// Total number of cells whose value differs from `other` (strict
    /// equality, position-wise). A convenience for tests and metrics;
    /// requires equal schemas and lengths.
    pub fn diff_cells(&self, other: &Relation) -> usize {
        assert_eq!(
            self.schema, other.schema,
            "diff_cells requires identical schemas"
        );
        assert_eq!(
            self.len(),
            other.len(),
            "diff_cells requires equal tuple counts"
        );
        let mut n = 0;
        for (a, b) in self.tuples.iter().zip(other.tuples.iter()) {
            for (ca, cb) in a.cells().iter().zip(b.cells().iter()) {
                if ca.value != cb.value {
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let schema = Schema::of_strings("r", &["A", "B"]);
        Relation::new(
            schema,
            vec![
                Tuple::of_strs(&["x", "1"], 0.5),
                Tuple::of_strs(&["y", "1"], 0.5),
                Tuple::of_strs(&["x", "2"], 0.5),
            ],
        )
    }

    #[test]
    fn active_domain_is_sorted_distinct() {
        let r = rel();
        let a = r.schema().attr_id("A").unwrap();
        assert_eq!(r.active_domain(a), vec![Value::str("x"), Value::str("y")]);
    }

    #[test]
    fn active_domain_excludes_null() {
        let mut r = rel();
        let a = r.schema().attr_id("A").unwrap();
        r.tuple_mut(TupleId(0))
            .set(a, Value::Null, 0.0, Default::default());
        assert_eq!(r.active_domain(a), vec![Value::str("x"), Value::str("y")]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let schema = Schema::of_strings("r", &["A", "B"]);
        Relation::new(schema, vec![Tuple::of_strs(&["only-one"], 0.5)]);
    }

    #[test]
    fn diff_cells_counts_changed_positions() {
        let r1 = rel();
        let mut r2 = rel();
        let b = r2.schema().attr_id("B").unwrap();
        r2.tuple_mut(TupleId(2))
            .set(b, Value::str("9"), 1.0, Default::default());
        assert_eq!(r1.diff_cells(&r2), 1);
        assert_eq!(r1.diff_cells(&r1), 0);
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut r = Relation::empty(Schema::of_strings("r", &["A"]));
        let t0 = r.push(Tuple::of_strs(&["v"], 0.0));
        let t1 = r.push(Tuple::of_strs(&["w"], 0.0));
        assert_eq!(t0, TupleId(0));
        assert_eq!(t1, TupleId(1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iter_pairs_ids_with_tuples() {
        let r = rel();
        let collected: Vec<_> = r
            .iter()
            .map(|(id, t)| (id.index(), t.value(AttrId(0)).clone()))
            .collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (1, Value::str("y")));
    }
}
