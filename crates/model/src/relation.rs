//! Relations: instances of a schema, stored columnar.
//!
//! A [`Relation`] is a thin schema wrapper over a [`ColumnStore`]: one
//! interned symbol column per attribute plus parallel confidence and mark
//! columns (see [`crate::store`] for the layout rationale). Row access goes
//! through the [`TupleRef`]/[`TupleMut`] views; [`Tuple`] remains the owned
//! row *literal* used to feed rows in (construction, CSV ingest, session
//! batches) and to carry rows across relations.

use std::sync::Arc;

use crate::error::ModelError;
use crate::intern::{Symbol, ValueInterner};
use crate::pos::{AttrId, TupleId};
use crate::schema::Schema;
use crate::store::{ColumnStore, TupleMut, TupleRef};
use crate::tuple::{FixMark, Tuple};
use crate::value::Value;

/// An instance `D` of a schema `R`: an ordered bag of tuples.
///
/// Order is meaningful only as identity — `TupleId(i)` names the `i`-th
/// tuple — and is stable under cleaning, which never inserts or removes
/// tuples.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Arc<Schema>,
    store: ColumnStore,
}

impl Relation {
    /// An empty instance of `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let store = ColumnStore::new(schema.arity());
        Relation { schema, store }
    }

    /// Build an instance from row literals.
    ///
    /// # Panics
    /// Panics if any tuple's arity does not match the schema — see
    /// [`Relation::try_new`] for the typed variant.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        Relation::try_new(schema, tuples).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build an instance from row literals, reporting arity mismatches as
    /// typed [`ModelError`]s instead of panicking.
    pub fn try_new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self, ModelError> {
        let mut rel = Relation::empty(schema);
        for (i, t) in tuples.into_iter().enumerate() {
            if t.arity() != rel.schema.arity() {
                return Err(ModelError::ArityMismatch {
                    row: i,
                    expected: rel.schema.arity(),
                    found: t.arity(),
                });
            }
            rel.store.push_tuple(t);
        }
        Ok(rel)
    }

    /// Re-label `like`'s data under another schema of the same arity —
    /// the self-snapshot path ("render the data into the MDs' master
    /// schema") — sharing the columnar store by clone, without
    /// materializing a single row tuple.
    ///
    /// # Panics
    /// Panics if the arities differ.
    pub fn with_schema(schema: Arc<Schema>, like: &Relation) -> Self {
        assert_eq!(
            schema.arity(),
            like.schema.arity(),
            "with_schema requires equal arity"
        );
        Relation {
            schema,
            store: like.store.clone(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The columnar store backing this relation.
    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    /// Number of tuples, `|D|`.
    pub fn len(&self) -> usize {
        self.store.rows()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.store.rows() == 0
    }

    /// Append a row literal, returning its id.
    ///
    /// # Panics
    /// Panics on arity mismatch — see [`Relation::try_push`].
    pub fn push(&mut self, t: Tuple) -> TupleId {
        self.try_push(t)
            .unwrap_or_else(|e| panic!("tuple arity mismatch: {e}"))
    }

    /// Append a row literal, reporting arity mismatches as typed errors.
    pub fn try_push(&mut self, t: Tuple) -> Result<TupleId, ModelError> {
        if t.arity() != self.schema.arity() {
            return Err(ModelError::ArityMismatch {
                row: self.len(),
                expected: self.schema.arity(),
                found: t.arity(),
            });
        }
        let id = TupleId::from(self.len());
        self.store.push_tuple(t);
        Ok(id)
    }

    /// Append a row of values with uniform confidence straight into the
    /// columns — the ingest path (CSV, generators) that never materializes
    /// a [`Tuple`]. Validates arity and confidence.
    pub fn try_push_row(
        &mut self,
        values: impl IntoIterator<Item = Value>,
        cf: f64,
    ) -> Result<TupleId, ModelError> {
        let id = TupleId::from(self.len());
        self.store.try_push_row(values, cf)?;
        Ok(id)
    }

    /// Immutable row view by id.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> TupleRef<'_> {
        debug_assert!(id.index() < self.len());
        TupleRef {
            store: &self.store,
            row: id.index(),
        }
    }

    /// Mutable row view by id.
    #[inline]
    pub fn tuple_mut(&mut self, id: TupleId) -> TupleMut<'_> {
        debug_assert!(id.index() < self.len());
        TupleMut {
            store: &mut self.store,
            row: id.index(),
        }
    }

    /// Overwrite one cell, recording confidence and fix mark (shorthand
    /// for `tuple_mut(t).set(..)`).
    #[inline]
    pub fn set(&mut self, t: TupleId, a: AttrId, value: Value, cf: f64, mark: FixMark) {
        self.store.set(t.index(), a, value, cf, mark);
    }

    /// All row views in id order.
    pub fn rows(&self) -> impl Iterator<Item = TupleRef<'_>> {
        (0..self.len()).map(move |row| TupleRef {
            store: &self.store,
            row,
        })
    }

    /// Materialize every row as an owned [`Tuple`] (id order) — the
    /// escape hatch for callers that need rows detached from the store.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len()).map(|r| self.store.row_tuple(r)).collect()
    }

    /// Iterate `(id, row view)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, TupleRef<'_>)> {
        self.rows().enumerate().map(|(i, t)| (TupleId::from(i), t))
    }

    /// All tuple ids.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.len()).map(TupleId::from)
    }

    // -----------------------------------------------------------------
    // Symbol-native surface.
    // -----------------------------------------------------------------

    /// The relation-owned interner. Append-only: a symbol, once issued,
    /// always resolves to the same value, including across clones and
    /// incremental extension.
    #[inline]
    pub fn interner(&self) -> &ValueInterner {
        self.store.interner()
    }

    /// The symbol of [`Value::Null`] in this relation's interner.
    #[inline]
    pub fn null_sym(&self) -> Symbol {
        self.store.null_sym()
    }

    /// The interned symbol at `(t, a)`.
    #[inline]
    pub fn sym(&self, t: TupleId, a: AttrId) -> Symbol {
        self.store.sym_at(t.index(), a)
    }

    /// The confidence at `(t, a)` (column read, no view construction).
    #[inline]
    pub fn cf(&self, t: TupleId, a: AttrId) -> f64 {
        self.store.cf_at(t.index(), a)
    }

    /// Intern `v` without storing it — gives rule constants a stable
    /// symbol so pattern matching can compare symbols. A no-op when `v`
    /// was already interned.
    #[inline]
    pub fn ensure_interned(&mut self, v: &Value) -> Symbol {
        self.store.ensure_interned(v)
    }

    /// The symbol column of attribute `a` (for columnar scans).
    #[inline]
    pub fn col_syms(&self, a: AttrId) -> &[Symbol] {
        self.store.col_syms(a)
    }

    /// The confidence column of attribute `a`.
    #[inline]
    pub fn col_cf(&self, a: AttrId) -> &[f64] {
        self.store.col_cf(a)
    }

    /// The mark column of attribute `a`.
    #[inline]
    pub fn col_marks(&self, a: AttrId) -> &[FixMark] {
        self.store.col_marks(a)
    }

    /// Approximate heap footprint of the store in bytes (bench telemetry).
    pub fn heap_bytes(&self) -> usize {
        self.store.heap_bytes()
    }

    // -----------------------------------------------------------------
    // Whole-relation operations.
    // -----------------------------------------------------------------

    /// The active domain `adom(A)` of attribute `A`: the set of distinct
    /// values appearing in column `A`, sorted. Nulls are excluded — they
    /// denote absence, not a domain element. Distinctness is computed on
    /// symbols (exact), then resolved and sorted.
    pub fn active_domain(&self, a: AttrId) -> Vec<Value> {
        let mut seen: Vec<Symbol> = self.store.col_syms(a).to_vec();
        seen.sort_unstable();
        seen.dedup();
        let null = self.null_sym();
        let mut vals: Vec<Value> = seen
            .into_iter()
            .filter(|&s| s != null)
            .map(|s| self.interner().resolve(s).clone())
            .collect();
        vals.sort();
        vals
    }

    /// Project the whole relation onto `attrs` (the paper's `π_attrs(D)`),
    /// preserving duplicates and order.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Vec<Value>> {
        self.rows().map(|t| t.project(attrs)).collect()
    }

    /// Count cells (tuples × attributes); the `k` of §7's termination bound.
    pub fn cell_count(&self) -> usize {
        self.len() * self.schema.arity()
    }

    /// Total number of cells whose value differs from `other` (strict
    /// equality, position-wise). A convenience for tests and metrics;
    /// requires equal schemas and lengths.
    pub fn diff_cells(&self, other: &Relation) -> usize {
        assert_eq!(
            self.schema, other.schema,
            "diff_cells requires identical schemas"
        );
        assert_eq!(
            self.len(),
            other.len(),
            "diff_cells requires equal tuple counts"
        );
        let mut n = 0;
        for a in self.schema.attr_ids() {
            for (sa, sb) in self.store.col_syms(a).iter().zip(other.store.col_syms(a)) {
                if self.interner().resolve(*sa) != other.interner().resolve(*sb) {
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let schema = Schema::of_strings("r", &["A", "B"]);
        Relation::new(
            schema,
            vec![
                Tuple::of_strs(&["x", "1"], 0.5),
                Tuple::of_strs(&["y", "1"], 0.5),
                Tuple::of_strs(&["x", "2"], 0.5),
            ],
        )
    }

    #[test]
    fn active_domain_is_sorted_distinct() {
        let r = rel();
        let a = r.schema().attr_id("A").unwrap();
        assert_eq!(r.active_domain(a), vec![Value::str("x"), Value::str("y")]);
    }

    #[test]
    fn active_domain_excludes_null() {
        let mut r = rel();
        let a = r.schema().attr_id("A").unwrap();
        r.tuple_mut(TupleId(0))
            .set(a, Value::Null, 0.0, Default::default());
        assert_eq!(r.active_domain(a), vec![Value::str("x"), Value::str("y")]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let schema = Schema::of_strings("r", &["A", "B"]);
        Relation::new(schema, vec![Tuple::of_strs(&["only-one"], 0.5)]);
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let schema = Schema::of_strings("r", &["A", "B"]);
        let err = Relation::try_new(schema.clone(), vec![Tuple::of_strs(&["only-one"], 0.5)])
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::ArityMismatch {
                row: 0,
                expected: 2,
                found: 1
            }
        );
        let mut r = Relation::empty(schema);
        assert!(r.try_push(Tuple::of_strs(&["a", "b", "c"], 0.5)).is_err());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn try_push_row_validates_confidence() {
        let mut r = Relation::empty(Schema::of_strings("r", &["A"]));
        assert!(matches!(
            r.try_push_row([Value::str("v")], 2.0),
            Err(ModelError::ConfidenceOutOfRange { .. })
        ));
        assert!(r.try_push_row([Value::str("v")], 1.0).is_ok());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn diff_cells_counts_changed_positions() {
        let r1 = rel();
        let mut r2 = rel();
        let b = r2.schema().attr_id("B").unwrap();
        r2.tuple_mut(TupleId(2))
            .set(b, Value::str("9"), 1.0, Default::default());
        assert_eq!(r1.diff_cells(&r2), 1);
        assert_eq!(r1.diff_cells(&r1), 0);
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut r = Relation::empty(Schema::of_strings("r", &["A"]));
        let t0 = r.push(Tuple::of_strs(&["v"], 0.0));
        let t1 = r.push(Tuple::of_strs(&["w"], 0.0));
        assert_eq!(t0, TupleId(0));
        assert_eq!(t1, TupleId(1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iter_pairs_ids_with_tuples() {
        let r = rel();
        let collected: Vec<_> = r
            .iter()
            .map(|(id, t)| (id.index(), t.value(AttrId(0)).clone()))
            .collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (1, Value::str("y")));
    }

    #[test]
    fn equal_cells_share_symbols_within_the_relation() {
        let r = rel();
        let a = r.schema().attr_id("A").unwrap();
        assert_eq!(r.sym(TupleId(0), a), r.sym(TupleId(2), a));
        assert_ne!(r.sym(TupleId(0), a), r.sym(TupleId(1), a));
    }

    #[test]
    fn with_schema_relabels_without_copying_rows() {
        let r = rel();
        let m = Schema::of_strings("m", &["P", "Q"]);
        let s = Relation::with_schema(m.clone(), &r);
        assert_eq!(s.schema().name(), "m");
        assert_eq!(s.len(), r.len());
        let p = s.schema().attr_id("P").unwrap();
        let a = r.schema().attr_id("A").unwrap();
        assert_eq!(s.tuple(TupleId(1)).value(p), r.tuple(TupleId(1)).value(a));
    }

    #[test]
    fn to_tuples_round_trips() {
        let r = rel();
        let back = Relation::new(r.schema().clone(), r.to_tuples());
        assert_eq!(r.diff_cells(&back), 0);
    }
}
