//! Relational substrate for UniClean.
//!
//! This crate provides the data model shared by every other UniClean crate:
//!
//! * [`Schema`] — named relation schemas with typed attributes,
//! * [`Value`] — cell values (`null`, strings, integers) with cheap clones,
//! * [`Tuple`] / [`Cell`] — tuples whose cells carry a *confidence* `cf`
//!   (the user's belief in the accuracy of the cell, §3.1 of the paper) and a
//!   [`FixMark`] recording which cleaning phase last wrote the cell,
//! * [`Relation`] — an instance of a schema, stored **columnar**: one
//!   interned [`Symbol`] column per attribute plus parallel confidence and
//!   mark columns inside a [`ColumnStore`], accessed through the
//!   lightweight [`TupleRef`]/[`TupleMut`]/[`CellRef`] views and the
//!   [`Row`] abstraction,
//! * [`ValueInterner`] — dense `u32` [`Symbol`]s for values, so hot-path
//!   hash keys (group projections, master-column indexes) hash and compare
//!   in O(1); every relation owns one,
//! * [`cost`](mod@cost) — the repair cost model `cost(Dr, D)` of §3.1,
//! * [`json`](mod@json) — hand-rolled [`Json`] values (no external deps)
//!   and the tuple/batch wire codecs the serving layer speaks.
//!
//! The model is deliberately free of any cleaning logic: rules live in
//! `uniclean-rules` and the cleaning algorithms in `uniclean-core`.

pub mod cost;
pub mod csv;
pub mod error;
pub mod frame;
pub mod intern;
pub mod json;
pub mod pos;
pub mod relation;
pub mod schema;
pub mod store;
pub mod tuple;
pub mod value;

pub use cost::{cell_cost, repair_cost, repair_cost_with, value_distance};
pub use error::ModelError;
pub use intern::{FxHashMap, FxHasher, Symbol, ValueInterner};
pub use json::{Json, JsonError};
pub use pos::{AttrId, TupleId};
pub use relation::Relation;
pub use schema::{AttrDef, Schema, ValueType};
pub use store::{CellRef, ColumnStore, Row, TupleMut, TupleRef};
pub use tuple::{Cell, FixMark, Tuple};
pub use value::Value;
