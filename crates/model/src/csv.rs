//! Minimal CSV import/export for relations.
//!
//! The generators and the benchmark harness exchange datasets as plain CSV.
//! The dialect is deliberately small: comma separator, `"`-quoting with `""`
//! escapes, a header row naming the attributes, and the literal `\N` for
//! null (so empty strings and nulls stay distinguishable). Confidence and
//! fix marks are not serialized — they are experiment state, not data.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::error::ModelError;
use crate::relation::Relation;
use crate::schema::{Schema, ValueType};
use crate::value::Value;

/// Token that encodes SQL null in CSV cells.
const NULL_TOKEN: &str = "\\N";

/// Serialize a relation to CSV (header row + one row per tuple).
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<&str> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    write_row(&mut out, header.iter().copied());
    for t in rel.rows() {
        let row: Vec<String> = t
            .cells()
            .map(|c| match c.value {
                Value::Null => NULL_TOKEN.to_string(),
                v => v.render().into_owned(),
            })
            .collect();
        write_row(&mut out, row.iter().map(|s| s.as_str()));
    }
    out
}

fn write_row<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        // `\r` must be quoted too: unquoted carriage returns are consumed
        // by the reader's CRLF tolerance.
        if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            for ch in f.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            let _ = write!(out, "{f}");
        }
    }
    out.push('\n');
}

/// Errors raised while parsing CSV into a relation.
#[derive(Debug, PartialEq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// Row `row` (1-based, excluding the header) had `got` fields where the
    /// header declared `want`.
    FieldCount { row: usize, want: usize, got: usize },
    /// A quoted field was never closed.
    UnterminatedQuote { row: usize },
    /// Cell could not be parsed as the declared attribute type.
    BadValue {
        row: usize,
        attr: String,
        text: String,
    },
    /// The caller-supplied default confidence (or a parsed row) violated a
    /// model invariant — out-of-range confidence, arity drift.
    Model(ModelError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "csv input has no header row"),
            CsvError::FieldCount { row, want, got } => {
                write!(f, "csv row {row}: expected {want} fields, found {got}")
            }
            CsvError::UnterminatedQuote { row } => write!(f, "csv row {row}: unterminated quote"),
            CsvError::BadValue { row, attr, text } => {
                write!(
                    f,
                    "csv row {row}: `{text}` is not a valid value for attribute {attr}"
                )
            }
            CsvError::Model(e) => write!(f, "csv ingest: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<ModelError> for CsvError {
    fn from(e: ModelError) -> Self {
        CsvError::Model(e)
    }
}

/// Parse CSV produced by [`to_csv`] back into a relation.
///
/// The relation name and attribute types come from the caller: CSV headers
/// carry names only. Every cell gets confidence `default_cf`, validated to
/// `[0, 1]` ([`CsvError::Model`] otherwise — a typed error in release
/// builds too, not a debug assertion).
///
/// Rows stream straight into the relation's columnar store
/// ([`Relation::try_push_row`]); no row tuples are materialized.
pub fn from_csv(
    name: &str,
    types: &[ValueType],
    input: &str,
    default_cf: f64,
) -> Result<Relation, CsvError> {
    if !(0.0..=1.0).contains(&default_cf) {
        return Err(CsvError::Model(ModelError::ConfidenceOutOfRange {
            cf: default_cf,
        }));
    }
    let mut rows = parse_rows(input)?;
    if rows.is_empty() {
        return Err(CsvError::MissingHeader);
    }
    let header = rows.remove(0);
    assert_eq!(
        header.len(),
        types.len(),
        "caller supplied {} types for {} header columns",
        types.len(),
        header.len()
    );
    let schema = Arc::new(Schema::new(
        name,
        header.iter().cloned().zip(types.iter().copied()),
    ));
    let mut rel = Relation::empty(schema.clone());
    for (i, row) in rows.into_iter().enumerate() {
        let rownum = i + 1;
        if row.len() != schema.arity() {
            return Err(CsvError::FieldCount {
                row: rownum,
                want: schema.arity(),
                got: row.len(),
            });
        }
        let mut vals = Vec::with_capacity(row.len());
        for (j, field) in row.into_iter().enumerate() {
            let v =
                if field == NULL_TOKEN {
                    Value::Null
                } else {
                    match types[j] {
                        ValueType::Str => Value::from(field),
                        ValueType::Int => field.parse::<i64>().map(Value::Int).map_err(|_| {
                            CsvError::BadValue {
                                row: rownum,
                                attr: schema.attr_name(crate::AttrId::from(j)).to_string(),
                                text: field.clone(),
                            }
                        })?,
                    }
                };
            vals.push(v);
        }
        rel.try_push_row(vals, default_cf)?;
    }
    Ok(rel)
}

/// Split CSV text into rows of unescaped fields.
fn parse_rows(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {} // tolerate CRLF
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { row: rows.len() });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn sample() -> Relation {
        let schema = Schema::of_strings("r", &["name", "city"]);
        Relation::new(
            schema,
            vec![
                Tuple::of_strs(&["Mark Smith", "Edi"], 0.5),
                Tuple::of_strs(&["Brady, Robert", "Ldn"], 0.5),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_values() {
        let rel = sample();
        let csv = to_csv(&rel);
        let back = from_csv("r", &[ValueType::Str, ValueType::Str], &csv, 0.5).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(rel.diff_cells(&back), 0);
    }

    #[test]
    fn commas_are_quoted() {
        let csv = to_csv(&sample());
        assert!(csv.contains("\"Brady, Robert\""));
    }

    #[test]
    fn quotes_are_escaped() {
        let schema = Schema::of_strings("r", &["A"]);
        let rel = Relation::new(schema, vec![Tuple::of_strs(&["say \"hi\""], 0.0)]);
        let csv = to_csv(&rel);
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        let back = from_csv("r", &[ValueType::Str], &csv, 0.0).unwrap();
        assert_eq!(
            back.tuple(crate::TupleId(0)).value(crate::AttrId(0)),
            &Value::str("say \"hi\"")
        );
    }

    #[test]
    fn null_token_roundtrips() {
        let schema = Schema::of_strings("r", &["A"]);
        let mut rel = Relation::new(schema, vec![Tuple::of_strs(&["x"], 0.0)]);
        rel.tuple_mut(crate::TupleId(0)).set(
            crate::AttrId(0),
            Value::Null,
            0.0,
            Default::default(),
        );
        let csv = to_csv(&rel);
        let back = from_csv("r", &[ValueType::Str], &csv, 0.0).unwrap();
        assert!(back
            .tuple(crate::TupleId(0))
            .value(crate::AttrId(0))
            .is_null());
    }

    #[test]
    fn int_columns_parse() {
        let csv = "A,B\nx,42\ny,-7\n";
        let rel = from_csv("r", &[ValueType::Str, ValueType::Int], csv, 0.0).unwrap();
        assert_eq!(
            rel.tuple(crate::TupleId(1)).value(crate::AttrId(1)),
            &Value::int(-7)
        );
    }

    #[test]
    fn bad_int_reports_row_and_attr() {
        let csv = "A\nnot-a-number\n";
        let err = from_csv("r", &[ValueType::Int], csv, 0.0).unwrap_err();
        match err {
            CsvError::BadValue { row, ref attr, .. } => {
                assert_eq!(row, 1);
                assert_eq!(attr, "A");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn field_count_mismatch_is_reported() {
        let csv = "A,B\nonly-one\n";
        let err = from_csv("r", &[ValueType::Str, ValueType::Str], csv, 0.0).unwrap_err();
        assert_eq!(
            err,
            CsvError::FieldCount {
                row: 1,
                want: 2,
                got: 1
            }
        );
    }

    #[test]
    fn empty_input_is_missing_header() {
        assert_eq!(
            from_csv("r", &[], "", 0.0).unwrap_err(),
            CsvError::MissingHeader
        );
    }

    #[test]
    fn crlf_is_tolerated() {
        let csv = "A,B\r\nx,y\r\n";
        let rel = from_csv("r", &[ValueType::Str, ValueType::Str], csv, 0.0).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel.tuple(crate::TupleId(0)).value(crate::AttrId(1)),
            &Value::str("y")
        );
    }

    #[test]
    fn final_row_without_newline_is_kept() {
        let csv = "A\nx\ny";
        let rel = from_csv("r", &[ValueType::Str], csv, 0.0).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
