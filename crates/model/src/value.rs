//! Cell values.
//!
//! UniClean manipulates values from attribute domains (`dom(A)` in the
//! paper). Three variants cover every dataset in the evaluation: free text,
//! integers, and SQL `null` (which the heuristic phase introduces to resolve
//! otherwise-unresolvable conflicts, §7).
//!
//! Strings are reference-counted so that the cleaning algorithms — which copy
//! values between tuples, master data and pattern tuples constantly — clone
//! in O(1).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL null. Produced only by the heuristic phase (`hRepair`) when a
    /// conflict cannot be resolved (§7); never present in master data.
    Null,
    /// A string value; `Arc`-backed so clones are cheap.
    Str(Arc<str>),
    /// An integer value.
    Int(i64),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Is this value `null`?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string slice if this is a `Str` value.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer if this is an `Int` value.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A textual rendering used by similarity predicates; integers render in
    /// decimal, null renders as the empty string.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Int(i) => Cow::Owned(i.to_string()),
        }
    }

    /// `|v|` in the cost model: the size of the value (character count for
    /// strings, digit count for integers, 0 for null).
    pub fn size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Str(s) => s.chars().count(),
            Value::Int(i) => {
                // Digits plus sign.
                let mut n = *i;
                if n == 0 {
                    return 1;
                }
                let mut d = if n < 0 { 1 } else { 0 };
                while n != 0 {
                    n /= 10;
                    d += 1;
                }
                d
            }
        }
    }

    /// Equality modulo the SQL-standard simple null semantics used by the
    /// heuristic phase (§7): `null` compares equal to anything.
    ///
    /// This is the semantics under which FD *agreement* (`t1[X] = t2[X]`) is
    /// evaluated once nulls may have been introduced. Pattern matching
    /// against rule constants must instead use strict [`PartialEq`]: a CFD
    /// "only applies to those tuples that precisely match a pattern tuple,
    /// which does not contain null".
    #[inline]
    pub fn eq_nullable(&self, other: &Value) -> bool {
        self.is_null() || other.is_null() || self == other
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order used for deterministic iteration (sorting active domains,
/// canonicalizing test output). Null < Int < Str; within a variant the
/// natural order applies.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values_compare_by_content() {
        assert_eq!(Value::str("Edi"), Value::str("Edi"));
        assert_ne!(Value::str("Edi"), Value::str("Ldn"));
    }

    #[test]
    fn null_is_not_equal_to_anything_strictly() {
        assert_ne!(Value::Null, Value::str(""));
        assert_ne!(Value::Null, Value::int(0));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn nullable_equality_follows_sql_simple_semantics() {
        assert!(Value::Null.eq_nullable(&Value::str("x")));
        assert!(Value::str("x").eq_nullable(&Value::Null));
        assert!(Value::str("x").eq_nullable(&Value::str("x")));
        assert!(!Value::str("x").eq_nullable(&Value::str("y")));
    }

    #[test]
    fn size_counts_characters_and_digits() {
        assert_eq!(Value::Null.size(), 0);
        assert_eq!(Value::str("abc").size(), 3);
        assert_eq!(Value::str("").size(), 0);
        assert_eq!(Value::int(0).size(), 1);
        assert_eq!(Value::int(1234).size(), 4);
        assert_eq!(Value::int(-5).size(), 2);
    }

    #[test]
    fn render_produces_comparable_text() {
        assert_eq!(Value::str("a b").render(), "a b");
        assert_eq!(Value::int(42).render(), "42");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn ordering_is_total_and_variant_stratified() {
        let mut vs = vec![
            Value::str("b"),
            Value::Null,
            Value::int(3),
            Value::str("a"),
            Value::int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::int(-1),
                Value::int(3),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn clones_share_string_storage() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
