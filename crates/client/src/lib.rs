//! Fault-tolerant client for the `uniclean serve` line-JSON protocol.
//!
//! The daemon's wire contract is one JSON object per line, request →
//! response. This crate wraps it with the failure handling a caller
//! should not have to re-derive:
//!
//! * **deadlines everywhere** — connects use `connect_timeout` per
//!   resolved address, reads and writes carry `io_timeout`, so a dead
//!   peer costs bounded time, never a hang;
//! * **bounded retries with jittered exponential backoff** — transient
//!   failures (connection refused, mid-request disconnects, `busy`
//!   backpressure, `shutting_down`) are retried up to `max_retries`
//!   times, sleeping a deterministic half-to-full jittered exponential
//!   delay between attempts ([`Backoff`]);
//! * **versioned handshake** — every connection opens with
//!   `hello {proto_version}`; the server answers its own version and
//!   role. Unknown response fields are ignored, and a pre-versioning
//!   server (answering `unknown_op`) is accepted at protocol 1, so old
//!   and new speak freely in both directions;
//! * **failover** — when a standby address is configured, connection
//!   loss or a `standby` refusal flips the active target, so a client
//!   rides through a primary death and standby promotion without caller
//!   involvement;
//! * **exactly-once ingest** — [`Client::ingest`] stamps each batch with
//!   a per-relation monotonic sequence number which the daemon records
//!   in its WAL. A retry after an ambiguous failure (the request may or
//!   may not have been applied before the connection died) re-sends the
//!   *same* number; the daemon deduplicates, answering `deduped:true`
//!   instead of applying twice. Sequence numbers are seeded from the
//!   server's `last_client_seq` so a fresh client continues where the
//!   previous writer stopped. The scope is one logical writer per
//!   relation — concurrent writers sharing a relation must share a
//!   sequence, or dedup will eat their batches.
//!
//! After failover the client re-sends its in-flight batch with
//! [`Client::ingest_with_seq`]; if the batch had already replicated to
//! the promoted standby the daemon acknowledges it as a duplicate,
//! otherwise it applies — either way it lands exactly once.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use uniclean_model::Json;

/// The protocol version this client speaks (sent in `hello`).
pub const PROTO_VERSION: u64 = 2;

/// Everything a [`Client`] needs to know about its targets and patience.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Primary daemon address (`host:port`).
    pub primary: String,
    /// Optional standby address — the failover target.
    pub standby: Option<String>,
    /// Deadline for each TCP connect attempt.
    pub connect_timeout: Duration,
    /// Read/write deadline on an established connection.
    pub io_timeout: Duration,
    /// Retry attempts per request beyond the first (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry up to `backoff_cap`.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed — same seed, same delays (deterministic tests).
    pub seed: u64,
    /// Version to announce in `hello` (defaults to [`PROTO_VERSION`]).
    pub proto_version: u64,
}

impl ClientConfig {
    /// Defaults tuned for a local daemon: 2s connects, 10s io, 8 retries
    /// backing off 20ms → 2s.
    pub fn new(primary: impl Into<String>) -> ClientConfig {
        ClientConfig {
            primary: primary.into(),
            standby: None,
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            max_retries: 8,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
            proto_version: PROTO_VERSION,
        }
    }

    /// Set the failover target.
    pub fn with_standby(mut self, standby: impl Into<String>) -> ClientConfig {
        self.standby = Some(standby.into());
        self
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The peer spoke, but not the protocol (unparseable line, closed
    /// mid-response).
    Protocol(String),
    /// A structured, non-retryable server error (`code` is
    /// machine-matchable: `unknown_relation`, `bad_batch`, …).
    Server {
        /// Machine-matchable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// Every attempt failed with a retryable error; `last` describes the
    /// final one.
    RetriesExhausted {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Response codes worth retrying: transient server states, not caller
/// mistakes. `standby` is retryable because the peer may be promoted
/// between attempts (and retrying flips to the other target anyway).
fn retryable_code(code: &str) -> bool {
    matches!(code, "busy" | "shutting_down" | "standby" | "retry")
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Deterministic jittered exponential backoff: attempt `n` sleeps a
/// uniform value in `[cap/2, cap]` of `base·2ⁿ` (clamped to the ceiling),
/// driven by a splitmix64 stream from the seed — reproducible in tests,
/// decorrelated between clients with different seeds.
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    state: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule (attempt counter at zero).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base_ms: (base.as_millis() as u64).max(1),
            cap_ms: (cap.as_millis() as u64).max(1),
            state: seed,
            attempt: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, full-period, no dependency.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next delay; advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << self.attempt.min(20))
            .min(self.cap_ms);
        self.attempt += 1;
        let half = (exp / 2).max(1);
        let jitter = self.next_u64() % (exp - half + 1);
        Duration::from_millis(half + jitter)
    }

    /// Attempts taken so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

// ---------------------------------------------------------------------------
// Conn: one connection, with deadlines and the hello handshake
// ---------------------------------------------------------------------------

/// What the server announced in its `hello` response.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    /// The server's protocol version.
    pub proto_version: u64,
    /// The oldest client version it still accepts.
    pub min_proto: u64,
    /// `"primary"` or `"standby"` (`"unknown"` from pre-versioning
    /// servers).
    pub role: String,
}

/// One live connection: deadline-bounded socket + response reader.
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Handshake result, once [`Conn::handshake`] ran.
    pub server: Option<ServerInfo>,
}

impl Conn {
    /// Resolve `addr` and connect with a per-address deadline; read and
    /// write deadlines are installed on the socket before returning.
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> std::io::Result<Conn> {
        let mut last = std::io::Error::other(format!("no addresses resolved for {addr:?}"));
        for sa in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sa, connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(io_timeout))?;
                    stream.set_write_timeout(Some(io_timeout))?;
                    let writer = stream.try_clone()?;
                    return Ok(Conn {
                        reader: BufReader::new(stream),
                        writer,
                        server: None,
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Send `hello {proto_version}` and record what the server answered.
    /// A server that predates versioning answers `unknown_op`; that is
    /// a successful handshake at protocol 1, not an error — forward
    /// compatibility cuts both ways.
    pub fn handshake(&mut self, proto_version: u64) -> Result<ServerInfo, ClientError> {
        let req = Json::Obj(vec![
            ("op".to_string(), Json::str("hello")),
            ("proto_version".to_string(), Json::Num(proto_version as f64)),
        ]);
        let resp = self.request(&req)?;
        let info = if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            ServerInfo {
                proto_version: resp
                    .get("proto_version")
                    .and_then(Json::as_usize)
                    .unwrap_or(1) as u64,
                min_proto: resp.get("min_proto").and_then(Json::as_usize).unwrap_or(1) as u64,
                role: resp
                    .get("role")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            }
        } else if resp.get("code").and_then(Json::as_str) == Some("unknown_op") {
            ServerInfo {
                proto_version: 1,
                min_proto: 1,
                role: "unknown".to_string(),
            }
        } else {
            return Err(server_error(&resp));
        };
        self.server = Some(info.clone());
        Ok(info)
    }

    /// One request line out, one response line in. Any socket failure is
    /// [`ClientError::Io`]; a closed or unparseable response is
    /// [`ClientError::Protocol`] — both mean the connection is dead.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        let mut line = req.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response arrived".to_string(),
            ));
        }
        if !resp.ends_with('\n') {
            return Err(ClientError::Protocol(
                "connection closed mid-response".to_string(),
            ));
        }
        Json::parse(resp.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }
}

fn server_error(resp: &Json) -> ClientError {
    ClientError::Server {
        code: resp
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        message: resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error")
            .to_string(),
    }
}

// ---------------------------------------------------------------------------
// Client: retries, failover, exactly-once ingest
// ---------------------------------------------------------------------------

/// Counters a caller (or a test) can read after the fact.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Attempts beyond the first, across all requests.
    pub retries: u64,
    /// Active-target flips (primary ↔ standby).
    pub failovers: u64,
    /// Ingest acks the server answered as duplicates (`deduped:true`).
    pub dedup_acks: u64,
}

/// The fault-tolerant client. One instance is one logical writer: it
/// owns the per-relation ingest sequence numbers that make retries
/// exactly-once.
pub struct Client {
    cfg: ClientConfig,
    /// Established connection and which target it is to.
    conn: Option<(usize, Conn)>,
    /// Active target index into `[primary, standby]`.
    active: usize,
    /// Highest sequence number sent per relation.
    seqs: HashMap<String, u64>,
    /// Failure-handling counters.
    pub stats: ClientStats,
}

impl Client {
    /// A client that connects lazily on the first request.
    pub fn new(cfg: ClientConfig) -> Client {
        Client {
            cfg,
            conn: None,
            active: 0,
            seqs: HashMap::new(),
            stats: ClientStats::default(),
        }
    }

    fn target_addr(&self, idx: usize) -> &str {
        match idx {
            0 => &self.cfg.primary,
            _ => self.cfg.standby.as_deref().unwrap_or(&self.cfg.primary),
        }
    }

    /// Flip the active target (no-op without a standby) and drop the
    /// current connection.
    fn flip(&mut self) {
        self.conn = None;
        if self.cfg.standby.is_some() {
            self.active ^= 1;
            self.stats.failovers += 1;
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn, ClientError> {
        if self.conn.as_ref().map(|(idx, _)| *idx) != Some(self.active) {
            self.conn = None;
        }
        if self.conn.is_none() {
            let addr = self.target_addr(self.active).to_string();
            let mut conn = Conn::connect(&addr, self.cfg.connect_timeout, self.cfg.io_timeout)?;
            conn.handshake(self.cfg.proto_version)?;
            self.conn = Some((self.active, conn));
        }
        Ok(&mut self.conn.as_mut().expect("connection just ensured").1)
    }

    /// Send `req`, retrying transient failures with backoff and flipping
    /// to the standby on connection loss or a `standby` refusal. Only
    /// send requests that are safe to repeat — `ingest` is, because of
    /// its sequence number.
    pub fn request_retried(&mut self, req: &Json) -> Result<Json, ClientError> {
        let mut backoff = Backoff::new(self.cfg.backoff_base, self.cfg.backoff_cap, self.cfg.seed);
        let mut last = String::new();
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(backoff.next_delay());
            }
            let conn = match self.ensure_conn() {
                Ok(c) => c,
                Err(e) => {
                    last = e.to_string();
                    self.flip();
                    continue;
                }
            };
            match conn.request(req) {
                Ok(resp) => {
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        return Ok(resp);
                    }
                    let code = resp
                        .get("code")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    if code == "standby" {
                        // Talking to an unpromoted standby: try the other
                        // node, come back if it stays down.
                        last = format!("peer is a standby ({})", self.target_addr(self.active));
                        self.flip();
                        continue;
                    }
                    if retryable_code(&code) {
                        last = format!("server answered {code}");
                        continue;
                    }
                    return Err(server_error(&resp));
                }
                Err(e) => {
                    // Io or protocol garbage: the connection is dead and
                    // the request outcome unknown; reconnect (elsewhere
                    // if a standby is configured).
                    last = e.to_string();
                    self.flip();
                }
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: self.cfg.max_retries + 1,
            last,
        })
    }

    /// The next sequence number for `relation`, seeding from the
    /// server's `last_client_seq` on first use so a fresh client never
    /// collides with (or gets deduped against) an earlier writer.
    fn next_seq(&mut self, relation: &str) -> Result<u64, ClientError> {
        if let Some(&s) = self.seqs.get(relation) {
            return Ok(s + 1);
        }
        let seed = match self.check(relation) {
            Ok(resp) => resp
                .get("last_client_seq")
                .and_then(Json::as_usize)
                .unwrap_or(0) as u64,
            Err(ClientError::Server { code, .. })
                if code == "unknown_relation" || code == "already_closed" =>
            {
                0
            }
            Err(e) => return Err(e),
        };
        Ok(seed + 1)
    }

    /// Ingest a batch exactly once, retrying through disconnects, `busy`
    /// and failover. `rows` is the wire shape (`[[cell, ...], ...]`).
    pub fn ingest(&mut self, relation: &str, rows: Json) -> Result<Json, ClientError> {
        let seq = self.next_seq(relation)?;
        self.ingest_with_seq(relation, rows, seq)
    }

    /// [`Client::ingest`] with an explicit sequence number — for
    /// re-sending an in-flight batch after failover (same number ⇒ the
    /// server applies or dedups, never doubles).
    pub fn ingest_with_seq(
        &mut self,
        relation: &str,
        rows: Json,
        seq: u64,
    ) -> Result<Json, ClientError> {
        let req = Json::Obj(vec![
            ("op".to_string(), Json::str("ingest")),
            ("relation".to_string(), Json::str(relation)),
            ("rows".to_string(), rows),
            ("seq".to_string(), Json::Num(seq as f64)),
        ]);
        let resp = self.request_retried(&req)?;
        if resp.get("deduped").and_then(Json::as_bool) == Some(true) {
            self.stats.dedup_acks += 1;
        }
        let prev = self.seqs.get(relation).copied().unwrap_or(0);
        self.seqs.insert(relation.to_string(), prev.max(seq));
        Ok(resp)
    }

    /// Ensure `relation` is open with the given spec (the full `open`
    /// request document minus `op`). Retried; a `relation_exists` answer
    /// reports success with `already_open:true` — an earlier attempt (or
    /// writer) won the race, which is the state this call wanted.
    pub fn open(&mut self, mut spec: Json) -> Result<Json, ClientError> {
        if let Json::Obj(pairs) = &mut spec {
            pairs.retain(|(k, _)| k != "op");
            pairs.insert(0, ("op".to_string(), Json::str("open")));
        }
        match self.request_retried(&spec) {
            Ok(resp) => Ok(resp),
            Err(ClientError::Server { code, .. }) if code == "relation_exists" => {
                Ok(Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("already_open".to_string(), Json::Bool(true)),
                ]))
            }
            Err(e) => Err(e),
        }
    }

    /// Relation-level `check`.
    pub fn check(&mut self, relation: &str) -> Result<Json, ClientError> {
        self.request_retried(&Json::Obj(vec![
            ("op".to_string(), Json::str("check")),
            ("relation".to_string(), Json::str(relation)),
        ]))
    }

    /// `dump` the repaired relation.
    pub fn dump(&mut self, relation: &str) -> Result<Json, ClientError> {
        self.request_retried(&Json::Obj(vec![
            ("op".to_string(), Json::str("dump")),
            ("relation".to_string(), Json::str(relation)),
        ]))
    }

    /// Daemon `stats` (optionally narrowed to one relation).
    pub fn stats_verb(&mut self, relation: Option<&str>) -> Result<Json, ClientError> {
        let mut pairs = vec![("op".to_string(), Json::str("stats"))];
        if let Some(r) = relation {
            pairs.push(("relation".to_string(), Json::str(r)));
        }
        self.request_retried(&Json::Obj(pairs))
    }

    /// Liveness probe against the active target.
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.request_retried(&Json::Obj(vec![("op".to_string(), Json::str("ping"))]))
    }

    /// Close a relation.
    pub fn close(&mut self, relation: &str) -> Result<Json, ClientError> {
        self.request_retried(&Json::Obj(vec![
            ("op".to_string(), Json::str("close")),
            ("relation".to_string(), Json::str(relation)),
        ]))
    }

    /// Promote the configured standby to primary: connects to the
    /// standby address directly (not the active target) and retries
    /// through transient failures while it drains its apply queue.
    pub fn promote_standby(&mut self) -> Result<Json, ClientError> {
        let addr = self
            .cfg
            .standby
            .clone()
            .ok_or_else(|| ClientError::Protocol("no standby configured".to_string()))?;
        let req = Json::Obj(vec![("op".to_string(), Json::str("promote"))]);
        let mut backoff = Backoff::new(self.cfg.backoff_base, self.cfg.backoff_cap, self.cfg.seed);
        let mut last = String::new();
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(backoff.next_delay());
            }
            let outcome = Conn::connect(&addr, self.cfg.connect_timeout, self.cfg.io_timeout)
                .map_err(ClientError::from)
                .and_then(|mut conn| {
                    conn.handshake(self.cfg.proto_version)?;
                    conn.request(&req)
                });
            match outcome {
                Ok(resp) if resp.get("ok").and_then(Json::as_bool) == Some(true) => {
                    // Future requests should prefer the promoted node.
                    self.conn = None;
                    self.active = 1;
                    return Ok(resp);
                }
                Ok(resp) => {
                    let code = resp.get("code").and_then(Json::as_str).unwrap_or("unknown");
                    if !retryable_code(code) {
                        return Err(server_error(&resp));
                    }
                    last = format!("server answered {code}");
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: self.cfg.max_retries + 1,
            last,
        })
    }

    /// What the last handshake learned about the active server.
    pub fn server_info(&self) -> Option<&ServerInfo> {
        self.conn.as_ref().and_then(|(_, c)| c.server.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), seed);
            (0..8).map(|_| b.next_delay().as_millis() as u64).collect()
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "same seed, same delays");
        assert_ne!(a, schedule(8), "different seeds decorrelate");
        // Every delay sits in [cap/2 of the exponential step, the step].
        for (i, &d) in a.iter().enumerate() {
            let step = (10u64 << i).min(500);
            assert!(
                d >= step / 2 && d <= step,
                "attempt {i}: {d} vs step {step}"
            );
        }
        // The ceiling holds forever.
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 1);
        for _ in 0..40 {
            assert!(b.next_delay() <= Duration::from_millis(500));
        }
    }

    #[test]
    fn connect_failure_is_bounded_and_typed() {
        // A port nothing listens on: refused (or timed out) quickly.
        let err = Conn::connect(
            "127.0.0.1:1",
            Duration::from_millis(200),
            Duration::from_millis(200),
        )
        .expect_err("nothing listens on port 1");
        let _ = err.kind(); // any io::Error is the right shape
    }

    #[test]
    fn retries_exhaust_against_a_dead_primary() {
        let mut cfg = ClientConfig::new("127.0.0.1:1");
        cfg.max_retries = 2;
        cfg.connect_timeout = Duration::from_millis(50);
        cfg.backoff_base = Duration::from_millis(1);
        cfg.backoff_cap = Duration::from_millis(2);
        let mut client = Client::new(cfg);
        match client.ping() {
            Err(ClientError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(client.stats.retries, 2);
    }
}
