//! The similarity predicates `≈` that appear in MD premises.
//!
//! An MD premise is a conjunction `R[Aj] ≈j Rm[Bj]` where each `≈j` is drawn
//! from a set Υ of predicates (§2.2). [`SimilarityPredicate`] is that set:
//! exact equality plus the three families the paper names (edit distance,
//! Jaro, q-grams). Every predicate is reflexive — `x ≈ x` always holds — a
//! property the cleaning algorithms rely on and the tests pin down.

use std::fmt;

use crate::edit_distance::{within_edit_distance, within_edit_distance_with, EditScratch};
use crate::jaro::{jaro, jaro_winkler, jaro_winkler_with, jaro_with, JaroScratch};
use crate::qgram::{qgram_jaccard, ProfileScratch, QGramProfile};

/// Every per-call buffer a similarity-predicate evaluation can need, owned
/// by the caller so the probe hot path allocates nothing. The engine embeds
/// one (inside its `ProbeScratch`) per probing thread.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Myers pattern/block buffers for `~lev`.
    pub edit: EditScratch,
    /// Match/transposition buffers for `~jaro`/`~jw`.
    pub jaro: JaroScratch,
    /// Padded-string and hash buffers for `~qgram` profile builds.
    pub profile: ProfileScratch,
    /// Reusable probe/master profile slots for `~qgram` evaluation.
    pa: QGramProfile,
    pb: QGramProfile,
}

impl SimScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A similarity predicate usable in an MD premise.
#[derive(Clone, Debug, PartialEq)]
pub enum SimilarityPredicate {
    /// Strict equality `=`.
    Equal,
    /// Levenshtein distance at most `max`.
    Levenshtein {
        /// Inclusive edit-distance threshold.
        max: usize,
    },
    /// Jaro similarity at least `min`.
    Jaro {
        /// Inclusive similarity threshold in `[0, 1]`.
        min: f64,
    },
    /// Jaro-Winkler similarity at least `min`.
    JaroWinkler {
        /// Inclusive similarity threshold in `[0, 1]`.
        min: f64,
    },
    /// q-gram multiset-Jaccard similarity at least `min`.
    QGramJaccard {
        /// Window size (≥ 1).
        q: usize,
        /// Inclusive similarity threshold in `[0, 1]`.
        min: f64,
    },
}

impl SimilarityPredicate {
    /// Does `a ≈ b` hold under this predicate?
    pub fn matches(&self, a: &str, b: &str) -> bool {
        match self {
            SimilarityPredicate::Equal => a == b,
            SimilarityPredicate::Levenshtein { max } => within_edit_distance(a, b, *max),
            SimilarityPredicate::Jaro { min } => jaro(a, b) >= *min,
            SimilarityPredicate::JaroWinkler { min } => jaro_winkler(a, b) >= *min,
            SimilarityPredicate::QGramJaccard { q, min } => qgram_jaccard(a, b, *q) >= *min,
        }
    }

    /// [`SimilarityPredicate::matches`] reusing `scratch` buffers — the
    /// allocation-free form the probe hot path uses. Answers are identical
    /// to [`SimilarityPredicate::matches`] bit for bit.
    pub fn matches_with(&self, a: &str, b: &str, scratch: &mut SimScratch) -> bool {
        match self {
            SimilarityPredicate::Equal => a == b,
            SimilarityPredicate::Levenshtein { max } => {
                within_edit_distance_with(a, b, *max, &mut scratch.edit)
            }
            SimilarityPredicate::Jaro { min } => jaro_with(a, b, &mut scratch.jaro) >= *min,
            SimilarityPredicate::JaroWinkler { min } => {
                jaro_winkler_with(a, b, &mut scratch.jaro) >= *min
            }
            SimilarityPredicate::QGramJaccard { q, min } => {
                let SimScratch {
                    profile, pa, pb, ..
                } = scratch;
                pa.rebuild(a, *q, profile);
                pb.rebuild(b, *q, profile);
                pa.jaccard(pb) >= *min
            }
        }
    }

    /// Is this predicate plain equality? The confidence-propagation rule of
    /// §3.1 takes the minimum over premise attributes "if ≈j is '='".
    pub fn is_equality(&self) -> bool {
        matches!(self, SimilarityPredicate::Equal)
    }

    /// For edit-distance predicates, the threshold `K` used by the LCS
    /// blocking index; other predicates fall back to candidate generation
    /// without the length bound.
    pub fn edit_threshold(&self) -> Option<usize> {
        match self {
            SimilarityPredicate::Equal => Some(0),
            SimilarityPredicate::Levenshtein { max } => Some(*max),
            _ => None,
        }
    }

    /// `(q, min)` for q-gram predicates — the parameters of the
    /// count-filtered inverted index ([`crate::qgram_index`]).
    pub fn qgram_params(&self) -> Option<(usize, f64)> {
        match self {
            SimilarityPredicate::QGramJaccard { q, min } => Some((*q, *min)),
            _ => None,
        }
    }

    /// The conservative Jaro-similarity floor this predicate implies, for
    /// the 1-gram prefilter: `~jaro(s)` floors at `s` itself, `~jw(s)` at
    /// `(s − 0.4)/0.6` (the Winkler prefix boost is capped at `4 · 0.1`,
    /// so `jw ≤ 0.6·jaro + 0.4`). `None` for non-Jaro predicates.
    pub fn jaro_floor(&self) -> Option<f64> {
        match self {
            SimilarityPredicate::Jaro { min } => Some(*min),
            SimilarityPredicate::JaroWinkler { min } => Some((*min - 0.4) / 0.6),
            _ => None,
        }
    }
}

impl fmt::Display for SimilarityPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimilarityPredicate::Equal => f.write_str("="),
            SimilarityPredicate::Levenshtein { max } => write!(f, "~lev({max})"),
            SimilarityPredicate::Jaro { min } => write!(f, "~jaro({min})"),
            SimilarityPredicate::JaroWinkler { min } => write!(f, "~jw({min})"),
            SimilarityPredicate::QGramJaccard { q, min } => write!(f, "~qgram({q},{min})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equality_predicate() {
        let p = SimilarityPredicate::Equal;
        assert!(p.matches("Edi", "Edi"));
        assert!(!p.matches("Edi", "Ldn"));
        assert!(p.is_equality());
    }

    #[test]
    fn levenshtein_predicate_threshold() {
        let p = SimilarityPredicate::Levenshtein { max: 2 };
        assert!(p.matches("Mark", "Max"));
        assert!(!p.matches("Mark", "Robert"));
        assert!(!p.is_equality());
        assert_eq!(p.edit_threshold(), Some(2));
    }

    #[test]
    fn jaro_predicates() {
        let p = SimilarityPredicate::Jaro { min: 0.9 };
        assert!(p.matches("MARTHA", "MARHTA"));
        assert!(!p.matches("DIXON", "DICKSONX"));
        let w = SimilarityPredicate::JaroWinkler { min: 0.95 };
        assert!(w.matches("MARTHA", "MARHTA"));
    }

    #[test]
    fn qgram_predicate() {
        let p = SimilarityPredicate::QGramJaccard { q: 2, min: 0.5 };
        assert!(p.matches("Robert Brady", "Robert Bradey"));
        assert!(!p.matches("Robert Brady", "Mark Smith"));
    }

    #[test]
    fn display_renders_rule_syntax() {
        assert_eq!(SimilarityPredicate::Equal.to_string(), "=");
        assert_eq!(
            SimilarityPredicate::Levenshtein { max: 3 }.to_string(),
            "~lev(3)"
        );
        assert_eq!(
            SimilarityPredicate::Jaro { min: 0.8 }.to_string(),
            "~jaro(0.8)"
        );
        assert_eq!(
            SimilarityPredicate::QGramJaccard { q: 2, min: 0.5 }.to_string(),
            "~qgram(2,0.5)"
        );
    }

    proptest! {
        /// The scratch-reusing evaluation agrees with the allocating one
        /// for every predicate family, including across reused scratches.
        #[test]
        fn matches_with_agrees_with_matches(a in "[abé ]{0,10}", b in "[abé ]{0,10}") {
            let mut scratch = SimScratch::new();
            for p in [
                SimilarityPredicate::Equal,
                SimilarityPredicate::Levenshtein { max: 2 },
                SimilarityPredicate::Jaro { min: 0.7 },
                SimilarityPredicate::JaroWinkler { min: 0.7 },
                SimilarityPredicate::QGramJaccard { q: 2, min: 0.4 },
                SimilarityPredicate::QGramJaccard { q: 3, min: 0.6 },
            ] {
                prop_assert_eq!(
                    p.matches_with(&a, &b, &mut scratch),
                    p.matches(&a, &b),
                    "{} diverged on ({:?}, {:?})", p, &a, &b
                );
            }
        }

        /// Every predicate is reflexive (needed so re-applying a rule to an
        /// already-fixed tuple is a no-op rather than a change).
        #[test]
        fn predicates_are_reflexive(s in "[a-e ]{0,12}", max in 0usize..4, q in 1usize..4) {
            for p in [
                SimilarityPredicate::Equal,
                SimilarityPredicate::Levenshtein { max },
                SimilarityPredicate::Jaro { min: 0.99 },
                SimilarityPredicate::JaroWinkler { min: 0.99 },
                SimilarityPredicate::QGramJaccard { q, min: 0.99 },
            ] {
                prop_assert!(p.matches(&s, &s), "{p} not reflexive on {s:?}");
            }
        }

        /// Every predicate is symmetric.
        #[test]
        fn predicates_are_symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            for p in [
                SimilarityPredicate::Equal,
                SimilarityPredicate::Levenshtein { max: 2 },
                SimilarityPredicate::Jaro { min: 0.7 },
                SimilarityPredicate::JaroWinkler { min: 0.7 },
                SimilarityPredicate::QGramJaccard { q: 2, min: 0.4 },
            ] {
                prop_assert_eq!(p.matches(&a, &b), p.matches(&b, &a));
            }
        }

        /// Equality implies every similarity predicate (thresholded
        /// predicates accept identical strings).
        #[test]
        fn equality_is_strongest(a in "[a-e]{0,10}") {
            let preds = [
                SimilarityPredicate::Levenshtein { max: 0 },
                SimilarityPredicate::Jaro { min: 1.0 },
                SimilarityPredicate::JaroWinkler { min: 1.0 },
                SimilarityPredicate::QGramJaccard { q: 2, min: 1.0 },
            ];
            for p in preds {
                prop_assert!(p.matches(&a, &a));
            }
        }
    }
}
