//! Top-`l` LCS blocking for MD similarity checks (§5.2).
//!
//! "Instead of traversing the entire set of tuples in Dm, we use indices to
//! find top-l tuples in Dm that possibly match an input string, where l is a
//! constant determined by users. Blocking is based on the length of LCS,
//! since two strings u and v have a Hamming/Edit distance within K only if
//! the length of their LCS is at least max(|u|,|v|)/(K+1). … In our
//! experimental study, we find that l ≤ 20 typically suffices."
//!
//! [`LcsBlocker`] indexes the distinct values of one master-data attribute
//! with a [`GeneralizedSuffixTree`], maps each distinct value back to the
//! master tuples carrying it, and answers "give me candidate master tuples
//! for value `v`" in O(l·|v|²).

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use crate::lcs::{lcs_blocking_bound, longest_common_substring_len};
use crate::suffix_tree::GeneralizedSuffixTree;

/// Blocking index over one attribute column of the master relation.
pub struct LcsBlocker {
    tree: GeneralizedSuffixTree,
    /// Distinct attribute values, ids aligned with the tree's corpus
    /// (`Arc<str>` shared with the dedup map — one allocation per
    /// distinct value, none per row).
    values: Vec<Arc<str>>,
    /// For each distinct value, the master tuple indices carrying it.
    owners: Vec<Vec<usize>>,
    /// The user constant `l`.
    l: usize,
}

impl LcsBlocker {
    /// Build the index over `column`, where `column[i]` is master tuple
    /// `i`'s value for the indexed attribute. `l` is the retrieval constant
    /// (the paper found `l ≤ 20` sufficient).
    pub fn build<S: AsRef<str>>(column: &[S], l: usize) -> Self {
        Self::build_from(column.iter().map(|v| Cow::Borrowed(v.as_ref())), l)
    }

    /// [`Self::build`] from a borrowing iterator — the master-index path
    /// streams `Cow` renderings straight out of the columnar store, so
    /// only *distinct* values are ever copied to owned storage.
    pub fn build_from<'a, I>(column: I, l: usize) -> Self
    where
        I: IntoIterator<Item = Cow<'a, str>>,
    {
        assert!(l >= 1, "blocking constant l must be at least 1");
        let mut ids: HashMap<Arc<str>, usize> = HashMap::new();
        let mut values: Vec<Arc<str>> = Vec::new();
        let mut owners: Vec<Vec<usize>> = Vec::new();
        for (row, v) in column.into_iter().enumerate() {
            let id = match ids.get(v.as_ref()) {
                Some(&id) => id,
                None => {
                    let owned: Arc<str> = Arc::from(v.as_ref());
                    let id = values.len();
                    values.push(owned.clone());
                    owners.push(Vec::new());
                    ids.insert(owned, id);
                    id
                }
            };
            owners[id].push(row);
        }
        let tree = GeneralizedSuffixTree::build(&values);
        LcsBlocker {
            tree,
            values,
            owners,
            l,
        }
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.values.len()
    }

    /// Candidate master-tuple indices for `query`, constrained by an edit
    /// threshold `k`: only values whose LCS with `query` meets the blocking
    /// bound `max(|u|,|v|)/(k+1)` survive, and only the top-`l` distinct
    /// values are expanded. The result over-approximates the true match set
    /// (blocking is a necessary condition) and must still be verified with
    /// the actual similarity predicate.
    pub fn candidates_within_edit(&self, query: &str, k: usize) -> Vec<usize> {
        let mut rows = Vec::new();
        self.candidates_within_edit_into(query, k, &mut rows);
        rows
    }

    /// [`Self::candidates_within_edit`] appending into a caller-owned
    /// buffer — the master index's probe loops reuse one allocation
    /// across a whole relation.
    pub fn candidates_within_edit_into(&self, query: &str, k: usize, out: &mut Vec<usize>) {
        let qlen = query.chars().count();
        // Coarse bound valid against every corpus string: the bound is
        // monotone in max(|u|,|v|) ≥ |query|.
        let coarse = lcs_blocking_bound(qlen, 0, k);
        for (val_id, lcs) in self.tree.top_l_by_lcs(query, self.l, coarse.max(1)) {
            let vlen = self.values[val_id].chars().count();
            // Exact per-value bound and the cheap length filter.
            if vlen.abs_diff(qlen) > k {
                continue;
            }
            if lcs < lcs_blocking_bound(qlen, vlen, k) {
                continue;
            }
            out.extend_from_slice(&self.owners[val_id]);
        }
        // A value sharing *no* character with the query has LCS 0 and is
        // invisible to the tree — yet edit(q, v) = max(|q|,|v|) then, which
        // is within k whenever both lengths are ≤ k. Scan those few short
        // values directly so blocking stays complete.
        if qlen <= k {
            for (val_id, v) in self.values.iter().enumerate() {
                if v.chars().count() <= k && longest_common_substring_len(query, v) == 0 {
                    out.extend_from_slice(&self.owners[val_id]);
                }
            }
        }
    }

    /// Candidate master-tuple indices for `query` without an edit bound:
    /// the top-`l` values by LCS with at least `min_lcs` common characters.
    /// Used for predicates (Jaro, q-grams) that do not induce an LCS bound.
    pub fn candidates_by_lcs(&self, query: &str, min_lcs: usize) -> Vec<usize> {
        let mut rows = Vec::new();
        for (val_id, _) in self.tree.top_l_by_lcs(query, self.l, min_lcs.max(1)) {
            rows.extend_from_slice(&self.owners[val_id]);
        }
        rows
    }

    /// The indexed value of a distinct-value id (diagnostics/tests).
    pub fn value(&self, id: usize) -> &str {
        &self.values[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::within_edit_distance;
    use proptest::prelude::*;

    #[test]
    fn exact_duplicates_map_to_all_rows() {
        let col = ["Edi", "Ldn", "Edi", "Edi"];
        let b = LcsBlocker::build(&col, 10);
        assert_eq!(b.distinct_values(), 2);
        let mut rows = b.candidates_within_edit("Edi", 0);
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 2, 3]);
    }

    #[test]
    fn near_matches_survive_blocking() {
        let col = ["3256778", "3887644", "9999999"];
        let b = LcsBlocker::build(&col, 10);
        let rows = b.candidates_within_edit("3256878", 1); // one typo
        assert!(rows.contains(&0), "expected row 0 in {rows:?}");
    }

    #[test]
    fn length_filter_prunes_hopeless_values() {
        let col = ["a", "abcdefghij"];
        let b = LcsBlocker::build(&col, 10);
        let rows = b.candidates_within_edit("abcdefghix", 1);
        assert_eq!(rows, vec![1]);
    }

    #[test]
    fn lcs_candidates_expose_top_l() {
        let col = ["Robert Brady", "Robert Smith", "Zed Zed"];
        let b = LcsBlocker::build(&col, 2);
        let rows = b.candidates_by_lcs("Robert Bradey", 3);
        assert!(rows.contains(&0));
        assert!(!rows.contains(&2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn l_zero_rejected() {
        LcsBlocker::build(&["x"], 0);
    }

    proptest! {
        /// Completeness under a large enough l: every master row whose value
        /// is within edit distance k of the query is returned. This is the
        /// "blocking never loses a true match" guarantee the paper's bound
        /// provides.
        #[test]
        fn blocking_is_complete(
            col in proptest::collection::vec("[a-c]{1,6}", 1..8),
            query in "[a-c]{1,6}",
            k in 0usize..3
        ) {
            let b = LcsBlocker::build(&col, col.len());
            let got = b.candidates_within_edit(&query, k);
            for (row, v) in col.iter().enumerate() {
                if within_edit_distance(&query, v, k) {
                    prop_assert!(
                        got.contains(&row),
                        "row {row} ({v}) within {k} of {query} but pruned; got {got:?}"
                    );
                }
            }
        }

        /// Soundness of the candidate count: candidates expand at most l
        /// distinct values.
        #[test]
        fn candidate_values_bounded_by_l(
            col in proptest::collection::vec("[a-c]{1,5}", 1..8),
            query in "[a-c]{1,5}",
            l in 1usize..4
        ) {
            let b = LcsBlocker::build(&col, l);
            let got = b.candidates_by_lcs(&query, 1);
            let distinct: std::collections::HashSet<&str> =
                got.iter().map(|&r| col[r].as_str()).collect();
            prop_assert!(distinct.len() <= l);
        }
    }
}
