//! Longest common substring (LCS) and the blocking bound of §5.2.
//!
//! The paper's blocking rests on this observation: "two strings u and v have
//! a Hamming/Edit distance within K only if the length of their LCS is at
//! least max(|u|,|v|)/(K+1)". [`lcs_blocking_bound`] computes that bound.
//! The top-`l` LCS suffix-tree retrieval built on it is retired: `~lev`
//! candidate generation now goes through the *complete* q-gram count bound
//! of [`crate::qgram_index`], so the LCS routines here survive as analysis
//! utilities and test oracles, not as a production access path.

/// Reusable buffers for [`longest_common_substring_len_with`].
#[derive(Debug, Default, Clone)]
pub struct LcsScratch {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    prev: Vec<usize>,
    cur: Vec<usize>,
}

impl LcsScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// O(|a|·|b|) two-row DP over symbol slices.
fn lcs_core<T: PartialEq + Copy>(av: &[T], bv: &[T], scratch: &mut LcsScratch) -> usize {
    if av.is_empty() || bv.is_empty() {
        return 0;
    }
    let (short, long) = if av.len() <= bv.len() {
        (av, bv)
    } else {
        (bv, av)
    };
    let prev = &mut scratch.prev;
    prev.clear();
    prev.resize(short.len() + 1, 0);
    let cur = &mut scratch.cur;
    cur.clear();
    cur.resize(short.len() + 1, 0);
    let mut best = 0;
    for lc in long.iter() {
        for (j, sc) in short.iter().enumerate() {
            cur[j + 1] = if lc == sc { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(prev, cur);
    }
    best
}

/// Length of the longest common *substring* (contiguous) of `a` and `b`,
/// reusing `scratch` buffers. ASCII inputs run directly on the byte slices.
pub fn longest_common_substring_len_with(a: &str, b: &str, scratch: &mut LcsScratch) -> usize {
    if a.is_ascii() && b.is_ascii() {
        return lcs_core(a.as_bytes(), b.as_bytes(), scratch);
    }
    let LcsScratch {
        a_chars, b_chars, ..
    } = scratch;
    a_chars.clear();
    a_chars.extend(a.chars());
    b_chars.clear();
    b_chars.extend(b.chars());
    let (av, bv) = (std::mem::take(a_chars), std::mem::take(b_chars));
    let best = lcs_core(&av, &bv, scratch);
    scratch.a_chars = av;
    scratch.b_chars = bv;
    best
}

/// Length of the longest common *substring* (contiguous) of `a` and `b`.
pub fn longest_common_substring_len(a: &str, b: &str) -> usize {
    longest_common_substring_len_with(a, b, &mut LcsScratch::new())
}

/// The minimum LCS length two strings must share to possibly be within edit
/// distance `k`: `ceil((max(|u|,|v|) − k) / (k+1))`.
///
/// The paper states the bound as `max(|u|,|v|)/(K+1)`, but that is slightly
/// too strong: `k` edits on the longer string leave at least `max − k`
/// untouched characters split into at most `k+1` runs, and each untouched
/// run is a common substring — so the guaranteed LCS is
/// `ceil((max − k)/(k+1))`, not `ceil(max/(k+1))`
/// (counterexample: u = "cbcacb", v = "ab", k = 4 — edit distance 4 yet
/// LCS 1 < ceil(6/5)). We use the corrected, conservative bound; blocking
/// with it never discards a true match, which the property tests verify.
pub fn lcs_blocking_bound(len_u: usize, len_v: usize, k: usize) -> usize {
    let m = len_u.max(len_v);
    m.saturating_sub(k).div_ceil(k + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::levenshtein;
    use proptest::prelude::*;

    #[test]
    fn reference_cases() {
        assert_eq!(longest_common_substring_len("abcdef", "zcdemx"), 3); // "cde"
        assert_eq!(longest_common_substring_len("abc", "abc"), 3);
        assert_eq!(longest_common_substring_len("abc", "xyz"), 0);
        assert_eq!(longest_common_substring_len("", "abc"), 0);
        assert_eq!(longest_common_substring_len("banana", "anananas"), 5); // "anana"
    }

    #[test]
    fn unicode_falls_back_to_chars() {
        assert_eq!(longest_common_substring_len("caférot", "férocité"), 4); // "féro"
    }

    #[test]
    fn bound_examples() {
        // 10-char strings within edit distance 1 leave ≥9 untouched chars in
        // ≤2 runs → a 5-char common substring is guaranteed.
        assert_eq!(lcs_blocking_bound(10, 10, 1), 5);
        assert_eq!(lcs_blocking_bound(10, 8, 4), 2);
        assert_eq!(lcs_blocking_bound(1, 1, 3), 0); // k ≥ max ⇒ no guarantee
        assert_eq!(lcs_blocking_bound(0, 0, 2), 0);
        assert_eq!(lcs_blocking_bound(6, 2, 4), 1); // the counterexample above
    }

    proptest! {
        /// Soundness of blocking: if edit(u,v) ≤ k then
        /// lcs(u,v) ≥ max(|u|,|v|)/(k+1). (k edits split the longer string
        /// into at most k+1 untouched runs; the longest run is a common
        /// substring.)
        #[test]
        fn blocking_bound_never_discards_true_matches(
            u in "[a-c]{1,10}", v in "[a-c]{1,10}", k in 0usize..5
        ) {
            let d = levenshtein(&u, &v);
            if d <= k {
                let lcs = longest_common_substring_len(&u, &v);
                let bound = lcs_blocking_bound(u.chars().count(), v.chars().count(), k);
                prop_assert!(
                    lcs >= bound,
                    "edit={d} k={k} lcs={lcs} bound={bound} u={u} v={v}"
                );
            }
        }

        #[test]
        fn lcs_symmetric(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            prop_assert_eq!(
                longest_common_substring_len(&a, &b),
                longest_common_substring_len(&b, &a)
            );
        }

        #[test]
        fn lcs_bounded_by_lengths(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            let l = longest_common_substring_len(&a, &b);
            prop_assert!(l <= a.chars().count().min(b.chars().count()));
        }

        #[test]
        fn lcs_of_self_is_length(a in "[a-c]{0,10}") {
            prop_assert_eq!(longest_common_substring_len(&a, &a), a.chars().count());
        }

        /// Scratch reuse across heterogeneous calls never corrupts results.
        #[test]
        fn scratch_reuse_is_sound(pairs in proptest::collection::vec(("[abé]{0,8}", "[abé]{0,8}"), 1..6)) {
            let mut scratch = LcsScratch::new();
            for (a, b) in &pairs {
                prop_assert_eq!(
                    longest_common_substring_len_with(a, b, &mut scratch),
                    longest_common_substring_len(a, b)
                );
            }
        }
    }
}
