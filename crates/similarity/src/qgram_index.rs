//! Count-filtered q-gram inverted index — bounded candidate generation for
//! the `~qgram`, `~jaro` and `~jw` predicate families.
//!
//! §5.2 of the paper observes that "traditional database indices …
//! designed for exact matching cannot be carried over" to similarity
//! predicates; the LCS blocker covers edit distance, but q-gram Jaccard
//! and Jaro previously degraded to a full master scan. This index closes
//! that gap with the classic *count filtering* discipline: per-attribute
//! inverted lists map each gram hash to the distinct master values
//! containing it; a probe accumulates per-value multiset overlap and keeps
//! only values whose overlap meets a predicate-specific lower bound.
//!
//! # The count-filter math
//!
//! **q-gram Jaccard.** With `I = |A ∩ B|` (multiset) and profile sizes
//! `|a|, |b|`, `J = I / (|a| + |b| − I)`. So
//! `J ≥ min  ⟺  I ≥ min/(1+min) · (|a| + |b|)` — the overlap bound
//! [`qgram_overlap_bound`]. Since also `I ≤ min(|a|, |b|)`, candidate
//! profile sizes are confined to `[min·|a|, |a|/min]`
//! ([`qgram_length_window`]).
//!
//! **Jaro.** Jaro's `m` matching characters are an injective equality
//! matching, so `m` never exceeds the 1-gram (character multiset) overlap.
//! From `jaro = (m/|a| + m/|b| + (m−t)/m)/3 ≤ (m/|a| + m/|b| + 1)/3`,
//! `jaro ≥ j` forces `m ≥ (3j−1)·|a||b|/(|a|+|b|)`
//! ([`jaro_overlap_bound`]) and, when `3j−2 > 0`, lengths within
//! `[(3j−2)·|a|, |a|/(3j−2)]` ([`jaro_length_window`]). Jaro-Winkler
//! probes reuse this with the conservative floor `j ≥ (min − 0.4)/0.6`
//! (prefix boost capped at `4 · 0.1`).
//!
//! **Edit distance.** A padded profile of a length-`n` string has exactly
//! `n + q − 1` windows, and one single-character edit touches at most `q`
//! of them (the windows covering the edited position). So if
//! `lev(u, v) ≤ k`, the padded profiles share at least
//! `max(|u|,|v|) + q − 1 − k·q` grams (multiset) — [`lev_count_bound`].
//! Combined with the `|lb − la| ≤ k` length filter this gives `~lev` a
//! *complete* inverted-list access path ([`QGramIndex::candidates_lev_into`]),
//! which retired the paper's top-`l` LCS suffix-tree retrieval: top-`l` was
//! an approximation (it could miss the `l+1`-th true match), the count
//! bound never misses. PAD collisions between probe and master padding only
//! ever overcount shared grams — conservative in the complete direction.
//!
//! All three filters are *complete*: every master row whose value can
//! satisfy the predicate survives (degenerate thresholds — `min = 0`,
//! `j ≤ 1/3`, `k·q ≥ la + q − 1` — fall back to length-window or full
//! enumeration). Candidates still require full predicate verification.

use std::borrow::Cow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::qgram::QGramProfile;

/// Slack protecting the conservative direction of the float bounds: a
/// rounding error may only ever *admit* one extra candidate, never prune a
/// true match.
const EPS: f64 = 1e-9;

/// Minimum multiset q-gram overlap required for Jaccard ≥ `min`:
/// `⌈min/(1+min) · (la + lb)⌉` (conservatively rounded). `la`/`lb` are
/// profile sizes with multiplicity. `min ≤ 0` imposes no bound.
pub fn qgram_overlap_bound(la: usize, lb: usize, min: f64) -> usize {
    if min <= 0.0 {
        return 0;
    }
    let x = min / (1.0 + min) * (la + lb) as f64;
    (x - EPS).ceil().max(0.0) as usize
}

/// Inclusive window of candidate profile sizes for Jaccard ≥ `min`
/// against a probe of size `la`: `[⌈min·la⌉, ⌊la/min⌋]`. With `min ≤ 0`
/// every size qualifies.
pub fn qgram_length_window(la: usize, min: f64) -> (usize, usize) {
    if min <= 0.0 {
        return (0, usize::MAX);
    }
    let lo = (min * la as f64 - EPS).ceil().max(0.0) as usize;
    let hi = (la as f64 / min + EPS).floor() as usize;
    (lo, hi)
}

/// Minimum character-multiset overlap for Jaro ≥ `min_jaro`:
/// `⌈(3j−1)·la·lb/(la+lb)⌉`, at least 1 for non-empty strings. `j ≤ 1/3`
/// (or an empty side) imposes no bound.
pub fn jaro_overlap_bound(la: usize, lb: usize, min_jaro: f64) -> usize {
    let need = 3.0 * min_jaro - 1.0;
    if need <= 0.0 || la == 0 || lb == 0 {
        return 0;
    }
    let x = need * la as f64 * lb as f64 / (la + lb) as f64;
    ((x - EPS).ceil().max(0.0) as usize).max(1)
}

/// Inclusive window of candidate lengths for Jaro ≥ `min_jaro` against a
/// probe of `la` characters: `[(3j−2)·la, la/(3j−2)]` when `3j−2 > 0`
/// (`m ≤ min(la, lb)` forces the length ratio), otherwise unbounded.
pub fn jaro_length_window(la: usize, min_jaro: f64) -> (usize, usize) {
    let need = 3.0 * min_jaro - 2.0;
    if need <= 0.0 || la == 0 {
        return (0, usize::MAX);
    }
    let lo = (need * la as f64 - EPS).ceil().max(0.0) as usize;
    let hi = (la as f64 / need + EPS).floor() as usize;
    (lo, hi)
}

/// Minimum shared *padded* grams (multiset) required for edit distance
/// ≤ `k` between strings of `la` and `lb` **characters**:
/// `max(la, lb) + q − 1 − k·q` (0 when the subtraction underflows — no
/// usable bound). Each single-character edit destroys at most `q` of the
/// longer string's `max + q − 1` padded windows.
pub fn lev_count_bound(la: usize, lb: usize, q: usize, k: usize) -> usize {
    (la.max(lb) + q - 1).saturating_sub(k * q)
}

/// Inclusive window of candidate **character** lengths for edit distance
/// ≤ `k` against a probe of `la` characters: `[la − k, la + k]`.
pub fn lev_length_window(la: usize, k: usize) -> (usize, usize) {
    (la.saturating_sub(k), la + k)
}

/// Pass-through hasher for the posting map: gram hashes are already
/// FNV-mixed 64-bit values, re-hashing them buys nothing.
#[derive(Clone, Copy, Debug, Default)]
struct PremixedHasher(u64);

impl Hasher for PremixedHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys reach this map; mix bytes defensively anyway.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type GramMap<V> = HashMap<u64, V, BuildHasherDefault<PremixedHasher>>;

/// Reusable probe-side buffers for [`QGramIndex`] lookups: a per-distinct-
/// value overlap accumulator plus the list of values touched by the
/// current probe. One scratch serves any number of sequential probes with
/// zero steady-state allocation.
#[derive(Debug, Default)]
pub struct QGramScratch {
    /// Accumulated overlap per distinct value id; reset to 0 via `touched`
    /// after every probe.
    counts: Vec<u32>,
    touched: Vec<u32>,
    /// Probe grams ranked by posting length for the skip-walk: `(posting
    /// length, position in the probe profile)`.
    ranked: Vec<(u32, u32)>,
    /// Distinct-value candidates of the current probe (columnar `~lev`
    /// sweeps consume these before owner expansion).
    vids: Vec<u32>,
}

impl QGramScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        QGramScratch::default()
    }

    /// Detach the reusable value-id buffer, e.g. to hold one probe's
    /// [`QGramIndex::lev_candidate_values_into`] output across further
    /// scratch use. Hand it back with [`QGramScratch::restore_vids`] so
    /// the capacity keeps recycling.
    pub fn take_vids(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.vids)
    }

    /// Return a buffer detached by [`QGramScratch::take_vids`].
    pub fn restore_vids(&mut self, vids: Vec<u32>) {
        self.vids = vids;
    }
}

/// Inverted q-gram index over one master-data attribute column.
///
/// Rows are deduplicated by rendered value; posting lists and owner lists
/// store `u32` row ids (the engine's `TupleId` width). Null cells must be
/// skipped by the caller — a null never satisfies a similarity premise.
pub struct QGramIndex {
    q: usize,
    /// gram hash → `(distinct value id, multiplicity in that value)`.
    postings: GramMap<Vec<(u32, u32)>>,
    /// distinct value id → master rows carrying it (ascending).
    owners: Vec<Vec<u32>>,
    /// distinct value id → profile size (grams with multiplicity).
    lens: Vec<u32>,
    /// Flattened per-value profiles (sorted `(hash, mult)` runs,
    /// `gram_off`-delimited): the exact-overlap confirmation of the
    /// skip-walk probe discipline merges against these.
    gram_flat: Vec<(u64, u32)>,
    /// distinct value id → start of its run in `gram_flat` (+ end sentinel).
    gram_off: Vec<u32>,
    /// Value ids with an empty profile (empty string at q = 1).
    empty_values: Vec<u32>,
    /// Total master rows (for the degenerate all-rows answer).
    rows: usize,
}

impl QGramIndex {
    /// Build over `(row, rendered value)` pairs — typically a columnar
    /// scan that borrows straight out of the store and skips nulls.
    /// `rows` is the total master size (degenerate probes answer "all
    /// rows" even when some were skipped... they are then pruned by
    /// verification, so including them is the conservative choice).
    pub fn build<'a, I>(column: I, rows: usize, q: usize) -> Self
    where
        I: IntoIterator<Item = (u32, Cow<'a, str>)>,
    {
        assert!(q >= 1, "q-gram size must be at least 1");
        let mut ids: HashMap<Box<str>, u32> = HashMap::new();
        let mut postings: GramMap<Vec<(u32, u32)>> = GramMap::default();
        let mut owners: Vec<Vec<u32>> = Vec::new();
        let mut lens: Vec<u32> = Vec::new();
        let mut gram_flat: Vec<(u64, u32)> = Vec::new();
        let mut gram_off: Vec<u32> = vec![0];
        let mut empty_values: Vec<u32> = Vec::new();
        for (row, v) in column {
            let id = match ids.get(v.as_ref()) {
                Some(&id) => id,
                None => {
                    let id = owners.len() as u32;
                    let profile = QGramProfile::new(&v, q);
                    lens.push(profile.len() as u32);
                    if profile.is_empty() {
                        empty_values.push(id);
                    }
                    for &(g, c) in profile.grams() {
                        postings.entry(g).or_default().push((id, c));
                    }
                    gram_flat.extend_from_slice(profile.grams());
                    gram_off.push(gram_flat.len() as u32);
                    ids.insert(Box::from(v.as_ref()), id);
                    owners.push(Vec::new());
                    id
                }
            };
            owners[id as usize].push(row);
        }
        QGramIndex {
            q,
            postings,
            owners,
            lens,
            gram_flat,
            gram_off,
            empty_values,
            rows,
        }
    }

    /// Assemble an index from pre-built per-distinct-value parts — the
    /// entry point of the batched column-at-once builder, which hashes each
    /// distinct interned value exactly once (in parallel, into pooled
    /// [`crate::qgram::ProfileArena`]s) and hands the profiles here.
    /// `owners[id]` lists the master rows carrying distinct value `id`
    /// (ascending); the `id`-th yielded profile is that value's profile —
    /// only *borrowed*: the index copies the gram runs into its postings
    /// and flattened profiles, so the arenas keep their allocations for the
    /// next rebuild. Equivalent to [`QGramIndex::build`] over the expanded
    /// column.
    pub fn from_parts<'a, I>(profiles: I, owners: Vec<Vec<u32>>, rows: usize, q: usize) -> Self
    where
        I: IntoIterator<Item = &'a QGramProfile>,
    {
        let mut postings: GramMap<Vec<(u32, u32)>> = GramMap::default();
        let mut lens: Vec<u32> = Vec::with_capacity(owners.len());
        let mut gram_flat: Vec<(u64, u32)> = Vec::new();
        let mut gram_off: Vec<u32> = Vec::with_capacity(owners.len() + 1);
        gram_off.push(0);
        let mut empty_values: Vec<u32> = Vec::new();
        let mut count = 0usize;
        for (id, profile) in profiles.into_iter().enumerate() {
            assert_eq!(profile.q(), q, "profile q must match the index q");
            lens.push(profile.len() as u32);
            if profile.is_empty() {
                empty_values.push(id as u32);
            }
            for &(g, c) in profile.grams() {
                postings.entry(g).or_default().push((id as u32, c));
            }
            gram_flat.extend_from_slice(profile.grams());
            gram_off.push(gram_flat.len() as u32);
            count += 1;
        }
        assert_eq!(count, owners.len(), "one profile per value");
        QGramIndex {
            q,
            postings,
            owners,
            lens,
            gram_flat,
            gram_off,
            empty_values,
            rows,
        }
    }

    /// Window size the index was built with.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.owners.len()
    }

    /// Total master rows the index answers for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Master rows carrying distinct value `vid` (ascending) — expands the
    /// vids emitted by [`QGramIndex::lev_candidate_values_into`].
    pub fn owners(&self, vid: u32) -> &[u32] {
        &self.owners[vid as usize]
    }

    /// Walk one posting list, accumulating overlap for values whose
    /// profile size lies in `[lo, hi]`.
    #[inline]
    fn walk_posting(
        &self,
        list: &[(u32, u32)],
        pc: u32,
        lo: usize,
        hi: usize,
        scratch: &mut QGramScratch,
    ) {
        for &(vid, mc) in list {
            let lb = self.lens[vid as usize] as usize;
            if lb < lo || lb > hi {
                continue;
            }
            let c = &mut scratch.counts[vid as usize];
            if *c == 0 {
                scratch.touched.push(vid);
            }
            *c += pc.min(mc);
        }
    }

    /// Accumulate per-value overlap with `probe`, confined to values whose
    /// profile size lies in `[lo, hi]` — skipping up to `budget` probe-gram
    /// mass worth of the *longest* posting lists (prefix filtering).
    /// Returns the skipped mass `S`. Any value with true overlap
    /// `≥ budget + 1` still lands in the touched set (its overlap outside
    /// the skipped grams is ≥ 1), with an exact accumulated count when
    /// `S = 0` and a partial count `≥ overlap − S` otherwise.
    fn accumulate(
        &self,
        probe: &QGramProfile,
        lo: usize,
        hi: usize,
        budget: usize,
        scratch: &mut QGramScratch,
    ) -> usize {
        if scratch.counts.len() < self.owners.len() {
            scratch.counts.resize(self.owners.len(), 0);
        }
        if budget == 0 {
            for &(g, pc) in probe.grams() {
                if let Some(list) = self.postings.get(&g) {
                    self.walk_posting(list, pc, lo, hi, scratch);
                }
            }
            return 0;
        }
        // Rank the probe's grams by posting length (descending, position
        // as the deterministic tie-break) and spend the skip budget on the
        // most common grams first — these dominate the walk and carry the
        // least signal. Short lists are cheap to walk; skipping them would
        // waste bound tightness, so leave them in.
        const SKIP_MIN_POSTING: usize = 64;
        let grams = probe.grams();
        scratch.ranked.clear();
        for (pos, &(g, _)) in grams.iter().enumerate() {
            let plen = self.postings.get(&g).map_or(0, |l| l.len());
            scratch.ranked.push((plen as u32, pos as u32));
        }
        scratch
            .ranked
            .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut ranked = std::mem::take(&mut scratch.ranked);
        let mut budget_left = budget;
        let mut skipped = 0usize;
        for &(plen, pos) in &ranked {
            let (g, pc) = grams[pos as usize];
            let mass = pc as usize;
            if plen as usize >= SKIP_MIN_POSTING && mass <= budget_left {
                budget_left -= mass;
                skipped += mass;
                continue;
            }
            if let Some(list) = self.postings.get(&g) {
                self.walk_posting(list, pc, lo, hi, scratch);
            }
        }
        ranked.clear();
        scratch.ranked = ranked;
        skipped
    }

    /// Exact multiset overlap between `probe` and distinct value `vid`
    /// (sorted-run merge over the flattened profile).
    fn exact_overlap(&self, probe: &QGramProfile, vid: u32) -> usize {
        let s = self.gram_off[vid as usize] as usize;
        let e = self.gram_off[vid as usize + 1] as usize;
        let b = &self.gram_flat[s..e];
        let a = probe.grams();
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += (a[i].1.min(b[j].1)) as usize;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter
    }

    /// Drain the touched set, appending the owner rows of every value
    /// whose overlap meets `bound(profile size)`. With `skipped > 0` the
    /// accumulated counts are partial lower bounds: a value is kept when
    /// its partial count already meets the bound, pruned when even
    /// `partial + skipped` cannot, and exact-merged otherwise — the emitted
    /// set is identical to a full (skipless) accumulation.
    fn emit(
        &self,
        probe: &QGramProfile,
        skipped: usize,
        scratch: &mut QGramScratch,
        out: &mut Vec<u32>,
        bound: impl Fn(usize) -> usize,
    ) {
        for vid in scratch.touched.drain(..) {
            let partial = std::mem::take(&mut scratch.counts[vid as usize]) as usize;
            let need = bound(self.lens[vid as usize] as usize);
            if partial + skipped < need {
                continue;
            }
            if partial >= need || self.exact_overlap(probe, vid) >= need {
                out.extend_from_slice(&self.owners[vid as usize]);
            }
        }
    }

    /// [`Self::emit`] at distinct-value granularity: drains the touched set
    /// into value ids instead of expanding owner rows. Same skip-budget
    /// discipline (partial-accept / prune / exact-merge confirmation of the
    /// uncertain band), identical surviving value set.
    fn emit_values(
        &self,
        probe: &QGramProfile,
        skipped: usize,
        scratch: &mut QGramScratch,
        out: &mut Vec<u32>,
        bound: impl Fn(usize) -> usize,
    ) {
        for vid in scratch.touched.drain(..) {
            let partial = std::mem::take(&mut scratch.counts[vid as usize]) as usize;
            let need = bound(self.lens[vid as usize] as usize);
            if partial + skipped < need {
                continue;
            }
            if partial >= need || self.exact_overlap(probe, vid) >= need {
                out.push(vid);
            }
        }
    }

    /// Append every master row that can satisfy multiset-Jaccard ≥ `min`
    /// with `probe` (a complete superset of the true match set; order
    /// unspecified, rows unique). `probe.q()` must equal the index's `q`.
    pub fn candidates_jaccard_into(
        &self,
        probe: &QGramProfile,
        min: f64,
        scratch: &mut QGramScratch,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(probe.q(), self.q, "probe profile must share the index q");
        if min <= 0.0 {
            // Degenerate threshold: every pair scores ≥ 0.
            out.extend(0..self.rows as u32);
            return;
        }
        if probe.is_empty() {
            // J(∅, B) is 0 unless B is empty too (then 1).
            for &vid in &self.empty_values {
                out.extend_from_slice(&self.owners[vid as usize]);
            }
            return;
        }
        let la = probe.len();
        let (lo, hi) = qgram_length_window(la, min);
        // The overlap bound grows with the candidate's size, so its
        // minimum over the length window sits at `lo`. Completeness allows
        // skipping up to `bound − 1` probe-gram mass; spending only half
        // keeps the partial-count prefilter selective enough that the
        // exact-merge confirmation stays rare.
        let budget = qgram_overlap_bound(la, lo, min) / 2;
        let skipped = self.accumulate(probe, lo, hi, budget, scratch);
        self.emit(probe, skipped, scratch, out, |lb| {
            qgram_overlap_bound(la, lb, min)
        });
    }

    /// Append every master row whose value can be within edit distance `k`
    /// of the probe (a complete superset of the true match set; order
    /// unspecified, rows unique). `probe.q()` must equal the index's `q`.
    ///
    /// Non-degenerate probes (`la + q − 1 > k·q`) use count filtering: a
    /// candidate of `lb` characters must share at least
    /// [`lev_count_bound`]`(la, lb, q, k)` ≥ 1 padded grams, so walking the
    /// probe's posting lists reaches every one. Degenerate probes (short
    /// strings where the bound can vanish inside the `±k` length window)
    /// fall back to enumerating every value in the window — still bounded
    /// by length, never by gram overlap.
    pub fn candidates_lev_into(
        &self,
        probe: &QGramProfile,
        k: usize,
        scratch: &mut QGramScratch,
        out: &mut Vec<u32>,
    ) {
        let mut vids = std::mem::take(&mut scratch.vids);
        vids.clear();
        self.lev_candidate_values_into(probe, k, scratch, &mut vids);
        for &vid in &vids {
            out.extend_from_slice(&self.owners[vid as usize]);
        }
        scratch.vids = vids;
    }

    /// The distinct-value form of [`QGramIndex::candidates_lev_into`]:
    /// append every distinct value id whose value can be within edit
    /// distance `k` of the probe (ascending, unique). The column-at-a-time
    /// Myers driver sweeps one compiled probe pattern over these values —
    /// each distinct value is verified once, however many rows carry it —
    /// and then expands survivors through [`QGramIndex::owners`].
    pub fn lev_candidate_values_into(
        &self,
        probe: &QGramProfile,
        k: usize,
        scratch: &mut QGramScratch,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(probe.q(), self.q, "probe profile must share the index q");
        let q = self.q;
        let la = probe.char_len();
        let (lo_chars, hi_chars) = lev_length_window(la, k);
        // Profile size of an `n`-char padded profile is `n + q − 1`.
        let lo = lo_chars + q - 1;
        let hi = hi_chars + q - 1;
        let start = out.len();
        if la + q - 1 <= k * q {
            // Degenerate: some in-window length has a vanishing gram bound
            // (e.g. an empty master within k deletions shares no grams).
            // Keep every value in the length window.
            for vid in 0..self.owners.len() {
                let lb = self.lens[vid] as usize;
                if lb >= lo && lb <= hi {
                    out.push(vid as u32);
                }
            }
            return;
        }
        // `lev_count_bound` is `max(la, lb) + q − 1 − k·q`, minimized when
        // the candidate is no longer than the probe: `la + q − 1 − k·q`
        // (≥ 1 past the degenerate guard above). Half of it is spent as
        // skip budget — see `candidates_jaccard_into` for the tradeoff.
        let budget = (la + q - 1 - k * q) / 2;
        let skipped = self.accumulate(probe, lo, hi, budget, scratch);
        self.emit_values(probe, skipped, scratch, out, |lb_profile| {
            lev_count_bound(la, lb_profile - (q - 1), q, k)
        });
        out[start..].sort_unstable();
    }

    /// Append every master row that can satisfy Jaro ≥ `min_jaro` with the
    /// probe's 1-gram profile (complete superset; order unspecified, rows
    /// unique). The index must have been built with `q = 1`; Jaro-Winkler
    /// callers pass their derived Jaro floor.
    pub fn candidates_jaro_into(
        &self,
        probe: &QGramProfile,
        min_jaro: f64,
        scratch: &mut QGramScratch,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(self.q, 1, "the Jaro prefilter runs on a 1-gram index");
        assert_eq!(probe.q(), 1, "probe profile must be 1-gram");
        if 3.0 * min_jaro - 1.0 <= 0.0 {
            // No usable bound (jaro ≥ 1/3 is satisfiable with a single
            // shared character in the worst case — and trivially for
            // min ≤ 0); stay complete by keeping everything.
            out.extend(0..self.rows as u32);
            return;
        }
        if probe.is_empty() {
            // jaro("", v) is 1 for empty v, else 0.
            for &vid in &self.empty_values {
                out.extend_from_slice(&self.owners[vid as usize]);
            }
            return;
        }
        let la = probe.len();
        let (lo, hi) = jaro_length_window(la, min_jaro);
        // `jaro_overlap_bound` grows with `lb`, so the window floor gives
        // the minimal requirement (0 on an unbounded window — no skips).
        // Half of it is spent as skip budget — see `candidates_jaccard_into`.
        let budget = jaro_overlap_bound(la, lo, min_jaro) / 2;
        let skipped = self.accumulate(probe, lo, hi, budget, scratch);
        self.emit(probe, skipped, scratch, out, |lb| {
            jaro_overlap_bound(la, lb, min_jaro)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro::{jaro, jaro_winkler};
    use crate::qgram::qgram_jaccard;
    use proptest::prelude::*;

    fn index(col: &[&str], q: usize) -> QGramIndex {
        QGramIndex::build(
            col.iter()
                .enumerate()
                .map(|(i, s)| (i as u32, Cow::Borrowed(*s))),
            col.len(),
            q,
        )
    }

    fn jaccard_candidates(idx: &QGramIndex, probe: &str, min: f64) -> Vec<u32> {
        let mut scratch = QGramScratch::new();
        let mut out = Vec::new();
        idx.candidates_jaccard_into(
            &QGramProfile::new(probe, idx.q()),
            min,
            &mut scratch,
            &mut out,
        );
        out.sort_unstable();
        out
    }

    fn jaro_candidates(idx: &QGramIndex, probe: &str, min: f64) -> Vec<u32> {
        let mut scratch = QGramScratch::new();
        let mut out = Vec::new();
        idx.candidates_jaro_into(&QGramProfile::new(probe, 1), min, &mut scratch, &mut out);
        out.sort_unstable();
        out
    }

    fn lev_candidates(idx: &QGramIndex, probe: &str, k: usize) -> Vec<u32> {
        let mut scratch = QGramScratch::new();
        let mut out = Vec::new();
        idx.candidates_lev_into(
            &QGramProfile::new(probe, idx.q()),
            k,
            &mut scratch,
            &mut out,
        );
        out.sort_unstable();
        out
    }

    #[test]
    fn lev_bound_examples() {
        // "abc" vs itself, q=2: 4 padded grams, k=0 → all 4 shared.
        assert_eq!(lev_count_bound(3, 3, 2, 0), 4);
        // One edit destroys ≤ 2 bigrams.
        assert_eq!(lev_count_bound(3, 3, 2, 1), 2);
        // Underflow → no bound.
        assert_eq!(lev_count_bound(2, 1, 2, 2), 0);
        assert_eq!(lev_length_window(5, 2), (3, 7));
        assert_eq!(lev_length_window(1, 3), (0, 4));
    }

    #[test]
    fn lev_prunes_by_length_and_overlap() {
        let idx = index(&["Smith", "Smyth", "Brady", "Smithsonian"], 2);
        // k=1: "Smyth" in, "Brady" shares a length but few grams,
        // "Smithsonian" is length-pruned.
        assert_eq!(lev_candidates(&idx, "Smith", 1), vec![0, 1]);
    }

    #[test]
    fn lev_exact_value_is_always_a_candidate() {
        let idx = index(&["Robert", "Mark", "Robert"], 3);
        for k in 0..4 {
            let got = lev_candidates(&idx, "Robert", k);
            assert!(got.contains(&0) && got.contains(&2), "k={k}: {got:?}");
        }
    }

    #[test]
    fn lev_degenerate_short_probe_enumerates_length_window() {
        // la=1, q=2, k=1: 1+1 ≤ 2 → the degenerate path; empty masters are
        // within one deletion yet share zero grams.
        let idx = index(&["", "a", "xy", "abc"], 2);
        assert_eq!(lev_candidates(&idx, "a", 1), vec![0, 1, 2]);
        // Empty probe, k=1: only lengths ≤ 1 survive.
        assert_eq!(lev_candidates(&idx, "", 1), vec![0, 1]);
    }

    #[test]
    fn from_parts_equals_build() {
        let col = ["Smith", "Smyth", "", "Smith", "Brady"];
        let built = index(&col, 2);
        // Dedup in first-appearance order, as the batched builder does.
        let mut values: Vec<&str> = Vec::new();
        let mut owners: Vec<Vec<u32>> = Vec::new();
        for (row, v) in col.iter().enumerate() {
            match values.iter().position(|x| x == v) {
                Some(id) => owners[id].push(row as u32),
                None => {
                    values.push(v);
                    owners.push(vec![row as u32]);
                }
            }
        }
        let profiles: Vec<QGramProfile> = values.iter().map(|v| QGramProfile::new(v, 2)).collect();
        let assembled = QGramIndex::from_parts(profiles.iter(), owners, col.len(), 2);
        for probe in ["Smith", "Smit", "", "zzz"] {
            for k in 0..3 {
                assert_eq!(
                    lev_candidates(&built, probe, k),
                    lev_candidates(&assembled, probe, k),
                    "probe={probe:?} k={k}"
                );
            }
            let mut s1 = QGramScratch::new();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let p = QGramProfile::new(probe, 2);
            built.candidates_jaccard_into(&p, 0.4, &mut s1, &mut a);
            assembled.candidates_jaccard_into(&p, 0.4, &mut s1, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "jaccard probe={probe:?}");
        }
    }

    #[test]
    fn lev_value_candidates_expand_to_row_candidates() {
        let idx = index(&["Smith", "Smyth", "Smith", "Brady", ""], 2);
        let mut scratch = QGramScratch::new();
        for probe in ["Smith", "Smit", "", "zzz"] {
            for k in 0..3 {
                let p = QGramProfile::new(probe, 2);
                let mut vids = Vec::new();
                idx.lev_candidate_values_into(&p, k, &mut scratch, &mut vids);
                assert!(vids.windows(2).all(|w| w[0] < w[1]), "sorted unique vids");
                let mut expanded: Vec<u32> = vids
                    .iter()
                    .flat_map(|&v| idx.owners(v).iter().copied())
                    .collect();
                expanded.sort_unstable();
                assert_eq!(
                    expanded,
                    lev_candidates(&idx, probe, k),
                    "probe={probe:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn exact_value_is_always_a_candidate() {
        let idx = index(&["Robert Brady", "Mark Smith", "Robert Brady"], 2);
        let got = jaccard_candidates(&idx, "Robert Brady", 0.9);
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn dissimilar_values_are_pruned() {
        let idx = index(&["Robert Brady", "Mark Smith"], 2);
        let got = jaccard_candidates(&idx, "Robert Bradey", 0.5);
        assert_eq!(got, vec![0], "only the near-duplicate survives");
    }

    #[test]
    fn degenerate_min_zero_keeps_every_row() {
        let idx = index(&["a", "b", "c"], 2);
        assert_eq!(jaccard_candidates(&idx, "zzz", 0.0), vec![0, 1, 2]);
    }

    #[test]
    fn min_one_requires_identical_profiles() {
        let idx = index(&["abc", "abd", "abc"], 2);
        assert_eq!(jaccard_candidates(&idx, "abc", 1.0), vec![0, 2]);
    }

    #[test]
    fn empty_probe_matches_only_empty_values() {
        let idx = index(&["", "abc", ""], 1);
        assert_eq!(jaccard_candidates(&idx, "", 0.5), vec![0, 2]);
        assert_eq!(jaro_candidates(&idx, "", 0.9), vec![0, 2]);
    }

    #[test]
    fn overlap_bound_boundary_values() {
        // min = 0: no bound at any sizes.
        assert_eq!(qgram_overlap_bound(7, 3, 0.0), 0);
        // min = 1: full overlap of equal-size profiles — exact equality.
        assert_eq!(qgram_overlap_bound(5, 5, 1.0), 5);
        // min = 1 with unequal sizes can never be met (bound exceeds the
        // smaller profile) — the length window already excludes them.
        assert!(qgram_overlap_bound(5, 7, 1.0) > 5);
        assert_eq!(qgram_length_window(5, 1.0), (5, 5));
        // The standard T = ⌈min/(1+min)(la+lb)⌉ shape.
        assert_eq!(qgram_overlap_bound(10, 10, 0.5), 7);
    }

    #[test]
    fn jaro_bound_boundary_values() {
        // j ≤ 1/3 gives no bound; above it at least one shared char.
        assert_eq!(jaro_overlap_bound(4, 4, 1.0 / 3.0), 0);
        assert_eq!(jaro_overlap_bound(1, 9, 0.4), 1);
        // Identical 4-char strings at j = 1 need all 4 chars shared.
        assert_eq!(jaro_overlap_bound(4, 4, 1.0), 4);
        // Empty side: no bound (handled by the empty-probe path).
        assert_eq!(jaro_overlap_bound(0, 4, 0.9), 0);
    }

    #[test]
    fn jaro_degenerate_threshold_keeps_every_row() {
        let idx = index(&["abc", "xyz"], 1);
        assert_eq!(jaro_candidates(&idx, "abc", 0.3), vec![0, 1]);
    }

    proptest! {
        /// Completeness: every row whose value satisfies the predicate is
        /// a candidate — the invariant the master index's plans rest on.
        #[test]
        fn jaccard_filter_is_complete(
            col in proptest::collection::vec("[a-c]{0,6}", 1..10),
            probe in "[a-c]{0,6}",
            q in 1usize..4,
            min_pct in 0usize..101
        ) {
            let min = min_pct as f64 / 100.0;
            let refs: Vec<&str> = col.iter().map(String::as_str).collect();
            let idx = index(&refs, q);
            let got = jaccard_candidates(&idx, &probe, min);
            for (row, v) in col.iter().enumerate() {
                if qgram_jaccard(&probe, v, q) >= min {
                    prop_assert!(
                        got.contains(&(row as u32)),
                        "row {row} ({v:?}) matches {probe:?} at {min} but was pruned"
                    );
                }
            }
        }

        /// Same completeness for the Jaro and Jaro-Winkler prefilter (jw
        /// probes with the derived floor (min − 0.4)/0.6).
        #[test]
        fn jaro_filter_is_complete(
            col in proptest::collection::vec("[a-c]{0,6}", 1..10),
            probe in "[a-c]{0,6}",
            min_pct in 0usize..101
        ) {
            let min = min_pct as f64 / 100.0;
            let refs: Vec<&str> = col.iter().map(String::as_str).collect();
            let idx = index(&refs, 1);
            let got = jaro_candidates(&idx, &probe, min);
            for (row, v) in col.iter().enumerate() {
                if jaro(&probe, v) >= min {
                    prop_assert!(
                        got.contains(&(row as u32)),
                        "row {row} ({v:?}) jaro-matches {probe:?} at {min} but was pruned"
                    );
                }
            }
            let jw_floor = (min - 0.4) / 0.6;
            let got_jw = jaro_candidates(&idx, &probe, jw_floor);
            for (row, v) in col.iter().enumerate() {
                if jaro_winkler(&probe, v) >= min {
                    prop_assert!(
                        got_jw.contains(&(row as u32)),
                        "row {row} ({v:?}) jw-matches {probe:?} at {min} but was pruned"
                    );
                }
            }
        }

        /// Completeness of the lev count bound: every row within edit
        /// distance k is a candidate, for every q and k — including the
        /// degenerate short-probe/empty-string shapes and non-ASCII values.
        #[test]
        fn lev_filter_is_complete(
            col in proptest::collection::vec("[abé]{0,6}", 1..10),
            probe in "[abé]{0,6}",
            q in 1usize..4,
            k in 0usize..5
        ) {
            let refs: Vec<&str> = col.iter().map(String::as_str).collect();
            let idx = index(&refs, q);
            let got = lev_candidates(&idx, &probe, k);
            for (row, v) in col.iter().enumerate() {
                if crate::edit_distance::within_edit_distance(&probe, v, k) {
                    prop_assert!(
                        got.contains(&(row as u32)),
                        "row {row} ({v:?}) is within edit {k} of {probe:?} but was pruned (q={q})"
                    );
                }
            }
        }

        /// Candidates are unique row ids within range.
        #[test]
        fn candidates_are_unique_and_in_range(
            col in proptest::collection::vec("[a-c]{0,5}", 1..8),
            probe in "[a-c]{0,5}",
            min_pct in 0usize..101
        ) {
            let refs: Vec<&str> = col.iter().map(String::as_str).collect();
            let idx = index(&refs, 2);
            let got = jaccard_candidates(&idx, &probe, min_pct as f64 / 100.0);
            let mut dedup = got.clone();
            dedup.dedup();
            prop_assert_eq!(&got, &dedup, "duplicates in candidate list");
            prop_assert!(got.iter().all(|&r| (r as usize) < col.len()));
        }
    }
}
