//! Levenshtein edit distance: full DP and the banded variant used for
//! threshold checks.
//!
//! The paper defines similarity for MDs as "the minimum number of
//! single-character insertions, deletions and substitutions needed to
//! convert a value from v to v′" (§8), with two strings similar when the
//! distance is within a pre-defined threshold `K`. Threshold checks dominate
//! the matching workload, so [`levenshtein_bounded`] computes only the
//! `2K+1`-wide diagonal band — O(K·min(|a|,|b|)) instead of O(|a|·|b|).

/// Full Levenshtein distance (two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    levenshtein_chars(&av, &bv)
}

fn levenshtein_chars(av: &[char], bv: &[char]) -> usize {
    if av.is_empty() {
        return bv.len();
    }
    if bv.is_empty() {
        return av.len();
    }
    let (short, long) = if av.len() <= bv.len() {
        (av, bv)
    } else {
        (bv, av)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Banded Levenshtein: returns `Some(d)` iff the distance `d ≤ max`, `None`
/// otherwise (early-exits as soon as the whole band exceeds `max`).
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    // Cheap length filter: |len(a) - len(b)| is a lower bound.
    if av.len().abs_diff(bv.len()) > max {
        return None;
    }
    if max == 0 {
        return (av == bv).then_some(0);
    }
    let (short, long) = if av.len() <= bv.len() {
        (&av, &bv)
    } else {
        (&bv, &av)
    };
    let n = short.len();
    // Sentinel: one past the threshold, saturating to dodge overflow.
    let inf = max + 1;
    let mut prev: Vec<usize> = (0..=n).map(|j| if j <= max { j } else { inf }).collect();
    let mut cur = vec![inf; n + 1];
    for (i, lc) in long.iter().enumerate() {
        // Band for row i+1: columns within `max` of the diagonal.
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        cur[lo.saturating_sub(1)] = if lo == 0 { row } else { inf };
        if lo == 0 {
            cur[0] = row.min(inf);
        }
        let mut best = inf;
        for j in lo.max(1)..=hi {
            let sc = short[j - 1];
            let sub = prev[j - 1].saturating_add(usize::from(*lc != sc));
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            let v = sub.min(del).min(ins).min(inf);
            cur[j] = v;
            best = best.min(v);
        }
        if lo == 0 {
            best = best.min(cur[0]);
        }
        if best > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        // Reset the cells just outside next row's band so stale values from
        // two rows ago cannot leak in.
        let next = row + 1;
        let nlo = next.saturating_sub(max);
        if nlo >= 1 {
            cur[nlo - 1] = inf;
        }
        if let Some(slot) = cur.get_mut((next + max).min(n) + 1..) {
            for s in slot.iter_mut().take(1) {
                *s = inf;
            }
        }
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

/// Is `levenshtein(a, b) ≤ max`? The predicate form used by MDs.
pub fn within_edit_distance(a: &str, b: &str, max: usize) -> bool {
    levenshtein_bounded(a, b, max).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("Bob", "Robert"), 4);
        assert_eq!(levenshtein("Mark", "Max"), 2);
        assert_eq!(levenshtein("M.", "Mark"), 3);
    }

    #[test]
    fn unicode_is_character_level() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_when_within() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 5), Some(3));
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
    }

    #[test]
    fn bounded_rejects_when_beyond() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "xyz", 2), None);
        assert_eq!(levenshtein_bounded("abcdef", "a", 3), None); // length filter
    }

    #[test]
    fn zero_threshold_is_equality() {
        assert!(within_edit_distance("same", "same", 0));
        assert!(!within_edit_distance("same", "sane", 0));
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        // distance("abc","axc") = 1
        assert!(within_edit_distance("abc", "axc", 1));
        assert!(!within_edit_distance("abc", "xyc", 1));
    }

    proptest! {
        /// The banded computation must agree with the full DP for every
        /// (string, string, threshold) combination.
        #[test]
        fn bounded_matches_full(a in "[a-d]{0,12}", b in "[a-d]{0,12}", max in 0usize..8) {
            let full = levenshtein(&a, &b);
            let banded = levenshtein_bounded(&a, &b, max);
            if full <= max {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        /// Metric axioms: symmetry and identity.
        #[test]
        fn symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in "[a-e]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        /// Triangle inequality.
        #[test]
        fn triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        /// One random edit moves distance by at most 1.
        #[test]
        fn single_edit_changes_distance_by_at_most_one(a in "[a-d]{1,10}", idx in 0usize..10, ch_idx in 0usize..4) {
            let mut chars: Vec<char> = a.chars().collect();
            let i = idx % chars.len();
            chars[i] = (b'a' + ch_idx as u8) as char;
            let b: String = chars.iter().collect();
            prop_assert!(levenshtein(&a, &b) <= 1);
        }
    }
}
