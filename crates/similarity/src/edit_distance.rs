//! Levenshtein edit distance: bit-parallel Myers kernel with an Ukkonen
//! cutoff, plus the reference DP implementations it is parity-tested against.
//!
//! The paper defines similarity for MDs as "the minimum number of
//! single-character insertions, deletions and substitutions needed to
//! convert a value from v to v′" (§8), with two strings similar when the
//! distance is within a pre-defined threshold `K`. Threshold checks dominate
//! the matching workload, so the production kernel is Myers' bit-vector
//! algorithm: one DP *column* per text character, all pattern rows advanced
//! at once as carry-propagating word operations — O(⌈m/64⌉·n) words instead
//! of O(m·n) cells. Threshold checks add the Ukkonen cutoff: after column
//! `j` the final distance is at least `score − (n − j)`, so a probe that can
//! no longer finish within `K` exits early.
//!
//! Three entry tiers, fastest first:
//!
//! 1. ASCII strings with the shorter side ≤ 64 chars take a zero-allocation
//!    single-word path with a stack `Peq` table ([`levenshtein_bounded`]).
//! 2. [`EditScratch`] callers reuse pattern bitmaps and block vectors across
//!    calls ([`levenshtein_bounded_with`]).
//! 3. [`MyersPattern`] lets a caller build the pattern bitmaps once per
//!    master value and stream many probe texts against it — the shape the
//!    `MatchScratch` symbol cache in `uniclean-rules` exploits.
//!
//! The pre-existing two-row and banded DPs survive in [`reference`] as the
//! oracle for the differential proptests and the benchmark baseline.

/// Pattern bitmaps (`Peq`) for Myers' algorithm, reusable across texts.
///
/// The pattern occupies `⌈m/64⌉` 64-bit blocks; bit `i` of `Peq[c]` is set
/// when pattern character `i` equals `c`. ASCII patterns use a dense
/// 128-row table indexed by byte; others a sorted `(char, slot)` map with a
/// shared all-zero row for characters absent from the pattern.
#[derive(Debug, Clone, Default)]
pub struct MyersPattern {
    /// Pattern length in characters.
    m: usize,
    /// Number of 64-bit blocks covering the pattern (≥ 1 when `m > 0`).
    blocks: usize,
    /// Dense ASCII table (`128 * blocks`) or per-distinct-char rows.
    peq: Vec<u64>,
    /// Sorted distinct pattern chars; row `i` lives at `peq[i*blocks..]`.
    /// Empty for ASCII patterns (the dense table is used instead).
    chars: Vec<char>,
    /// All-zero row returned for characters the pattern never contains.
    zeros: Vec<u64>,
}

impl MyersPattern {
    /// Build the bitmaps for `pattern`.
    pub fn new(pattern: &str) -> Self {
        let mut p = Self::default();
        p.build(pattern);
        p
    }

    /// Rebuild in place for a new pattern, reusing the allocations.
    pub fn build(&mut self, pattern: &str) {
        self.peq.clear();
        self.chars.clear();
        if pattern.is_ascii() {
            self.m = pattern.len();
            self.blocks = self.m.div_ceil(64).max(1);
            self.peq.resize(128 * self.blocks, 0);
            for (i, &b) in pattern.as_bytes().iter().enumerate() {
                self.peq[b as usize * self.blocks + i / 64] |= 1u64 << (i % 64);
            }
        } else {
            self.chars.extend(pattern.chars());
            self.m = self.chars.len();
            self.blocks = self.m.div_ceil(64).max(1);
            self.chars.sort_unstable();
            self.chars.dedup();
            self.peq.resize(self.chars.len() * self.blocks, 0);
            for (i, c) in pattern.chars().enumerate() {
                let slot = self.chars.binary_search(&c).expect("char interned above");
                self.peq[slot * self.blocks + i / 64] |= 1u64 << (i % 64);
            }
        }
        self.zeros.clear();
        self.zeros.resize(self.blocks, 0);
    }

    /// Pattern length in characters.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Is the pattern the empty string?
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    #[inline]
    fn row_ascii(&self, byte: u8) -> &[u64] {
        let at = byte as usize * self.blocks;
        &self.peq[at..at + self.blocks]
    }

    #[inline]
    fn row_char(&self, c: char) -> &[u64] {
        if self.chars.is_empty() {
            // ASCII table: non-ASCII text chars never match the pattern.
            if (c as u32) < 128 {
                self.row_ascii(c as u8)
            } else {
                &self.zeros
            }
        } else {
            match self.chars.binary_search(&c) {
                Ok(slot) => {
                    let at = slot * self.blocks;
                    &self.peq[at..at + self.blocks]
                }
                Err(_) => &self.zeros,
            }
        }
    }

    /// `Some(d)` iff the edit distance between the pattern and `text` is
    /// `d ≤ max`. Block-based Myers with the Ukkonen cutoff; `scratch`
    /// provides the per-call `Pv`/`Mv` block vectors (its own pattern slot
    /// is untouched, so a cached `MyersPattern` can be probed while the
    /// scratch is borrowed).
    pub fn distance_bounded(
        &self,
        text: &str,
        max: usize,
        scratch: &mut EditScratch,
    ) -> Option<usize> {
        let n = if text.is_ascii() {
            text.len()
        } else {
            text.chars().count()
        };
        if self.m.abs_diff(n) > max {
            return None;
        }
        if self.m == 0 {
            return Some(n); // n ≤ max by the length filter
        }
        if n == 0 {
            return Some(self.m);
        }
        // Cap the cutoff threshold so `max + remaining` cannot overflow.
        let max = max.min(self.m + n);
        if self.blocks == 1 {
            self.distance_single_word(text, n, max)
        } else {
            self.distance_blocks(text, n, max, &mut scratch.pv, &mut scratch.mv)
        }
    }

    /// Single-word Myers (`m ≤ 64`): the whole column fits one u64.
    fn distance_single_word(&self, text: &str, n: usize, max: usize) -> Option<usize> {
        let last = 1u64 << (self.m - 1);
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = self.m;
        let mut j = 0usize;
        let mut step = |eq: u64| -> bool {
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            if ph & last != 0 {
                score += 1;
            } else if mh & last != 0 {
                score -= 1;
            }
            ph = (ph << 1) | 1;
            mh <<= 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
            j += 1;
            score > max + (n - j) // Ukkonen: cannot finish within max
        };
        if text.is_ascii() && self.chars.is_empty() {
            for &b in text.as_bytes() {
                if step(self.row_ascii(b)[0]) {
                    return None;
                }
            }
        } else {
            for c in text.chars() {
                if step(self.row_char(c)[0]) {
                    return None;
                }
            }
        }
        (score <= max).then_some(score)
    }

    /// Block-based Myers (`m > 64`): carries chain block-to-block through
    /// the horizontal delta `hin ∈ {-1, 0, +1}`; the score is tracked at
    /// bit `(m−1) mod 64` of the last block. Garbage above that bit is
    /// harmless: additions and shifts only propagate carries upward.
    fn distance_blocks(
        &self,
        text: &str,
        n: usize,
        max: usize,
        pv: &mut Vec<u64>,
        mv: &mut Vec<u64>,
    ) -> Option<usize> {
        let blocks = self.blocks;
        let last_block = blocks - 1;
        let last = 1u64 << ((self.m - 1) % 64);
        pv.clear();
        pv.resize(blocks, !0u64);
        mv.clear();
        mv.resize(blocks, 0);
        let mut score = self.m;
        let mut j = 0usize;
        let mut column = |row: &[u64]| -> bool {
            let mut hin: i32 = 1; // boundary row: D[0][j] − D[0][j−1] = +1
            for b in 0..blocks {
                let mut eq = row[b];
                let pvb = pv[b];
                let mvb = mv[b];
                let xv = eq | mvb;
                if hin < 0 {
                    eq |= 1;
                }
                let xh = (((eq & pvb).wrapping_add(pvb)) ^ pvb) | eq;
                let mut ph = mvb | !(xh | pvb);
                let mut mh = pvb & xh;
                if b == last_block {
                    if ph & last != 0 {
                        score += 1;
                    } else if mh & last != 0 {
                        score -= 1;
                    }
                }
                let hout = ((ph >> 63) & 1) as i32 - ((mh >> 63) & 1) as i32;
                ph <<= 1;
                mh <<= 1;
                if hin > 0 {
                    ph |= 1;
                } else if hin < 0 {
                    mh |= 1;
                }
                pv[b] = mh | !(xv | ph);
                mv[b] = ph & xv;
                hin = hout;
            }
            j += 1;
            score > max + (n - j)
        };
        if text.is_ascii() && self.chars.is_empty() {
            for &b in text.as_bytes() {
                if column(self.row_ascii(b)) {
                    return None;
                }
            }
        } else {
            for c in text.chars() {
                if column(self.row_char(c)) {
                    return None;
                }
            }
        }
        (score <= max).then_some(score)
    }

    /// Column-at-a-time threshold sweep: probe this one compiled pattern
    /// against an entire column of texts, emitting one verdict bit per text
    /// into `out` — bit `i` is set iff `lev(pattern, texts[i]) ≤ max`.
    ///
    /// This is the driver behind the engine's `~lev` verification: the
    /// probe value is compiled **once** and every distinct master value the
    /// count filter admits streams through it, instead of compiling (or
    /// cache-probing) a `MyersPattern` per master value and re-dispatching
    /// per pair. The per-text work is exactly [`Self::distance_bounded`]
    /// with its entry branches hoisted out of the loop:
    ///
    /// - the length window `|m − n| ≤ max` prefilters each text before any
    ///   column is computed (the count filter already bounds lengths, so
    ///   this mostly catches the window edges);
    /// - the single-word vs. block dispatch and the ASCII-pattern check are
    ///   resolved once for the whole column;
    /// - `scratch` provides the block vectors, so the sweep allocates
    ///   nothing beyond the verdict bitmap's words;
    /// - when the pattern is ASCII with `m ≤ 64` and AVX2 is active
    ///   ([`crate::simd::active_level`]), ASCII texts are swept **four per
    ///   vector register**: the scalar Myers recurrence is latency-bound on
    ///   its serial word operations, so running four independent texts
    ///   through one carry chain recovers most of that dead issue width.
    ///
    /// Verdicts are **bit-identical** to calling [`Self::distance_bounded`]
    /// per text (`is_some()`), at any dispatch level — the per-value path
    /// stays available as the differential oracle and the
    /// `UNICLEAN_FORCE_SCALAR` fallback. (The lane kernel keeps the exact
    /// per-lane Ukkonen cutoff and snapshots each lane's score the step its
    /// text ends, so even the early exits agree with the scalar kernel.)
    pub fn distance_column<I>(
        &self,
        texts: I,
        max: usize,
        scratch: &mut EditScratch,
        out: &mut ColumnVerdicts,
    ) where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        out.clear();
        let single = self.blocks == 1;
        #[cfg(target_arch = "x86_64")]
        let lanes = single
            && self.chars.is_empty()
            && self.m > 0
            && crate::simd::active_level() == crate::simd::SimdLevel::Avx2;
        #[cfg(not(target_arch = "x86_64"))]
        let lanes = false;
        // Lane staging area: verdict slot + the text waiting to be swept.
        let mut buf: [Option<(usize, I::Item)>; LANE_BUF] = std::array::from_fn(|_| None);
        let mut buffered = 0usize;
        for t in texts {
            let text = t.as_ref();
            let n = if text.is_ascii() {
                text.len()
            } else {
                text.chars().count()
            };
            if self.m.abs_diff(n) > max {
                out.push(false);
                continue;
            }
            if self.m == 0 || n == 0 {
                // The length filter already bounded the nonzero side by max.
                out.push(true);
                continue;
            }
            if lanes && text.is_ascii() {
                // Reserve the verdict bit now (sweeps fill it later), so
                // bitmap order still matches text order.
                buf[buffered] = Some((out.len(), t));
                buffered += 1;
                out.push(false);
                if buffered == LANE_BUF {
                    self.flush_lanes(&mut buf, &mut buffered, max, out);
                }
                continue;
            }
            let cap = max.min(self.m + n);
            let hit = if single {
                self.distance_single_word(text, n, cap).is_some()
            } else {
                self.distance_blocks(text, n, cap, &mut scratch.pv, &mut scratch.mv)
                    .is_some()
            };
            out.push(hit);
        }
        self.flush_lanes(&mut buf, &mut buffered, max, out);
    }

    /// Drain the lane staging area: a full house goes through the AVX2
    /// sweep, a partial tail through the scalar single-word kernel.
    fn flush_lanes<T: AsRef<str>>(
        &self,
        buf: &mut [Option<(usize, T)>; LANE_BUF],
        buffered: &mut usize,
        max: usize,
        out: &mut ColumnVerdicts,
    ) {
        #[cfg(target_arch = "x86_64")]
        if *buffered == LANE_BUF {
            let texts: [&[u8]; LANE_BUF] = std::array::from_fn(|i| {
                buf[i]
                    .as_ref()
                    .expect("full lanes staged")
                    .1
                    .as_ref()
                    .as_bytes()
            });
            // SAFETY: `distance_column` only stages lanes after
            // `active_level()` confirmed AVX2 support on this CPU.
            let verdicts = unsafe { lanes::sweep_avx2(&self.peq, self.m, max, texts) };
            for (slot, hit) in buf.iter_mut().zip(verdicts) {
                let (idx, _) = slot.take().expect("staged lane");
                out.set(idx, hit);
            }
            *buffered = 0;
            return;
        }
        for slot in buf.iter_mut().take(*buffered) {
            let (idx, t) = slot.take().expect("staged lane");
            let text = t.as_ref();
            let n = text.len();
            let cap = max.min(self.m + n);
            out.set(idx, self.distance_single_word(text, n, cap).is_some());
        }
        *buffered = 0;
    }
}

/// Lane staging capacity for [`MyersPattern::distance_column`] — the AVX2
/// sweep's lane count on x86-64, a dormant buffer elsewhere.
#[cfg(target_arch = "x86_64")]
const LANE_BUF: usize = lanes::LANES;
#[cfg(not(target_arch = "x86_64"))]
const LANE_BUF: usize = 8;

#[cfg(target_arch = "x86_64")]
mod lanes {
    use std::arch::x86_64::*;

    /// How many texts one [`sweep_avx2`] call processes.
    pub(super) const LANES: usize = 8;

    /// Eight-lane single-word Myers: one compiled ASCII pattern (dense
    /// `peq` table, `1 ≤ m ≤ 64`) swept against eight ASCII texts
    /// simultaneously — two 256-bit register groups of four u64 lanes, each
    /// lane holding one text's `Pv`/`Mv` column state. The scalar recurrence
    /// is latency-bound on its serial word operations, so the two groups'
    /// independent carry chains overlap in the pipeline. Returns
    /// `verdict[i]` ⇔ `MyersPattern::distance_single_word(texts[i], …)`
    /// would return `Some`.
    ///
    /// Exactness notes, matching the scalar kernel:
    /// - `Ph`/`Mh` bits are disjoint, so the scalar `if/else if` score
    ///   update equals the unconditional `+bit(Ph) − bit(Mh)` done here;
    /// - each lane's score is snapshotted on the step its text ends; later
    ///   steps (running on `Eq = 0` until the longest lane finishes) cannot
    ///   perturb a finished lane's verdict;
    /// - the Ukkonen cutoff (`score + j > cap + n`) latches per lane into a
    ///   `dead` mask, checked every other step to keep the hot loop lean —
    ///   sound at any cadence, because the cutoff condition is a lower
    ///   bound on the final score: a lane it would kill that runs to its
    ///   end instead still finishes with `score > cap`, the same verdict.
    ///   The sweep exits once every lane is dead or finished.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep_avx2(
        peq: &[u64],
        m: usize,
        max: usize,
        texts: [&[u8]; LANES],
    ) -> [bool; LANES] {
        debug_assert!((1..=64).contains(&m) && peq.len() == 128);
        let lens: [i64; LANES] = std::array::from_fn(|i| texts[i].len() as i64);
        let caps: [i64; LANES] = std::array::from_fn(|i| max.min(m + texts[i].len()) as i64);
        let bases: [i64; LANES] = std::array::from_fn(|i| caps[i] + lens[i]);
        let max_n = texts.iter().map(|t| t.len()).max().expect("8 lanes");

        let load = |a: &[i64]| _mm256_loadu_si256(a.as_ptr() as *const __m256i);
        let len_v = [load(&lens[..4]), load(&lens[4..])];
        let base_v = [load(&bases[..4]), load(&bases[4..])];
        let ones = _mm256_set1_epi64x(-1);
        let one = _mm256_set1_epi64x(1);
        let last = _mm256_set1_epi64x((1u64 << (m - 1)) as i64);
        let last_shift = _mm_cvtsi32_si128((m - 1) as i32);
        let zero = _mm256_setzero_si256();
        let mut pv = [ones; 2];
        let mut mv = [zero; 2];
        let mut score = [_mm256_set1_epi64x(m as i64); 2];
        let mut fin = [zero; 2];
        let mut dead = [zero; 2];
        let mut j_v = zero;

        for j in 0..max_n {
            // Finished lanes read Eq = 0; their state churns harmlessly
            // because their score is already snapshotted in `fin`.
            let eqs: [i64; LANES] =
                std::array::from_fn(|i| texts[i].get(j).map_or(0, |&b| peq[b as usize]) as i64);
            let j0_v = j_v;
            j_v = _mm256_add_epi64(j_v, one); // j_v is now j+1
            for g in 0..2 {
                let eq = load(&eqs[g * 4..g * 4 + 4]);
                let xv = _mm256_or_si256(eq, mv[g]);
                let xh = _mm256_or_si256(
                    _mm256_xor_si256(_mm256_add_epi64(_mm256_and_si256(eq, pv[g]), pv[g]), pv[g]),
                    eq,
                );
                let mut ph =
                    _mm256_or_si256(mv[g], _mm256_andnot_si256(_mm256_or_si256(xh, pv[g]), ones));
                let mut mh = _mm256_and_si256(pv[g], xh);
                let inc = _mm256_srl_epi64(_mm256_and_si256(ph, last), last_shift);
                let dec = _mm256_srl_epi64(_mm256_and_si256(mh, last), last_shift);
                score[g] = _mm256_sub_epi64(_mm256_add_epi64(score[g], inc), dec);
                ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), one);
                mh = _mm256_slli_epi64(mh, 1);
                pv[g] = _mm256_or_si256(mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph), ones));
                mv[g] = _mm256_and_si256(ph, xv);
                let ended = _mm256_cmpeq_epi64(len_v[g], j_v);
                fin[g] = _mm256_blendv_epi8(fin[g], score[g], ended);
            }
            if j % 2 == 1 {
                let mut alive = zero;
                for g in 0..2 {
                    // `real`: did this step consume an actual char (j < n)?
                    let real = _mm256_cmpgt_epi64(len_v[g], j0_v);
                    let cut = _mm256_cmpgt_epi64(_mm256_add_epi64(score[g], j_v), base_v[g]);
                    dead[g] = _mm256_or_si256(dead[g], _mm256_and_si256(cut, real));
                    let pending = _mm256_cmpgt_epi64(len_v[g], j_v);
                    alive = _mm256_or_si256(alive, _mm256_andnot_si256(dead[g], pending));
                }
                if _mm256_testz_si256(alive, alive) != 0 {
                    break;
                }
            }
        }
        let mut fins = [0i64; LANES];
        let mut deads = [0i64; LANES];
        for g in 0..2 {
            _mm256_storeu_si256(fins.as_mut_ptr().add(g * 4) as *mut __m256i, fin[g]);
            _mm256_storeu_si256(deads.as_mut_ptr().add(g * 4) as *mut __m256i, dead[g]);
        }
        std::array::from_fn(|i| deads[i] == 0 && fins[i] <= caps[i])
    }
}

/// Verdict bitmap emitted by [`MyersPattern::distance_column`]: one bit per
/// swept text, packed 64 to a word. Reusable across sweeps.
#[derive(Debug, Default, Clone)]
pub struct ColumnVerdicts {
    bits: Vec<u64>,
    len: usize,
}

impl ColumnVerdicts {
    /// Fresh empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove all verdicts, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }

    /// Append one verdict.
    #[inline]
    pub fn push(&mut self, hit: bool) {
        if self.len.is_multiple_of(64) {
            self.bits.push(0);
        }
        if hit {
            *self.bits.last_mut().expect("word pushed above") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Overwrite verdict `i` (must already have been pushed).
    #[inline]
    pub fn set(&mut self, i: usize, hit: bool) {
        assert!(i < self.len, "verdict index {i} out of range {}", self.len);
        let word = &mut self.bits[i / 64];
        if hit {
            *word |= 1u64 << (i % 64);
        } else {
            *word &= !(1u64 << (i % 64));
        }
    }

    /// Verdict for text `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "verdict index {i} out of range {}", self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of verdicts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the bitmap empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of positive verdicts.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the positive verdicts, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            std::iter::successors((word != 0).then_some(word), |&x| {
                let rest = x & (x - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |x| w * 64 + x.trailing_zeros() as usize)
        })
    }
}

/// Reusable buffers for the Myers kernels: a transient pattern slot plus the
/// `Pv`/`Mv` block vectors of the long-pattern path. One per probe thread;
/// embedded in the engine's `ProbeScratch`.
#[derive(Debug, Default)]
pub struct EditScratch {
    pattern: MyersPattern,
    pv: Vec<u64>,
    mv: Vec<u64>,
}

impl EditScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Zero-allocation single-word Myers for ASCII pattern/text with `m ≤ 64`:
/// the `Peq` table lives on the stack.
fn myers_ascii_small(pat: &[u8], text: &[u8], max: usize) -> Option<usize> {
    debug_assert!(!pat.is_empty() && pat.len() <= 64);
    let m = pat.len();
    let n = text.len();
    let max = max.min(m + n);
    let mut peq = [0u64; 128];
    for (i, &c) in pat.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let last = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    for (j, &c) in text.iter().enumerate() {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        } else if mh & last != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        if score > max + (n - j - 1) {
            return None;
        }
    }
    (score <= max).then_some(score)
}

#[inline]
fn bounded_impl(a: &str, b: &str, max: usize, scratch: Option<&mut EditScratch>) -> Option<usize> {
    // Pattern = shorter string: fewest blocks, widest Ukkonen band.
    let (pat, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pat.is_empty() {
        let n = if text.is_ascii() {
            text.len()
        } else {
            text.chars().count()
        };
        return (n <= max).then_some(n);
    }
    if pat.is_ascii() && text.is_ascii() {
        if text.len() - pat.len() > max {
            return None;
        }
        if pat.len() <= 64 {
            return myers_ascii_small(pat.as_bytes(), text.as_bytes(), max);
        }
    }
    match scratch {
        Some(s) => {
            // Split-borrow: rebuild the scratch pattern, then run it with
            // the scratch's own block vectors.
            let EditScratch { pattern, pv, mv } = s;
            pattern.build(pat);
            let n = if text.is_ascii() {
                text.len()
            } else {
                text.chars().count()
            };
            if pattern.m.abs_diff(n) > max {
                return None;
            }
            if n == 0 {
                return Some(pattern.m);
            }
            let max = max.min(pattern.m + n);
            if pattern.blocks == 1 {
                pattern.distance_single_word(text, n, max)
            } else {
                pattern.distance_blocks(text, n, max, pv, mv)
            }
        }
        None => {
            let mut local = EditScratch::new();
            bounded_impl(a, b, max, Some(&mut local))
        }
    }
}

/// Full Levenshtein distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    // An unbounded probe is a bounded probe whose threshold cannot trip.
    levenshtein_bounded(a, b, a.len() + b.len()).expect("distance ≤ len(a)+len(b)")
}

/// Full Levenshtein distance, reusing `scratch` buffers.
pub fn levenshtein_with(a: &str, b: &str, scratch: &mut EditScratch) -> usize {
    bounded_impl(a, b, a.len() + b.len(), Some(scratch)).expect("distance ≤ len(a)+len(b)")
}

/// Threshold Levenshtein: `Some(d)` iff the distance `d ≤ max`, `None`
/// otherwise. Myers bit-vector kernel with the Ukkonen early exit.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    bounded_impl(a, b, max, None)
}

/// [`levenshtein_bounded`] reusing `scratch` buffers (no allocation for any
/// input shape once the scratch is warm).
pub fn levenshtein_bounded_with(
    a: &str,
    b: &str,
    max: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    bounded_impl(a, b, max, Some(scratch))
}

/// Is `levenshtein(a, b) ≤ max`? The predicate form used by MDs.
pub fn within_edit_distance(a: &str, b: &str, max: usize) -> bool {
    levenshtein_bounded(a, b, max).is_some()
}

/// [`within_edit_distance`] reusing `scratch` buffers.
pub fn within_edit_distance_with(a: &str, b: &str, max: usize, scratch: &mut EditScratch) -> bool {
    levenshtein_bounded_with(a, b, max, scratch).is_some()
}

/// The scalar DP implementations the bit-parallel kernels replaced, kept as
/// the oracle for differential tests and the benchmark baseline.
pub mod reference {
    /// Full Levenshtein distance (two-row DP).
    pub fn levenshtein_dp(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        levenshtein_chars(&av, &bv)
    }

    fn levenshtein_chars(av: &[char], bv: &[char]) -> usize {
        if av.is_empty() {
            return bv.len();
        }
        if bv.is_empty() {
            return av.len();
        }
        let (short, long) = if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        };
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut cur = vec![0usize; short.len() + 1];
        for (i, lc) in long.iter().enumerate() {
            cur[0] = i + 1;
            for (j, sc) in short.iter().enumerate() {
                let sub = prev[j] + usize::from(lc != sc);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[short.len()]
    }

    /// Banded Levenshtein: returns `Some(d)` iff the distance `d ≤ max`,
    /// `None` otherwise (early-exits as soon as the whole band exceeds
    /// `max`). O(K·min(|a|,|b|)) — the pre-Myers production kernel.
    pub fn levenshtein_bounded_dp(a: &str, b: &str, max: usize) -> Option<usize> {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        // Cheap length filter: |len(a) - len(b)| is a lower bound.
        if av.len().abs_diff(bv.len()) > max {
            return None;
        }
        if max == 0 {
            return (av == bv).then_some(0);
        }
        let (short, long) = if av.len() <= bv.len() {
            (&av, &bv)
        } else {
            (&bv, &av)
        };
        let n = short.len();
        // Sentinel: one past the threshold, saturating to dodge overflow.
        let inf = max + 1;
        let mut prev: Vec<usize> = (0..=n).map(|j| if j <= max { j } else { inf }).collect();
        let mut cur = vec![inf; n + 1];
        for (i, lc) in long.iter().enumerate() {
            // Band for row i+1: columns within `max` of the diagonal.
            let row = i + 1;
            let lo = row.saturating_sub(max);
            let hi = (row + max).min(n);
            cur[lo.saturating_sub(1)] = if lo == 0 { row } else { inf };
            if lo == 0 {
                cur[0] = row.min(inf);
            }
            let mut best = inf;
            for j in lo.max(1)..=hi {
                let sc = short[j - 1];
                let sub = prev[j - 1].saturating_add(usize::from(*lc != sc));
                let del = prev[j].saturating_add(1);
                let ins = cur[j - 1].saturating_add(1);
                let v = sub.min(del).min(ins).min(inf);
                cur[j] = v;
                best = best.min(v);
            }
            if lo == 0 {
                best = best.min(cur[0]);
            }
            if best > max {
                return None;
            }
            std::mem::swap(&mut prev, &mut cur);
            // Reset the cells just outside next row's band so stale values
            // from two rows ago cannot leak in.
            let next = row + 1;
            let nlo = next.saturating_sub(max);
            if nlo >= 1 {
                cur[nlo - 1] = inf;
            }
            if let Some(slot) = cur.get_mut((next + max).min(n) + 1..) {
                for s in slot.iter_mut().take(1) {
                    *s = inf;
                }
            }
        }
        let d = prev[n];
        (d <= max).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("Bob", "Robert"), 4);
        assert_eq!(levenshtein("Mark", "Max"), 2);
        assert_eq!(levenshtein("M.", "Mark"), 3);
    }

    #[test]
    fn unicode_is_character_level() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_when_within() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 5), Some(3));
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
    }

    #[test]
    fn bounded_rejects_when_beyond() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "xyz", 2), None);
        assert_eq!(levenshtein_bounded("abcdef", "a", 3), None); // length filter
    }

    #[test]
    fn zero_threshold_is_equality() {
        assert!(within_edit_distance("same", "same", 0));
        assert!(!within_edit_distance("same", "sane", 0));
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        // distance("abc","axc") = 1
        assert!(within_edit_distance("abc", "axc", 1));
        assert!(!within_edit_distance("abc", "xyc", 1));
    }

    #[test]
    fn long_patterns_cross_block_boundaries() {
        // m > 64 exercises the multi-block carry chain.
        let a = "x".repeat(150);
        let mut b = a.clone();
        b.replace_range(70..71, "y"); // one substitution near the block seam
        assert_eq!(levenshtein(&a, &b), 1);
        assert_eq!(levenshtein_bounded(&a, &b, 1), Some(1));
        let c = format!("{}{}", "z".repeat(5), &a[5..]);
        assert_eq!(levenshtein(&a, &c), 5);
        assert_eq!(levenshtein_bounded(&a, &c, 4), None);
    }

    #[test]
    fn pattern_reuse_matches_one_shot() {
        let pat = MyersPattern::new("Synthesis");
        let mut scratch = EditScratch::new();
        for text in ["Synthesis", "Synthessi", "Sunthesis!", "", "Syn"] {
            for k in 0..5 {
                assert_eq!(
                    pat.distance_bounded(text, k, &mut scratch),
                    levenshtein_bounded("Synthesis", text, k),
                    "text={text:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn column_sweep_crosses_word_boundaries() {
        // Pattern lengths at the single-word/block seam (63/64/65) swept
        // over texts straddling the same boundary plus degenerate shapes.
        let mut scratch = EditScratch::new();
        let mut verdicts = ColumnVerdicts::new();
        for plen in [0usize, 1, 63, 64, 65, 130] {
            let pattern: String = (0..plen).map(|i| (b'a' + (i % 3) as u8) as char).collect();
            let pat = MyersPattern::new(&pattern);
            let texts: Vec<String> = [0usize, 1, 62, 63, 64, 65, 66, 129, 131]
                .iter()
                .map(|&n| (0..n).map(|i| (b'a' + (i % 4) as u8) as char).collect())
                .collect();
            for max in [0usize, 1, 2, 5, 70] {
                pat.distance_column(texts.iter(), max, &mut scratch, &mut verdicts);
                assert_eq!(verdicts.len(), texts.len());
                for (i, t) in texts.iter().enumerate() {
                    assert_eq!(
                        verdicts.get(i),
                        pat.distance_bounded(t, max, &mut scratch).is_some(),
                        "plen={plen} max={max} text_len={}",
                        t.len()
                    );
                }
                let ones: Vec<usize> = verdicts.iter_ones().collect();
                assert_eq!(ones.len(), verdicts.count_ones());
                assert!(ones.iter().all(|&i| verdicts.get(i)));
            }
        }
    }

    #[test]
    fn lane_sweep_matches_scalar_across_batch_seams() {
        // ASCII single-word patterns route eligible texts through the
        // 4-lane AVX2 sweep (where supported). Exercise every batching
        // seam: column lengths 0..=9 (remainders 1–3), texts interleaved
        // with non-ASCII (scalar path) and length-filtered entries, lane
        // texts of unequal lengths dying at different steps, and both
        // forced dispatch settings pinned against `distance_bounded`.
        use crate::simd::set_forced_scalar;
        let mut scratch = EditScratch::new();
        let mut verdicts = ColumnVerdicts::new();
        let pattern = "interaction between record matching and data repairing";
        let pat = MyersPattern::new(pattern);
        let texts: Vec<String> = (0..9)
            .map(|i| match i % 4 {
                0 => pattern.replacen('a', "x", i / 2), // near misses
                1 => format!("{pattern}{}", "y".repeat(i)),
                2 => "caf\u{e9} r\u{e9}cord matching".to_string(), // non-ASCII
                _ => pattern.chars().rev().collect(),              // far miss, same length
            })
            .collect();
        for take in 0..=texts.len() {
            for max in [0usize, 1, 2, 3, 8] {
                for forced in [Some(false), Some(true)] {
                    set_forced_scalar(forced);
                    pat.distance_column(texts.iter().take(take), max, &mut scratch, &mut verdicts);
                    set_forced_scalar(None);
                    assert_eq!(verdicts.len(), take);
                    for (i, t) in texts.iter().take(take).enumerate() {
                        assert_eq!(
                            verdicts.get(i),
                            pat.distance_bounded(t, max, &mut scratch).is_some(),
                            "take={take} max={max} forced={forced:?} text={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(levenshtein_bounded("", "", 0), Some(0));
        assert_eq!(levenshtein_bounded("", "ab", 1), None); // |u|−|v| > k
        assert_eq!(levenshtein_bounded("", "ab", 2), Some(2));
        assert_eq!(levenshtein_bounded("日本語", "日本", 1), Some(1));
        assert_eq!(levenshtein_bounded("日本語", "nihongo", 3), None);
    }

    proptest! {
        /// Myers must agree with both reference DPs for every
        /// (string, string, threshold) combination — ASCII inputs.
        #[test]
        fn myers_matches_reference_ascii(a in "[a-d]{0,12}", b in "[a-d]{0,12}", max in 0usize..8) {
            let full = reference::levenshtein_dp(&a, &b);
            let banded = reference::levenshtein_bounded_dp(&a, &b, max);
            prop_assert_eq!(levenshtein(&a, &b), full);
            prop_assert_eq!(levenshtein_bounded(&a, &b, max), banded);
            if full <= max {
                prop_assert_eq!(levenshtein_bounded(&a, &b, max), Some(full));
            } else {
                prop_assert_eq!(levenshtein_bounded(&a, &b, max), None);
            }
        }

        /// Same agreement over arbitrary Unicode (exercises the char
        /// fallback path and mixed ASCII/non-ASCII sides).
        #[test]
        fn myers_matches_reference_unicode(a in "[abé日λ]{0,10}", b in "[abé日λ]{0,10}", max in 0usize..5) {
            let full = reference::levenshtein_dp(&a, &b);
            prop_assert_eq!(levenshtein(&a, &b), full);
            prop_assert_eq!(
                levenshtein_bounded(&a, &b, max),
                reference::levenshtein_bounded_dp(&a, &b, max)
            );
        }

        /// Long strings exercise the multi-block path; parity with the DP.
        #[test]
        fn myers_matches_reference_long(a in "[ab]{60,90}", b in "[ab]{60,90}", max in 0usize..6) {
            prop_assert_eq!(
                levenshtein_bounded(&a, &b, max),
                reference::levenshtein_bounded_dp(&a, &b, max)
            );
            prop_assert_eq!(levenshtein(&a, &b), reference::levenshtein_dp(&a, &b));
        }

        /// The column sweep's verdict bitmap equals per-text
        /// `distance_bounded` probes — the reference DP transitively — over
        /// random ASCII/non-ASCII columns.
        #[test]
        fn column_sweep_matches_per_value(
            pattern in "[abé日λ]{0,12}",
            texts in proptest::collection::vec("[abé日λ]{0,12}", 0..12),
            max in 0usize..5,
        ) {
            let pat = MyersPattern::new(&pattern);
            let mut scratch = EditScratch::new();
            let mut verdicts = ColumnVerdicts::new();
            pat.distance_column(texts.iter(), max, &mut scratch, &mut verdicts);
            prop_assert_eq!(verdicts.len(), texts.len());
            for (i, t) in texts.iter().enumerate() {
                prop_assert_eq!(
                    verdicts.get(i),
                    reference::levenshtein_bounded_dp(&pattern, t, max).is_some(),
                    "text {}", i
                );
            }
        }

        /// ASCII columns long enough to engage the 4-lane sweep (and its
        /// per-lane Ukkonen cutoffs) agree with the reference DP.
        #[test]
        fn lane_sweep_matches_reference_ascii(
            pattern in "[a-d]{1,60}",
            texts in proptest::collection::vec("[a-d]{0,64}", 1..11),
            max in 0usize..7,
        ) {
            let pat = MyersPattern::new(&pattern);
            let mut scratch = EditScratch::new();
            let mut verdicts = ColumnVerdicts::new();
            pat.distance_column(texts.iter(), max, &mut scratch, &mut verdicts);
            for (i, t) in texts.iter().enumerate() {
                prop_assert_eq!(
                    verdicts.get(i),
                    reference::levenshtein_bounded_dp(&pattern, t, max).is_some(),
                    "text {}", i
                );
            }
        }

        /// The cached-pattern entry point agrees with the one-shot kernel.
        #[test]
        fn cached_pattern_matches_one_shot(a in "[abé日λ]{0,12}", b in "[abé日λ]{0,12}", max in 0usize..5) {
            let pat = MyersPattern::new(&a);
            let mut scratch = EditScratch::new();
            prop_assert_eq!(
                pat.distance_bounded(&b, max, &mut scratch),
                reference::levenshtein_bounded_dp(&a, &b, max)
            );
        }

        /// Scratch reuse across heterogeneous calls never corrupts results.
        #[test]
        fn scratch_reuse_is_sound(pairs in proptest::collection::vec(("[abé日λ]{0,10}", "[abé日λ]{0,10}", 0usize..5), 1..8)) {
            let mut scratch = EditScratch::new();
            for (a, b, max) in &pairs {
                prop_assert_eq!(
                    levenshtein_bounded_with(a, b, *max, &mut scratch),
                    reference::levenshtein_bounded_dp(a, b, *max)
                );
            }
        }

        /// Metric axioms: symmetry and identity.
        #[test]
        fn symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in "[abé日λ]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        /// Triangle inequality.
        #[test]
        fn triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        /// One random edit moves distance by at most 1.
        #[test]
        fn single_edit_changes_distance_by_at_most_one(a in "[a-d]{1,10}", idx in 0usize..10, ch_idx in 0usize..4) {
            let mut chars: Vec<char> = a.chars().collect();
            let i = idx % chars.len();
            chars[i] = (b'a' + ch_idx as u8) as char;
            let b: String = chars.iter().collect();
            prop_assert!(levenshtein(&a, &b) <= 1);
        }
    }
}
