//! Levenshtein edit distance: bit-parallel Myers kernel with an Ukkonen
//! cutoff, plus the reference DP implementations it is parity-tested against.
//!
//! The paper defines similarity for MDs as "the minimum number of
//! single-character insertions, deletions and substitutions needed to
//! convert a value from v to v′" (§8), with two strings similar when the
//! distance is within a pre-defined threshold `K`. Threshold checks dominate
//! the matching workload, so the production kernel is Myers' bit-vector
//! algorithm: one DP *column* per text character, all pattern rows advanced
//! at once as carry-propagating word operations — O(⌈m/64⌉·n) words instead
//! of O(m·n) cells. Threshold checks add the Ukkonen cutoff: after column
//! `j` the final distance is at least `score − (n − j)`, so a probe that can
//! no longer finish within `K` exits early.
//!
//! Three entry tiers, fastest first:
//!
//! 1. ASCII strings with the shorter side ≤ 64 chars take a zero-allocation
//!    single-word path with a stack `Peq` table ([`levenshtein_bounded`]).
//! 2. [`EditScratch`] callers reuse pattern bitmaps and block vectors across
//!    calls ([`levenshtein_bounded_with`]).
//! 3. [`MyersPattern`] lets a caller build the pattern bitmaps once per
//!    master value and stream many probe texts against it — the shape the
//!    `MatchScratch` symbol cache in `uniclean-rules` exploits.
//!
//! The pre-existing two-row and banded DPs survive in [`reference`] as the
//! oracle for the differential proptests and the benchmark baseline.

/// Pattern bitmaps (`Peq`) for Myers' algorithm, reusable across texts.
///
/// The pattern occupies `⌈m/64⌉` 64-bit blocks; bit `i` of `Peq[c]` is set
/// when pattern character `i` equals `c`. ASCII patterns use a dense
/// 128-row table indexed by byte; others a sorted `(char, slot)` map with a
/// shared all-zero row for characters absent from the pattern.
#[derive(Debug, Clone, Default)]
pub struct MyersPattern {
    /// Pattern length in characters.
    m: usize,
    /// Number of 64-bit blocks covering the pattern (≥ 1 when `m > 0`).
    blocks: usize,
    /// Dense ASCII table (`128 * blocks`) or per-distinct-char rows.
    peq: Vec<u64>,
    /// Sorted distinct pattern chars; row `i` lives at `peq[i*blocks..]`.
    /// Empty for ASCII patterns (the dense table is used instead).
    chars: Vec<char>,
    /// All-zero row returned for characters the pattern never contains.
    zeros: Vec<u64>,
}

impl MyersPattern {
    /// Build the bitmaps for `pattern`.
    pub fn new(pattern: &str) -> Self {
        let mut p = Self::default();
        p.build(pattern);
        p
    }

    /// Rebuild in place for a new pattern, reusing the allocations.
    pub fn build(&mut self, pattern: &str) {
        self.peq.clear();
        self.chars.clear();
        if pattern.is_ascii() {
            self.m = pattern.len();
            self.blocks = self.m.div_ceil(64).max(1);
            self.peq.resize(128 * self.blocks, 0);
            for (i, &b) in pattern.as_bytes().iter().enumerate() {
                self.peq[b as usize * self.blocks + i / 64] |= 1u64 << (i % 64);
            }
        } else {
            self.chars.extend(pattern.chars());
            self.m = self.chars.len();
            self.blocks = self.m.div_ceil(64).max(1);
            self.chars.sort_unstable();
            self.chars.dedup();
            self.peq.resize(self.chars.len() * self.blocks, 0);
            for (i, c) in pattern.chars().enumerate() {
                let slot = self.chars.binary_search(&c).expect("char interned above");
                self.peq[slot * self.blocks + i / 64] |= 1u64 << (i % 64);
            }
        }
        self.zeros.clear();
        self.zeros.resize(self.blocks, 0);
    }

    /// Pattern length in characters.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Is the pattern the empty string?
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    #[inline]
    fn row_ascii(&self, byte: u8) -> &[u64] {
        let at = byte as usize * self.blocks;
        &self.peq[at..at + self.blocks]
    }

    #[inline]
    fn row_char(&self, c: char) -> &[u64] {
        if self.chars.is_empty() {
            // ASCII table: non-ASCII text chars never match the pattern.
            if (c as u32) < 128 {
                self.row_ascii(c as u8)
            } else {
                &self.zeros
            }
        } else {
            match self.chars.binary_search(&c) {
                Ok(slot) => {
                    let at = slot * self.blocks;
                    &self.peq[at..at + self.blocks]
                }
                Err(_) => &self.zeros,
            }
        }
    }

    /// `Some(d)` iff the edit distance between the pattern and `text` is
    /// `d ≤ max`. Block-based Myers with the Ukkonen cutoff; `scratch`
    /// provides the per-call `Pv`/`Mv` block vectors (its own pattern slot
    /// is untouched, so a cached `MyersPattern` can be probed while the
    /// scratch is borrowed).
    pub fn distance_bounded(
        &self,
        text: &str,
        max: usize,
        scratch: &mut EditScratch,
    ) -> Option<usize> {
        let n = if text.is_ascii() {
            text.len()
        } else {
            text.chars().count()
        };
        if self.m.abs_diff(n) > max {
            return None;
        }
        if self.m == 0 {
            return Some(n); // n ≤ max by the length filter
        }
        if n == 0 {
            return Some(self.m);
        }
        // Cap the cutoff threshold so `max + remaining` cannot overflow.
        let max = max.min(self.m + n);
        if self.blocks == 1 {
            self.distance_single_word(text, n, max)
        } else {
            self.distance_blocks(text, n, max, &mut scratch.pv, &mut scratch.mv)
        }
    }

    /// Single-word Myers (`m ≤ 64`): the whole column fits one u64.
    fn distance_single_word(&self, text: &str, n: usize, max: usize) -> Option<usize> {
        let last = 1u64 << (self.m - 1);
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = self.m;
        let mut j = 0usize;
        let mut step = |eq: u64| -> bool {
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            if ph & last != 0 {
                score += 1;
            } else if mh & last != 0 {
                score -= 1;
            }
            ph = (ph << 1) | 1;
            mh <<= 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
            j += 1;
            score > max + (n - j) // Ukkonen: cannot finish within max
        };
        if text.is_ascii() && self.chars.is_empty() {
            for &b in text.as_bytes() {
                if step(self.row_ascii(b)[0]) {
                    return None;
                }
            }
        } else {
            for c in text.chars() {
                if step(self.row_char(c)[0]) {
                    return None;
                }
            }
        }
        (score <= max).then_some(score)
    }

    /// Block-based Myers (`m > 64`): carries chain block-to-block through
    /// the horizontal delta `hin ∈ {-1, 0, +1}`; the score is tracked at
    /// bit `(m−1) mod 64` of the last block. Garbage above that bit is
    /// harmless: additions and shifts only propagate carries upward.
    fn distance_blocks(
        &self,
        text: &str,
        n: usize,
        max: usize,
        pv: &mut Vec<u64>,
        mv: &mut Vec<u64>,
    ) -> Option<usize> {
        let blocks = self.blocks;
        let last_block = blocks - 1;
        let last = 1u64 << ((self.m - 1) % 64);
        pv.clear();
        pv.resize(blocks, !0u64);
        mv.clear();
        mv.resize(blocks, 0);
        let mut score = self.m;
        let mut j = 0usize;
        let mut column = |row: &[u64]| -> bool {
            let mut hin: i32 = 1; // boundary row: D[0][j] − D[0][j−1] = +1
            for b in 0..blocks {
                let mut eq = row[b];
                let pvb = pv[b];
                let mvb = mv[b];
                let xv = eq | mvb;
                if hin < 0 {
                    eq |= 1;
                }
                let xh = (((eq & pvb).wrapping_add(pvb)) ^ pvb) | eq;
                let mut ph = mvb | !(xh | pvb);
                let mut mh = pvb & xh;
                if b == last_block {
                    if ph & last != 0 {
                        score += 1;
                    } else if mh & last != 0 {
                        score -= 1;
                    }
                }
                let hout = ((ph >> 63) & 1) as i32 - ((mh >> 63) & 1) as i32;
                ph <<= 1;
                mh <<= 1;
                if hin > 0 {
                    ph |= 1;
                } else if hin < 0 {
                    mh |= 1;
                }
                pv[b] = mh | !(xv | ph);
                mv[b] = ph & xv;
                hin = hout;
            }
            j += 1;
            score > max + (n - j)
        };
        if text.is_ascii() && self.chars.is_empty() {
            for &b in text.as_bytes() {
                if column(self.row_ascii(b)) {
                    return None;
                }
            }
        } else {
            for c in text.chars() {
                if column(self.row_char(c)) {
                    return None;
                }
            }
        }
        (score <= max).then_some(score)
    }
}

/// Reusable buffers for the Myers kernels: a transient pattern slot plus the
/// `Pv`/`Mv` block vectors of the long-pattern path. One per probe thread;
/// embedded in the engine's `ProbeScratch`.
#[derive(Debug, Default)]
pub struct EditScratch {
    pattern: MyersPattern,
    pv: Vec<u64>,
    mv: Vec<u64>,
}

impl EditScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Zero-allocation single-word Myers for ASCII pattern/text with `m ≤ 64`:
/// the `Peq` table lives on the stack.
fn myers_ascii_small(pat: &[u8], text: &[u8], max: usize) -> Option<usize> {
    debug_assert!(!pat.is_empty() && pat.len() <= 64);
    let m = pat.len();
    let n = text.len();
    let max = max.min(m + n);
    let mut peq = [0u64; 128];
    for (i, &c) in pat.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let last = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    for (j, &c) in text.iter().enumerate() {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        } else if mh & last != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        if score > max + (n - j - 1) {
            return None;
        }
    }
    (score <= max).then_some(score)
}

#[inline]
fn bounded_impl(a: &str, b: &str, max: usize, scratch: Option<&mut EditScratch>) -> Option<usize> {
    // Pattern = shorter string: fewest blocks, widest Ukkonen band.
    let (pat, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pat.is_empty() {
        let n = if text.is_ascii() {
            text.len()
        } else {
            text.chars().count()
        };
        return (n <= max).then_some(n);
    }
    if pat.is_ascii() && text.is_ascii() {
        if text.len() - pat.len() > max {
            return None;
        }
        if pat.len() <= 64 {
            return myers_ascii_small(pat.as_bytes(), text.as_bytes(), max);
        }
    }
    match scratch {
        Some(s) => {
            // Split-borrow: rebuild the scratch pattern, then run it with
            // the scratch's own block vectors.
            let EditScratch { pattern, pv, mv } = s;
            pattern.build(pat);
            let n = if text.is_ascii() {
                text.len()
            } else {
                text.chars().count()
            };
            if pattern.m.abs_diff(n) > max {
                return None;
            }
            if n == 0 {
                return Some(pattern.m);
            }
            let max = max.min(pattern.m + n);
            if pattern.blocks == 1 {
                pattern.distance_single_word(text, n, max)
            } else {
                pattern.distance_blocks(text, n, max, pv, mv)
            }
        }
        None => {
            let mut local = EditScratch::new();
            bounded_impl(a, b, max, Some(&mut local))
        }
    }
}

/// Full Levenshtein distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    // An unbounded probe is a bounded probe whose threshold cannot trip.
    levenshtein_bounded(a, b, a.len() + b.len()).expect("distance ≤ len(a)+len(b)")
}

/// Full Levenshtein distance, reusing `scratch` buffers.
pub fn levenshtein_with(a: &str, b: &str, scratch: &mut EditScratch) -> usize {
    bounded_impl(a, b, a.len() + b.len(), Some(scratch)).expect("distance ≤ len(a)+len(b)")
}

/// Threshold Levenshtein: `Some(d)` iff the distance `d ≤ max`, `None`
/// otherwise. Myers bit-vector kernel with the Ukkonen early exit.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    bounded_impl(a, b, max, None)
}

/// [`levenshtein_bounded`] reusing `scratch` buffers (no allocation for any
/// input shape once the scratch is warm).
pub fn levenshtein_bounded_with(
    a: &str,
    b: &str,
    max: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    bounded_impl(a, b, max, Some(scratch))
}

/// Is `levenshtein(a, b) ≤ max`? The predicate form used by MDs.
pub fn within_edit_distance(a: &str, b: &str, max: usize) -> bool {
    levenshtein_bounded(a, b, max).is_some()
}

/// [`within_edit_distance`] reusing `scratch` buffers.
pub fn within_edit_distance_with(a: &str, b: &str, max: usize, scratch: &mut EditScratch) -> bool {
    levenshtein_bounded_with(a, b, max, scratch).is_some()
}

/// The scalar DP implementations the bit-parallel kernels replaced, kept as
/// the oracle for differential tests and the benchmark baseline.
pub mod reference {
    /// Full Levenshtein distance (two-row DP).
    pub fn levenshtein_dp(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        levenshtein_chars(&av, &bv)
    }

    fn levenshtein_chars(av: &[char], bv: &[char]) -> usize {
        if av.is_empty() {
            return bv.len();
        }
        if bv.is_empty() {
            return av.len();
        }
        let (short, long) = if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        };
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut cur = vec![0usize; short.len() + 1];
        for (i, lc) in long.iter().enumerate() {
            cur[0] = i + 1;
            for (j, sc) in short.iter().enumerate() {
                let sub = prev[j] + usize::from(lc != sc);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[short.len()]
    }

    /// Banded Levenshtein: returns `Some(d)` iff the distance `d ≤ max`,
    /// `None` otherwise (early-exits as soon as the whole band exceeds
    /// `max`). O(K·min(|a|,|b|)) — the pre-Myers production kernel.
    pub fn levenshtein_bounded_dp(a: &str, b: &str, max: usize) -> Option<usize> {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        // Cheap length filter: |len(a) - len(b)| is a lower bound.
        if av.len().abs_diff(bv.len()) > max {
            return None;
        }
        if max == 0 {
            return (av == bv).then_some(0);
        }
        let (short, long) = if av.len() <= bv.len() {
            (&av, &bv)
        } else {
            (&bv, &av)
        };
        let n = short.len();
        // Sentinel: one past the threshold, saturating to dodge overflow.
        let inf = max + 1;
        let mut prev: Vec<usize> = (0..=n).map(|j| if j <= max { j } else { inf }).collect();
        let mut cur = vec![inf; n + 1];
        for (i, lc) in long.iter().enumerate() {
            // Band for row i+1: columns within `max` of the diagonal.
            let row = i + 1;
            let lo = row.saturating_sub(max);
            let hi = (row + max).min(n);
            cur[lo.saturating_sub(1)] = if lo == 0 { row } else { inf };
            if lo == 0 {
                cur[0] = row.min(inf);
            }
            let mut best = inf;
            for j in lo.max(1)..=hi {
                let sc = short[j - 1];
                let sub = prev[j - 1].saturating_add(usize::from(*lc != sc));
                let del = prev[j].saturating_add(1);
                let ins = cur[j - 1].saturating_add(1);
                let v = sub.min(del).min(ins).min(inf);
                cur[j] = v;
                best = best.min(v);
            }
            if lo == 0 {
                best = best.min(cur[0]);
            }
            if best > max {
                return None;
            }
            std::mem::swap(&mut prev, &mut cur);
            // Reset the cells just outside next row's band so stale values
            // from two rows ago cannot leak in.
            let next = row + 1;
            let nlo = next.saturating_sub(max);
            if nlo >= 1 {
                cur[nlo - 1] = inf;
            }
            if let Some(slot) = cur.get_mut((next + max).min(n) + 1..) {
                for s in slot.iter_mut().take(1) {
                    *s = inf;
                }
            }
        }
        let d = prev[n];
        (d <= max).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("Bob", "Robert"), 4);
        assert_eq!(levenshtein("Mark", "Max"), 2);
        assert_eq!(levenshtein("M.", "Mark"), 3);
    }

    #[test]
    fn unicode_is_character_level() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_when_within() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 5), Some(3));
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
    }

    #[test]
    fn bounded_rejects_when_beyond() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "xyz", 2), None);
        assert_eq!(levenshtein_bounded("abcdef", "a", 3), None); // length filter
    }

    #[test]
    fn zero_threshold_is_equality() {
        assert!(within_edit_distance("same", "same", 0));
        assert!(!within_edit_distance("same", "sane", 0));
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        // distance("abc","axc") = 1
        assert!(within_edit_distance("abc", "axc", 1));
        assert!(!within_edit_distance("abc", "xyc", 1));
    }

    #[test]
    fn long_patterns_cross_block_boundaries() {
        // m > 64 exercises the multi-block carry chain.
        let a = "x".repeat(150);
        let mut b = a.clone();
        b.replace_range(70..71, "y"); // one substitution near the block seam
        assert_eq!(levenshtein(&a, &b), 1);
        assert_eq!(levenshtein_bounded(&a, &b, 1), Some(1));
        let c = format!("{}{}", "z".repeat(5), &a[5..]);
        assert_eq!(levenshtein(&a, &c), 5);
        assert_eq!(levenshtein_bounded(&a, &c, 4), None);
    }

    #[test]
    fn pattern_reuse_matches_one_shot() {
        let pat = MyersPattern::new("Synthesis");
        let mut scratch = EditScratch::new();
        for text in ["Synthesis", "Synthessi", "Sunthesis!", "", "Syn"] {
            for k in 0..5 {
                assert_eq!(
                    pat.distance_bounded(text, k, &mut scratch),
                    levenshtein_bounded("Synthesis", text, k),
                    "text={text:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(levenshtein_bounded("", "", 0), Some(0));
        assert_eq!(levenshtein_bounded("", "ab", 1), None); // |u|−|v| > k
        assert_eq!(levenshtein_bounded("", "ab", 2), Some(2));
        assert_eq!(levenshtein_bounded("日本語", "日本", 1), Some(1));
        assert_eq!(levenshtein_bounded("日本語", "nihongo", 3), None);
    }

    proptest! {
        /// Myers must agree with both reference DPs for every
        /// (string, string, threshold) combination — ASCII inputs.
        #[test]
        fn myers_matches_reference_ascii(a in "[a-d]{0,12}", b in "[a-d]{0,12}", max in 0usize..8) {
            let full = reference::levenshtein_dp(&a, &b);
            let banded = reference::levenshtein_bounded_dp(&a, &b, max);
            prop_assert_eq!(levenshtein(&a, &b), full);
            prop_assert_eq!(levenshtein_bounded(&a, &b, max), banded);
            if full <= max {
                prop_assert_eq!(levenshtein_bounded(&a, &b, max), Some(full));
            } else {
                prop_assert_eq!(levenshtein_bounded(&a, &b, max), None);
            }
        }

        /// Same agreement over arbitrary Unicode (exercises the char
        /// fallback path and mixed ASCII/non-ASCII sides).
        #[test]
        fn myers_matches_reference_unicode(a in "[abé日λ]{0,10}", b in "[abé日λ]{0,10}", max in 0usize..5) {
            let full = reference::levenshtein_dp(&a, &b);
            prop_assert_eq!(levenshtein(&a, &b), full);
            prop_assert_eq!(
                levenshtein_bounded(&a, &b, max),
                reference::levenshtein_bounded_dp(&a, &b, max)
            );
        }

        /// Long strings exercise the multi-block path; parity with the DP.
        #[test]
        fn myers_matches_reference_long(a in "[ab]{60,90}", b in "[ab]{60,90}", max in 0usize..6) {
            prop_assert_eq!(
                levenshtein_bounded(&a, &b, max),
                reference::levenshtein_bounded_dp(&a, &b, max)
            );
            prop_assert_eq!(levenshtein(&a, &b), reference::levenshtein_dp(&a, &b));
        }

        /// The cached-pattern entry point agrees with the one-shot kernel.
        #[test]
        fn cached_pattern_matches_one_shot(a in "[abé日λ]{0,12}", b in "[abé日λ]{0,12}", max in 0usize..5) {
            let pat = MyersPattern::new(&a);
            let mut scratch = EditScratch::new();
            prop_assert_eq!(
                pat.distance_bounded(&b, max, &mut scratch),
                reference::levenshtein_bounded_dp(&a, &b, max)
            );
        }

        /// Scratch reuse across heterogeneous calls never corrupts results.
        #[test]
        fn scratch_reuse_is_sound(pairs in proptest::collection::vec(("[abé日λ]{0,10}", "[abé日λ]{0,10}", 0usize..5), 1..8)) {
            let mut scratch = EditScratch::new();
            for (a, b, max) in &pairs {
                prop_assert_eq!(
                    levenshtein_bounded_with(a, b, *max, &mut scratch),
                    reference::levenshtein_bounded_dp(a, b, *max)
                );
            }
        }

        /// Metric axioms: symmetry and identity.
        #[test]
        fn symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in "[abé日λ]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        /// Triangle inequality.
        #[test]
        fn triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        /// One random edit moves distance by at most 1.
        #[test]
        fn single_edit_changes_distance_by_at_most_one(a in "[a-d]{1,10}", idx in 0usize..10, ch_idx in 0usize..4) {
            let mut chars: Vec<char> = a.chars().collect();
            let i = idx % chars.len();
            chars[i] = (b'a' + ch_idx as u8) as char;
            let b: String = chars.iter().collect();
            prop_assert!(levenshtein(&a, &b) <= 1);
        }
    }
}
