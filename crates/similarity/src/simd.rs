//! Runtime SIMD dispatch for the similarity kernels.
//!
//! Every accelerated path in this crate is an *implementation detail* of the
//! scalar engine: same inputs, bit-for-bit the same outputs, chosen at
//! runtime from what the CPU offers. This module owns that choice:
//!
//! - [`detected_level`] probes the CPU once (`is_x86_feature_detected!`) and
//!   caches the answer; non-x86_64 targets always detect [`SimdLevel::Scalar`].
//! - [`active_level`] folds in the kill switches: the `UNICLEAN_FORCE_SCALAR`
//!   environment variable (read once) and the in-process
//!   [`set_forced_scalar`] override that benches and differential tests use
//!   to time/compare both configurations inside one process.
//! - [`accelerated`] gates the *portable* accelerations (the u64-bitset Jaro
//!   matcher, the column-at-a-time Myers driver) that need no special CPU
//!   support but must still honour the forced-scalar switch so the legacy
//!   paths stay reachable as differential oracles.
//!
//! Because every level is bit-identical, flipping the override mid-run can
//! change *timings* but never *answers* — which is exactly what lets the
//! bench harness and the force-scalar CI job assert identity instead of
//! "close enough".

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set tier the q-gram hash kernel can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable Rust; always available, the differential oracle.
    Scalar,
    /// SSE4.1+ (`_mm_cvtepu8_epi64`): 2 FNV lanes per vector.
    Sse42,
    /// AVX2 (`_mm256_cvtepu8_epi64`): 4 FNV lanes per vector.
    Avx2,
}

impl SimdLevel {
    /// Short stable name used in bench JSON, `--explain-plans` and `ping`.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse42 => "sse4.2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// What the hardware supports, independent of any kill switch. Probed once.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.2") {
                return SimdLevel::Sse42;
            }
        }
        SimdLevel::Scalar
    })
}

/// Was `UNICLEAN_FORCE_SCALAR` set (to anything but `0`/empty) at first read?
fn env_forced_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("UNICLEAN_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// In-process override: 0 = follow the environment, 1 = force scalar,
/// 2 = force accelerated (ignore the env var). Safe to flip at any time —
/// all levels produce identical answers — so benches can time both engines
/// in one process and tests can pin them against each other.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Override the dispatch for this process: `Some(true)` forces the scalar
/// engine, `Some(false)` forces acceleration on (even under
/// `UNICLEAN_FORCE_SCALAR`), `None` restores environment-driven dispatch.
pub fn set_forced_scalar(force: Option<bool>) {
    let v = match force {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Are the accelerated engines (SIMD hashing, bitset Jaro, columnar Myers)
/// enabled? `false` routes every call through the legacy scalar paths.
pub fn accelerated() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => !env_forced_scalar(),
    }
}

/// The instruction-set tier the gram-hash kernel will actually use right
/// now: [`detected_level`] unless a kill switch downgrades it to scalar.
pub fn active_level() -> SimdLevel {
    if accelerated() {
        detected_level()
    } else {
        SimdLevel::Scalar
    }
}

/// Snapshot of the dispatch decision, for surfacing in `--explain-plans`,
/// the server `ping`/`health` reply, and bench JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchInfo {
    /// What the CPU supports.
    pub detected: SimdLevel,
    /// Whether a kill switch (env var or override) forced the scalar engine.
    pub forced_scalar: bool,
    /// Kernel chosen for q-gram window hashing.
    pub gram_hash: &'static str,
    /// Kernel chosen for the Jaro window matcher.
    pub jaro: &'static str,
    /// Driver chosen for `~lev` candidate verification.
    pub lev_driver: &'static str,
}

/// The current [`DispatchInfo`] (re-evaluated per call; override-sensitive).
pub fn dispatch_info() -> DispatchInfo {
    let accel = accelerated();
    DispatchInfo {
        detected: detected_level(),
        forced_scalar: !accel,
        gram_hash: active_level().name(),
        jaro: if accel { "bitset64" } else { "flag-scan" },
        lev_driver: if accel { "columnar" } else { "per-value" },
    }
}

impl std::fmt::Display for DispatchInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gram-hash={} jaro={} lev-driver={} (detected: {}{})",
            self.gram_hash,
            self.jaro,
            self.lev_driver,
            self.detected.name(),
            if self.forced_scalar {
                ", forced scalar"
            } else {
                ""
            }
        )
    }
}

// ---------------------------------------------------------------------------
// FNV-1a window hashing.
//
// The scalar kernel hashes one window at a time with a serial xor/multiply
// chain (~4 cycles per byte of latency). The vector kernels hash 4 (AVX2)
// or 2 (SSE4.2) *adjacent* windows per register — for window start `i` and
// step `t`, lanes need bytes `padded[i+t..i+t+LANES]`, which are contiguous
// and load as one small scalar followed by a zero-extension shuffle. Two
// registers run interleaved so the multiply latency of one chain hides
// behind the other.
//
// The FNV-1a prime is 0x0000_0100_0000_01b3 = 2^40 + 0x1b3, so the wrapping
// 64-bit product — which SSE/AVX2 lack an instruction for — decomposes into
// shifts and 32x32→64 multiplies that they do have:
//
//   h * P  mod 2^64  =  (h << 40)  +  lo32(h)·0x1b3  +  (hi32(h)·0x1b3 << 32)
//
// Each term is exact (lo32(h)·0x1b3 < 2^41), so the lanes are bit-identical
// to `wrapping_mul` — the property every differential test pins.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME_LO: u64 = 0x1b3;

use crate::qgram::hash_gram_bytes as fnv1a_bytes;

/// Append the FNV-1a hash of every length-`q` window of `padded` to `out`,
/// on the best kernel [`active_level`] allows. Requires `padded.len() >= q`
/// and `q >= 1`; appends exactly `padded.len() - q + 1` hashes, bit-for-bit
/// what the scalar kernel produces.
#[inline]
pub fn hash_gram_windows(padded: &[u8], q: usize, out: &mut Vec<u64>) {
    debug_assert!(q >= 1 && padded.len() >= q);
    #[cfg(target_arch = "x86_64")]
    {
        match active_level() {
            // SAFETY: dispatch verified the required target features.
            SimdLevel::Avx2 => return unsafe { x86::hash_windows_avx2(padded, q, out) },
            SimdLevel::Sse42 => return unsafe { x86::hash_windows_sse42(padded, q, out) },
            SimdLevel::Scalar => {}
        }
    }
    hash_gram_windows_scalar(padded, q, out);
}

/// The always-available scalar engine behind [`hash_gram_windows`].
#[inline]
pub fn hash_gram_windows_scalar(padded: &[u8], q: usize, out: &mut Vec<u64>) {
    out.extend(padded.windows(q).map(fnv1a_bytes));
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{fnv1a_bytes, FNV_OFFSET, FNV_PRIME_LO};
    use std::arch::x86_64::*;

    /// `h * FNV_PRIME mod 2^64` on four u64 lanes, via the
    /// `(h<<40) + lo32(h)·0x1b3 + (hi32(h)·0x1b3 << 32)` decomposition.
    #[inline(always)]
    unsafe fn fnv_mul_avx2(h: __m256i, prime_lo: __m256i) -> __m256i {
        let sh40 = _mm256_slli_epi64(h, 40);
        let lo = _mm256_mul_epu32(h, prime_lo);
        let hi = _mm256_slli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(h, 32), prime_lo), 32);
        _mm256_add_epi64(sh40, _mm256_add_epi64(lo, hi))
    }

    /// Hash the 8 adjacent windows starting at `i`: two 4-lane registers
    /// interleaved so the two multiply chains overlap.
    #[inline(always)]
    unsafe fn hash_block8(
        padded: &[u8],
        i: usize,
        q: usize,
        prime_lo: __m256i,
        basis: __m256i,
    ) -> [u64; 8] {
        let mut h0 = basis;
        let mut h1 = basis;
        for t in 0..q {
            // Windows i..i+8 all read byte t from padded[i+t..i+t+8]:
            // contiguous, so two u32 loads feed the zero-extensions.
            let p = padded.as_ptr().add(i + t);
            let b0 =
                _mm256_cvtepu8_epi64(_mm_cvtsi32_si128((p as *const u32).read_unaligned() as i32));
            let b1 = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(
                (p.add(4) as *const u32).read_unaligned() as i32,
            ));
            h0 = fnv_mul_avx2(_mm256_xor_si256(h0, b0), prime_lo);
            h1 = fnv_mul_avx2(_mm256_xor_si256(h1, b1), prime_lo);
        }
        let mut lanes = [0u64; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, h0);
        _mm256_storeu_si256(lanes.as_mut_ptr().add(4) as *mut __m256i, h1);
        lanes
    }

    /// 8 windows per outer iteration ([`hash_block8`]); the tail re-runs a
    /// full block ending at the last window — windows are independent, so
    /// the overlap recomputes identical hashes and only the fresh ones are
    /// appended — keeping short values (the common case: padded attribute
    /// strings of a few dozen bytes) off the serial scalar chain.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn hash_windows_avx2(padded: &[u8], q: usize, out: &mut Vec<u64>) {
        let n = padded.len() + 1 - q;
        let prime_lo = _mm256_set1_epi64x(FNV_PRIME_LO as i64);
        let basis = _mm256_set1_epi64x(FNV_OFFSET as i64);
        out.reserve(n);
        let mut i = 0usize;
        while i + 8 <= n {
            out.extend_from_slice(&hash_block8(padded, i, q, prime_lo, basis));
            i += 8;
        }
        if i < n {
            if n >= 8 {
                let lanes = hash_block8(padded, n - 8, q, prime_lo, basis);
                out.extend_from_slice(&lanes[i - (n - 8)..]);
            } else {
                for w in i..n {
                    out.push(fnv1a_bytes(&padded[w..w + q]));
                }
            }
        }
    }

    /// Two-lane variant of [`fnv_mul_avx2`].
    #[inline(always)]
    unsafe fn fnv_mul_sse(h: __m128i, prime_lo: __m128i) -> __m128i {
        let sh40 = _mm_slli_epi64(h, 40);
        let lo = _mm_mul_epu32(h, prime_lo);
        let hi = _mm_slli_epi64(_mm_mul_epu32(_mm_srli_epi64(h, 32), prime_lo), 32);
        _mm_add_epi64(sh40, _mm_add_epi64(lo, hi))
    }

    /// Hash the 4 adjacent windows starting at `i`: two 2-lane registers
    /// interleaved. `_mm_cvtepu8_epi64` is SSE4.1, implied by the SSE4.2
    /// gate.
    #[inline(always)]
    unsafe fn hash_block4(
        padded: &[u8],
        i: usize,
        q: usize,
        prime_lo: __m128i,
        basis: __m128i,
    ) -> [u64; 4] {
        let mut h0 = basis;
        let mut h1 = basis;
        for t in 0..q {
            let p = padded.as_ptr().add(i + t);
            let b0 =
                _mm_cvtepu8_epi64(_mm_cvtsi32_si128((p as *const u16).read_unaligned() as i32));
            let b1 = _mm_cvtepu8_epi64(_mm_cvtsi32_si128(
                (p.add(2) as *const u16).read_unaligned() as i32,
            ));
            h0 = fnv_mul_sse(_mm_xor_si128(h0, b0), prime_lo);
            h1 = fnv_mul_sse(_mm_xor_si128(h1, b1), prime_lo);
        }
        let mut lanes = [0u64; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, h0);
        _mm_storeu_si128(lanes.as_mut_ptr().add(2) as *mut __m128i, h1);
        lanes
    }

    /// 4 windows per outer iteration ([`hash_block4`]), with the same
    /// overlapping-tail-block trick as the AVX2 kernel.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn hash_windows_sse42(padded: &[u8], q: usize, out: &mut Vec<u64>) {
        let n = padded.len() + 1 - q;
        let prime_lo = _mm_set1_epi64x(FNV_PRIME_LO as i64);
        let basis = _mm_set1_epi64x(FNV_OFFSET as i64);
        out.reserve(n);
        let mut i = 0usize;
        while i + 4 <= n {
            out.extend_from_slice(&hash_block4(padded, i, q, prime_lo, basis));
            i += 4;
        }
        if i < n {
            if n >= 4 {
                let lanes = hash_block4(padded, n - 4, q, prime_lo, basis);
                out.extend_from_slice(&lanes[i - (n - 4)..]);
            } else {
                for w in i..n {
                    out.push(fnv1a_bytes(&padded[w..w + q]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_windows(padded: &[u8], q: usize) -> Vec<u64> {
        let mut out = Vec::new();
        hash_gram_windows_scalar(padded, q, &mut out);
        out
    }

    /// Run `f` on every tier the hardware supports (plus scalar), asserting
    /// it reports identical results per tier.
    #[cfg(target_arch = "x86_64")]
    fn per_supported_tier(padded: &[u8], q: usize) -> Vec<(SimdLevel, Vec<u64>)> {
        let mut results = vec![(SimdLevel::Scalar, scalar_windows(padded, q))];
        if detected_level() >= SimdLevel::Sse42 {
            let mut out = Vec::new();
            unsafe { x86::hash_windows_sse42(padded, q, &mut out) };
            results.push((SimdLevel::Sse42, out));
        }
        if detected_level() >= SimdLevel::Avx2 {
            let mut out = Vec::new();
            unsafe { x86::hash_windows_avx2(padded, q, &mut out) };
            results.push((SimdLevel::Avx2, out));
        }
        results
    }

    #[test]
    fn env_and_override_compose() {
        // Whatever the environment says, the override wins while set.
        set_forced_scalar(Some(true));
        assert_eq!(active_level(), SimdLevel::Scalar);
        assert!(!accelerated());
        set_forced_scalar(Some(false));
        assert!(accelerated());
        assert_eq!(active_level(), detected_level());
        set_forced_scalar(None);
    }

    #[test]
    fn dispatch_info_renders() {
        let info = dispatch_info();
        let s = info.to_string();
        assert!(s.contains("gram-hash="), "got {s}");
        assert!(s.contains("lev-driver="), "got {s}");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_kernels_match_scalar_on_fixed_cases() {
        // Window boundary shapes: exactly at/around the 8- and 4-lane
        // unroll, plus q values the engine actually uses (1..=4).
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200] {
            let padded: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
            for q in 1..=4usize.min(len) {
                let tiers = per_supported_tier(&padded, q);
                let (_, scalar) = &tiers[0];
                for (level, out) in &tiers[1..] {
                    assert_eq!(out, scalar, "len={len} q={q} level={level:?}");
                }
            }
        }
    }

    proptest! {
        /// Every supported vector tier reproduces the scalar hashes
        /// bit-for-bit on arbitrary byte content (incl. 0x00/0xff and the
        /// PAD sentinel 0x01).
        #[cfg(target_arch = "x86_64")]
        #[test]
        fn vector_kernels_match_scalar(raw in proptest::collection::vec(0u16..256, 1..96), q in 1usize..5) {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let q = q.min(bytes.len());
            for (level, out) in per_supported_tier(&bytes, q) {
                prop_assert_eq!(&out, &scalar_windows(&bytes, q), "level={:?}", level);
            }
        }
    }
}
