//! Similarity substrate for UniClean.
//!
//! Matching dependencies (MDs, §2.2 of the paper) are defined "in terms of a
//! set Υ of similarity predicates, e.g., q-grams, Jaro distance or edit
//! distance". This crate implements those predicates from scratch as
//! bit-parallel, allocation-free kernels, plus the indexing machinery that
//! makes MD matching feasible at scale:
//!
//! * [`edit_distance`] — Myers bit-vector Levenshtein (single-word and
//!   block-based, Ukkonen cutoff, reusable [`MyersPattern`] bitmaps, the
//!   column-at-a-time [`MyersPattern::distance_column`] sweep) with the
//!   scalar DPs preserved as a parity oracle;
//! * [`jaro`](mod@jaro) — Jaro and Jaro-Winkler similarity (byte-slice fast
//!   path, u64-bitset window matcher, [`JaroScratch`] buffer reuse);
//! * [`qgram`] — q-gram profiles and Jaccard similarity over them
//!   ([`ProfileScratch`] buffer reuse, SIMD byte-window hashing for ASCII,
//!   the [`ProfilePool`] arena behind the batched index build);
//! * [`simd`] — runtime kernel dispatch: CPU feature detection, the
//!   `UNICLEAN_FORCE_SCALAR` kill switch, and the vectorized FNV window
//!   hashers (every level bit-identical to the scalar engine);
//! * [`predicate`] — the [`SimilarityPredicate`] type used inside MDs and
//!   the caller-owned [`SimScratch`];
//! * [`qgram_index`] — a count-filtered q-gram inverted index giving the
//!   `~qgram`/`~jaro`/`~jw` *and* `~lev` families complete, bounded
//!   candidate generation ([`lev_count_bound`]: within edit `k`, padded
//!   profiles share ≥ `max(|u|,|v|) + q − 1 − k·q` grams), so no predicate
//!   the paper names needs a full master scan — or an approximation.

pub mod edit_distance;
pub mod jaro;
pub mod predicate;
pub mod qgram;
pub mod qgram_index;
pub mod simd;

pub use edit_distance::{
    levenshtein, levenshtein_bounded, levenshtein_bounded_with, levenshtein_with,
    within_edit_distance, within_edit_distance_with, ColumnVerdicts, EditScratch, MyersPattern,
};
pub use jaro::{jaro, jaro_winkler, jaro_winkler_with, jaro_with, JaroScratch};
pub use predicate::{SimScratch, SimilarityPredicate};
pub use qgram::{qgram_jaccard, ProfileArena, ProfilePool, ProfileScratch, QGramProfile};
pub use qgram_index::{
    jaro_length_window, jaro_overlap_bound, lev_count_bound, lev_length_window,
    qgram_length_window, qgram_overlap_bound, QGramIndex, QGramScratch,
};
pub use simd::{DispatchInfo, SimdLevel};
