//! Similarity substrate for UniClean.
//!
//! Matching dependencies (MDs, §2.2 of the paper) are defined "in terms of a
//! set Υ of similarity predicates, e.g., q-grams, Jaro distance or edit
//! distance". This crate implements those predicates from scratch, plus the
//! indexing machinery of §5.2 that makes MD matching feasible at scale:
//!
//! * [`edit_distance`] — full and banded (threshold-`K`) Levenshtein;
//! * [`jaro`](mod@jaro) — Jaro and Jaro-Winkler similarity;
//! * [`qgram`] — q-gram profiles and Jaccard similarity over them;
//! * [`lcs`] — longest common substring (the blocking signal of §5.2);
//! * [`predicate`] — the [`SimilarityPredicate`] type used inside MDs;
//! * [`suffix_tree`] — a generalized suffix tree (Ukkonen) over a corpus of
//!   strings, with matching statistics;
//! * [`blocking`] — the paper's top-`l` LCS blocking index: "we generalize
//!   suffix trees as an index for LCS … identify `l` similar values from Dm
//!   in O(l·|v|²) time";
//! * [`qgram_index`] — a count-filtered q-gram inverted index giving the
//!   `~qgram`/`~jaro`/`~jw` families bounded candidate generation too, so
//!   no predicate the paper names needs a full master scan.

pub mod blocking;
pub mod edit_distance;
pub mod jaro;
pub mod lcs;
pub mod predicate;
pub mod qgram;
pub mod qgram_index;
pub mod suffix_tree;

pub use blocking::LcsBlocker;
pub use edit_distance::{levenshtein, levenshtein_bounded, within_edit_distance};
pub use jaro::{jaro, jaro_winkler};
pub use lcs::{lcs_blocking_bound, longest_common_substring_len};
pub use predicate::SimilarityPredicate;
pub use qgram::{qgram_jaccard, QGramProfile};
pub use qgram_index::{
    jaro_length_window, jaro_overlap_bound, qgram_length_window, qgram_overlap_bound, QGramIndex,
    QGramScratch,
};
pub use suffix_tree::GeneralizedSuffixTree;
