//! Jaro and Jaro-Winkler similarity.
//!
//! Jaro distance is one of the similarity predicates the paper lists for MDs
//! (§2.2). Jaro similarity counts matching characters within a sliding
//! window of half the longer string, discounts transpositions, and returns a
//! score in `[0, 1]` (1 = identical). Jaro-Winkler boosts the score for
//! strings sharing a common prefix, which suits person/venue names — the
//! attributes MDs typically compare.

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() && bv.is_empty() {
        return 1.0;
    }
    if av.is_empty() || bv.is_empty() {
        return 0.0;
    }
    let window = (av.len().max(bv.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; bv.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in av.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(bv.len());
        for j in lo..hi {
            if !b_taken[j] && bv[j] == *ca {
                b_taken[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Matched characters of b, in b order.
    let matches_b: Vec<char> = bv
        .iter()
        .zip(b_taken.iter())
        .filter_map(|(c, taken)| taken.then_some(*c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / av.len() as f64 + m / bv.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and
/// prefix cap 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn identical_strings_score_one() {
        assert!(close(jaro("MARTHA", "MARTHA"), 1.0));
        assert!(close(jaro_winkler("x", "x"), 1.0));
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert!(close(jaro("abc", "xyz"), 0.0));
    }

    #[test]
    fn textbook_values() {
        // Classic worked examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944444444444444));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.7666666666666666));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.9611111111111111));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.8133333333333332));
    }

    #[test]
    fn empty_string_cases() {
        assert!(close(jaro("", ""), 1.0));
        assert!(close(jaro("", "abc"), 0.0));
        assert!(close(jaro("abc", ""), 0.0));
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("Robert", "Robbed");
        let jw = jaro_winkler("Robert", "Robbed");
        assert!(jw > j, "jw {jw} should exceed jaro {j} on shared prefix");
    }

    #[test]
    fn paper_example_first_names_are_similar() {
        // MD ψ of Example 1.1 matches FN "Bob"/"Robert" only after
        // normalization; but "M."/"Mark" style abbreviations rely on
        // Jaro-Winkler scoring reasonably high.
        assert!(jaro_winkler("Mark", "Max") > 0.7);
    }

    proptest! {
        #[test]
        fn bounded_zero_one(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            let w = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&w));
        }

        #[test]
        fn symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert!(close(jaro(&a, &b), jaro(&b, &a)));
        }

        #[test]
        fn identity_scores_one(a in "[a-e]{1,10}") {
            prop_assert!(close(jaro(&a, &a), 1.0));
        }

        #[test]
        fn winkler_dominates_jaro(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        }
    }
}
