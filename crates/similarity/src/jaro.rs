//! Jaro and Jaro-Winkler similarity.
//!
//! Jaro distance is one of the similarity predicates the paper lists for MDs
//! (§2.2). Jaro similarity counts matching characters within a sliding
//! window of half the longer string, discounts transpositions, and returns a
//! score in `[0, 1]` (1 = identical). Jaro-Winkler boosts the score for
//! strings sharing a common prefix, which suits person/venue names — the
//! attributes MDs typically compare.
//!
//! The kernel is generic over the symbol slice: ASCII inputs run directly on
//! the byte slices (no decode, no copy) while anything else decodes into
//! reusable char buffers. [`JaroScratch`] owns every buffer, so probe loops
//! pay zero allocation per call; the scratch-free entry points allocate one
//! small scratch internally.
//!
//! ASCII pairs whose second string fits 64 characters take a bitset fast
//! path (gated on [`crate::simd::accelerated`]): per-character position
//! masks replace the per-character flag scan, so claiming the first
//! unclaimed match inside the window is one `and`/`trailing_zeros` instead
//! of a loop. The greedy claim order — and therefore `m`, `t` and the final
//! f64 expression — is exactly the scalar kernel's, so scores stay
//! bit-for-bit identical and the flag-scan survives as the differential
//! oracle behind `UNICLEAN_FORCE_SCALAR`.

/// Reusable buffers for the Jaro kernels. One per probe thread.
#[derive(Debug, Default, Clone)]
pub struct JaroScratch {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    /// Which positions of `b` have been claimed by a match.
    taken: Vec<bool>,
    /// Indices into `a` of its matched characters, in `a` order.
    matched_a: Vec<u32>,
}

impl JaroScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The Jaro kernel over two symbol slices. Identical arithmetic on the byte
/// and char paths, so the score is bit-for-bit independent of the route.
fn jaro_core<T: PartialEq + Copy>(av: &[T], bv: &[T], scratch: &mut JaroScratch) -> f64 {
    if av.is_empty() && bv.is_empty() {
        return 1.0;
    }
    if av.is_empty() || bv.is_empty() {
        return 0.0;
    }
    let window = (av.len().max(bv.len()) / 2).saturating_sub(1);
    let taken = &mut scratch.taken;
    taken.clear();
    taken.resize(bv.len(), false);
    let matched_a = &mut scratch.matched_a;
    matched_a.clear();
    for (i, ca) in av.iter().enumerate() {
        let hi = (i + window + 1).min(bv.len());
        let lo = i.saturating_sub(window).min(hi);
        for (j, slot) in taken[lo..hi].iter_mut().enumerate() {
            if !*slot && bv[lo + j] == *ca {
                *slot = true;
                matched_a.push(i as u32);
                break;
            }
        }
    }
    let m = matched_a.len();
    if m == 0 {
        return 0.0;
    }
    // Walk matched characters of b in b order against matched a in a order.
    let mut transpositions = 0usize;
    let mut bj = taken.iter().enumerate().filter_map(|(j, t)| t.then_some(j));
    for &ia in matched_a.iter() {
        let j = bj.next().expect("as many matches in b as in a");
        if av[ia as usize] != bv[j] {
            transpositions += 1;
        }
    }
    let transpositions = transpositions / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / av.len() as f64 + m / bv.len() as f64 + (m - t) / m) / 3.0
}

/// Bitset Jaro for ASCII inputs with `bv.len() <= 64`: positions of `b` are
/// tracked as one u64 (`taken`) and each byte's occurrence set as a
/// precomputed mask, so the window scan of the scalar kernel collapses to
/// `pos[ca] & !taken & window` + `trailing_zeros`. Claim order matches the
/// scalar kernel's greedy first-unclaimed-match exactly; every count and the
/// final expression are identical, so the score is bit-for-bit the same.
fn jaro_bitset_ascii(av: &[u8], bv: &[u8], scratch: &mut JaroScratch) -> f64 {
    debug_assert!(!av.is_empty() && !bv.is_empty() && bv.len() <= 64);
    let window = (av.len().max(bv.len()) / 2).saturating_sub(1);
    let mut pos = [0u64; 128];
    for (j, &cb) in bv.iter().enumerate() {
        pos[cb as usize] |= 1u64 << j;
    }
    let mut taken = 0u64;
    let matched_a = &mut scratch.matched_a;
    matched_a.clear();
    for (i, &ca) in av.iter().enumerate() {
        let hi = (i + window + 1).min(bv.len());
        let lo = i.saturating_sub(window).min(hi);
        // Bits lo..hi of b still unclaimed and equal to ca.
        let hi_mask = if hi >= 64 { !0u64 } else { (1u64 << hi) - 1 };
        let lo_mask = if lo >= 64 { !0u64 } else { (1u64 << lo) - 1 };
        let avail = pos[ca as usize] & !taken & hi_mask & !lo_mask;
        if avail != 0 {
            taken |= avail & avail.wrapping_neg(); // lowest set bit: first match
            matched_a.push(i as u32);
        }
    }
    let m = matched_a.len();
    if m == 0 {
        return 0.0;
    }
    let mut transpositions = 0usize;
    let mut rest = taken;
    for &ia in matched_a.iter() {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        if av[ia as usize] != bv[j] {
            transpositions += 1;
        }
    }
    let transpositions = transpositions / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / av.len() as f64 + m / bv.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro similarity in `[0, 1]`, reusing `scratch` buffers.
pub fn jaro_with(a: &str, b: &str, scratch: &mut JaroScratch) -> f64 {
    if a.is_ascii() && b.is_ascii() {
        let (av, bv) = (a.as_bytes(), b.as_bytes());
        if !av.is_empty() && !bv.is_empty() && bv.len() <= 64 && crate::simd::accelerated() {
            return jaro_bitset_ascii(av, bv, scratch);
        }
        return jaro_core(av, bv, scratch);
    }
    let JaroScratch {
        a_chars, b_chars, ..
    } = scratch;
    a_chars.clear();
    a_chars.extend(a.chars());
    b_chars.clear();
    b_chars.extend(b.chars());
    let (av, bv) = (std::mem::take(a_chars), std::mem::take(b_chars));
    let score = jaro_core(&av, &bv, scratch);
    scratch.a_chars = av;
    scratch.b_chars = bv;
    score
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    jaro_with(a, b, &mut JaroScratch::new())
}

/// [`jaro_winkler`] reusing `scratch` buffers.
pub fn jaro_winkler_with(a: &str, b: &str, scratch: &mut JaroScratch) -> f64 {
    let j = jaro_with(a, b, scratch);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and
/// prefix cap 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, &mut JaroScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn identical_strings_score_one() {
        assert!(close(jaro("MARTHA", "MARTHA"), 1.0));
        assert!(close(jaro_winkler("x", "x"), 1.0));
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert!(close(jaro("abc", "xyz"), 0.0));
    }

    #[test]
    fn textbook_values() {
        // Classic worked examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944444444444444));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.7666666666666666));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.9611111111111111));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.8133333333333332));
    }

    #[test]
    fn empty_string_cases() {
        assert!(close(jaro("", ""), 1.0));
        assert!(close(jaro("", "abc"), 0.0));
        assert!(close(jaro("abc", ""), 0.0));
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("Robert", "Robbed");
        let jw = jaro_winkler("Robert", "Robbed");
        assert!(jw > j, "jw {jw} should exceed jaro {j} on shared prefix");
    }

    #[test]
    fn paper_example_first_names_are_similar() {
        // MD ψ of Example 1.1 matches FN "Bob"/"Robert" only after
        // normalization; but "M."/"Mark" style abbreviations rely on
        // Jaro-Winkler scoring reasonably high.
        assert!(jaro_winkler("Mark", "Max") > 0.7);
    }

    #[test]
    fn bitset_capacity_boundaries() {
        // 63/64 chars ride the bitset; 65 must fall back — all three agree
        // with the scalar kernel through the dispatched entry point.
        let mut scratch = JaroScratch::new();
        for blen in [1usize, 63, 64, 65] {
            let a: String = (0..70).map(|i| (b'a' + (i % 5) as u8) as char).collect();
            let b: String = (0..blen).map(|i| (b'a' + (i % 4) as u8) as char).collect();
            let dispatched = jaro_with(&a, &b, &mut scratch);
            let scalar = jaro_core(a.as_bytes(), b.as_bytes(), &mut scratch);
            assert_eq!(dispatched.to_bits(), scalar.to_bits(), "blen={blen}");
        }
    }

    #[test]
    fn unicode_falls_back_to_chars() {
        assert!(close(jaro("café", "café"), 1.0));
        assert!(jaro("café", "cafe") > 0.8);
    }

    proptest! {
        #[test]
        fn bounded_zero_one(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            let w = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&w));
        }

        #[test]
        fn symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert!(close(jaro(&a, &b), jaro(&b, &a)));
        }

        #[test]
        fn identity_scores_one(a in "[a-e]{1,10}") {
            prop_assert!(close(jaro(&a, &a), 1.0));
        }

        #[test]
        fn winkler_dominates_jaro(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        }

        /// The u64-bitset matcher scores bit-identically to the scalar
        /// flag-scan kernel on dense low-alphabet strings (many repeats and
        /// transpositions) right up to the 64-char capacity boundary.
        #[test]
        fn bitset_matches_flag_scan(a in "[a-e]{1,70}", b in "[a-e]{1,64}") {
            let mut scratch = JaroScratch::new();
            let bitset = jaro_bitset_ascii(a.as_bytes(), b.as_bytes(), &mut scratch);
            let scalar = jaro_core(a.as_bytes(), b.as_bytes(), &mut scratch);
            prop_assert_eq!(bitset.to_bits(), scalar.to_bits());
        }

        /// Same pin over the full ASCII range (spaces, punctuation, case).
        #[test]
        fn bitset_matches_flag_scan_full_ascii(a in "[ -~]{1,70}", b in "[ -~]{1,64}") {
            let mut scratch = JaroScratch::new();
            let bitset = jaro_bitset_ascii(a.as_bytes(), b.as_bytes(), &mut scratch);
            let scalar = jaro_core(a.as_bytes(), b.as_bytes(), &mut scratch);
            prop_assert_eq!(bitset.to_bits(), scalar.to_bits());
        }

        /// Byte path (ASCII) and char path (forced through the decode
        /// branch) score bit-identically, and a dirty reused scratch never
        /// changes a result.
        #[test]
        fn byte_and_char_paths_agree(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let mut scratch = JaroScratch::new();
            let _ = jaro_with("dirté", "scratché", &mut scratch); // dirty it
            let byte = jaro_with(&a, &b, &mut scratch);
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            let chars = jaro_core(&av, &bv, &mut scratch);
            prop_assert_eq!(byte.to_bits(), chars.to_bits());
            prop_assert_eq!(byte.to_bits(), jaro(&a, &b).to_bits());
        }
    }
}
