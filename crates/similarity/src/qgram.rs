//! q-gram profiles and Jaccard similarity over them.
//!
//! q-grams are the third similarity predicate family the paper names for
//! MDs (§2.2). A string's q-gram profile is the multiset of its length-`q`
//! character windows, with `q-1` padding sentinels on each side so that
//! prefixes/suffixes carry weight. Similarity is Jaccard over the profiles
//! (multiset intersection / union).
//!
//! Profiles are stored as a **sorted run-length vector of 64-bit gram
//! hashes** rather than a `HashMap<Vec<char>, u32>`: intersection becomes
//! a cache-friendly sorted merge with zero per-gram allocation, and the
//! same hashes feed the inverted lists of [`crate::qgram_index`]. Two
//! distinct grams colliding on a 64-bit hash would overestimate overlap;
//! at 2⁻⁶⁴ per pair this never occurs on real vocabularies, and for the
//! blocking index an overestimate is conservative (extra candidates, never
//! a lost match).

/// Sentinel used to pad string boundaries; outside any realistic alphabet.
const PAD: char = '\u{1}';

/// FNV-1a over the code points of one length-`q` window. All grams of a
/// profile share one length, so no prefix ambiguity enters the hash.
#[inline]
fn hash_gram(w: &[char]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in w {
        h ^= c as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The multiset of padded q-grams of a string, as sorted `(hash, count)`
/// runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QGramProfile {
    q: usize,
    /// Sorted by hash; counts are multiplicities.
    grams: Vec<(u64, u32)>,
    total: u32,
}

impl QGramProfile {
    /// Build the profile of `s` for window size `q` (≥ 1).
    pub fn new(s: &str, q: usize) -> Self {
        assert!(q >= 1, "q-gram size must be at least 1");
        let mut padded: Vec<char> = Vec::with_capacity(s.len() + 2 * (q - 1));
        padded.extend(std::iter::repeat_n(PAD, q - 1));
        padded.extend(s.chars());
        padded.extend(std::iter::repeat_n(PAD, q - 1));
        let mut hashes: Vec<u64> = if padded.len() >= q {
            padded.windows(q).map(hash_gram).collect()
        } else {
            Vec::new()
        };
        let total = hashes.len() as u32;
        hashes.sort_unstable();
        let mut grams: Vec<(u64, u32)> = Vec::new();
        for h in hashes {
            match grams.last_mut() {
                Some((g, c)) if *g == h => *c += 1,
                _ => grams.push((h, 1)),
            }
        }
        QGramProfile { q, grams, total }
    }

    /// Window size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of grams (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Is the profile empty (only possible for the empty string with q=1)?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The sorted `(gram hash, multiplicity)` runs — the inverted index of
    /// [`crate::qgram_index`] builds its posting lists from these.
    pub fn grams(&self) -> &[(u64, u32)] {
        &self.grams
    }

    /// Multiset-intersection size with another profile (sorted merge,
    /// allocation-free).
    pub fn intersection(&self, other: &QGramProfile) -> usize {
        assert_eq!(self.q, other.q, "profiles must share the q value");
        let (a, b) = (&self.grams, &other.grams);
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += a[i].1.min(b[j].1) as usize;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter
    }

    /// Multiset Jaccard similarity `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
    pub fn jaccard(&self, other: &QGramProfile) -> f64 {
        let inter = self.intersection(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            // Both profiles empty ⇒ both strings empty ⇒ identical.
            return 1.0;
        }
        inter as f64 / union as f64
    }
}

/// One-shot q-gram Jaccard similarity.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    QGramProfile::new(a, q).jaccard(&QGramProfile::new(b, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(qgram_jaccard("database", "database", 2), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(qgram_jaccard("aaa", "bbb", 2), 0.0);
    }

    #[test]
    fn empty_vs_empty_is_one() {
        assert_eq!(qgram_jaccard("", "", 2), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(qgram_jaccard("", "abc", 2), 0.0);
    }

    #[test]
    fn profile_counts_multiplicity() {
        // "aaa" with q=2 padded: #a aa aa a# → aa twice.
        let p = QGramProfile::new("aaa", 2);
        assert_eq!(p.len(), 4);
        let other = QGramProfile::new("aa", 2); // #a aa a#
        assert_eq!(p.intersection(&other), 3);
    }

    #[test]
    fn grams_are_sorted_runs() {
        let p = QGramProfile::new("banana", 2);
        assert!(p.grams().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(
            p.grams().iter().map(|&(_, c)| c as usize).sum::<usize>(),
            p.len()
        );
    }

    #[test]
    fn similar_strings_score_high() {
        let s = qgram_jaccard("Robert Brady", "Robert Bradey", 2);
        assert!(s > 0.7, "got {s}");
        let d = qgram_jaccard("Robert Brady", "Mark Smith", 2);
        assert!(d < 0.2, "got {d}");
    }

    #[test]
    #[should_panic(expected = "q-gram size")]
    fn zero_q_rejected() {
        QGramProfile::new("abc", 0);
    }

    #[test]
    #[should_panic(expected = "share the q value")]
    fn mismatched_q_rejected() {
        QGramProfile::new("a", 2).jaccard(&QGramProfile::new("a", 3));
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            let s = qgram_jaccard(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_symmetric(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            prop_assert_eq!(qgram_jaccard(&a, &b, q).to_bits(), qgram_jaccard(&b, &a, q).to_bits());
        }

        #[test]
        fn jaccard_identity(a in "[a-d]{0,12}", q in 1usize..4) {
            prop_assert_eq!(qgram_jaccard(&a, &a, q), 1.0);
        }

        #[test]
        fn intersection_bounded_by_sizes(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            let pa = QGramProfile::new(&a, q);
            let pb = QGramProfile::new(&b, q);
            let i = pa.intersection(&pb);
            prop_assert!(i <= pa.len() && i <= pb.len());
        }

        /// The char-multiset overlap (q=1 profile intersection) upper-bounds
        /// the number of Jaro matching characters — the invariant the Jaro
        /// prefilter of the q-gram index rests on.
        #[test]
        fn one_gram_overlap_bounds_jaro_matches(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            let overlap = QGramProfile::new(&a, 1).intersection(&QGramProfile::new(&b, 1));
            let j = crate::jaro::jaro(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            if la > 0 && lb > 0 {
                // j ≤ (m/la + m/lb + 1)/3 with m ≤ overlap.
                let m = overlap as f64;
                let ceiling = (m / la as f64 + m / lb as f64 + 1.0) / 3.0;
                prop_assert!(j <= ceiling + 1e-9, "jaro {j} exceeds overlap ceiling {ceiling}");
            }
        }
    }
}
