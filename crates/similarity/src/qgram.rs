//! q-gram profiles and Jaccard similarity over them.
//!
//! q-grams are the third similarity predicate family the paper names for
//! MDs (§2.2). A string's q-gram profile is the multiset of its length-`q`
//! character windows, with `q-1` padding sentinels on each side so that
//! prefixes/suffixes carry weight. Similarity is Jaccard over the profiles
//! (multiset intersection / union).

use std::collections::HashMap;

/// Sentinel used to pad string boundaries; outside any realistic alphabet.
const PAD: char = '\u{1}';

/// The multiset of padded q-grams of a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QGramProfile {
    q: usize,
    grams: HashMap<Vec<char>, u32>,
    total: u32,
}

impl QGramProfile {
    /// Build the profile of `s` for window size `q` (≥ 1).
    pub fn new(s: &str, q: usize) -> Self {
        assert!(q >= 1, "q-gram size must be at least 1");
        let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (q - 1));
        padded.extend(std::iter::repeat_n(PAD, q - 1));
        padded.extend(s.chars());
        padded.extend(std::iter::repeat_n(PAD, q - 1));
        let mut grams: HashMap<Vec<char>, u32> = HashMap::new();
        let mut total = 0;
        if padded.len() >= q {
            for w in padded.windows(q) {
                *grams.entry(w.to_vec()).or_insert(0) += 1;
                total += 1;
            }
        }
        QGramProfile { q, grams, total }
    }

    /// Window size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of grams (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Is the profile empty (only possible for the empty string with q=1)?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Multiset-intersection size with another profile.
    pub fn intersection(&self, other: &QGramProfile) -> usize {
        assert_eq!(self.q, other.q, "profiles must share the q value");
        // Iterate the smaller map.
        let (small, large) = if self.grams.len() <= other.grams.len() {
            (&self.grams, &other.grams)
        } else {
            (&other.grams, &self.grams)
        };
        small
            .iter()
            .map(|(g, c)| (*c).min(large.get(g).copied().unwrap_or(0)) as usize)
            .sum()
    }

    /// Multiset Jaccard similarity `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
    pub fn jaccard(&self, other: &QGramProfile) -> f64 {
        let inter = self.intersection(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            // Both profiles empty ⇒ both strings empty ⇒ identical.
            return 1.0;
        }
        inter as f64 / union as f64
    }
}

/// One-shot q-gram Jaccard similarity.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    QGramProfile::new(a, q).jaccard(&QGramProfile::new(b, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(qgram_jaccard("database", "database", 2), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(qgram_jaccard("aaa", "bbb", 2), 0.0);
    }

    #[test]
    fn empty_vs_empty_is_one() {
        assert_eq!(qgram_jaccard("", "", 2), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(qgram_jaccard("", "abc", 2), 0.0);
    }

    #[test]
    fn profile_counts_multiplicity() {
        // "aaa" with q=2 padded: #a aa aa a# → aa twice.
        let p = QGramProfile::new("aaa", 2);
        assert_eq!(p.len(), 4);
        let other = QGramProfile::new("aa", 2); // #a aa a#
        assert_eq!(p.intersection(&other), 3);
    }

    #[test]
    fn similar_strings_score_high() {
        let s = qgram_jaccard("Robert Brady", "Robert Bradey", 2);
        assert!(s > 0.7, "got {s}");
        let d = qgram_jaccard("Robert Brady", "Mark Smith", 2);
        assert!(d < 0.2, "got {d}");
    }

    #[test]
    #[should_panic(expected = "q-gram size")]
    fn zero_q_rejected() {
        QGramProfile::new("abc", 0);
    }

    #[test]
    #[should_panic(expected = "share the q value")]
    fn mismatched_q_rejected() {
        QGramProfile::new("a", 2).jaccard(&QGramProfile::new("a", 3));
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            let s = qgram_jaccard(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_symmetric(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            prop_assert_eq!(qgram_jaccard(&a, &b, q).to_bits(), qgram_jaccard(&b, &a, q).to_bits());
        }

        #[test]
        fn jaccard_identity(a in "[a-d]{0,12}", q in 1usize..4) {
            prop_assert_eq!(qgram_jaccard(&a, &a, q), 1.0);
        }

        #[test]
        fn intersection_bounded_by_sizes(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            let pa = QGramProfile::new(&a, q);
            let pb = QGramProfile::new(&b, q);
            let i = pa.intersection(&pb);
            prop_assert!(i <= pa.len() && i <= pb.len());
        }
    }
}
